"""ADASYN adaptive synthetic oversampling.

The Davidson et al. training data is heavily imbalanced (1,194 hate vs
16,025 offensive vs 20,499 neither labels), so the paper oversamples with
ADASYN (He et al., 2008) before training the SVM (§3.5.3).  This is a
from-scratch implementation of the algorithm: minority examples are
oversampled in proportion to how many of their k nearest neighbours belong
to other classes, and synthetic points are linear interpolations toward
same-class neighbours.
"""

from __future__ import annotations

import numpy as np

__all__ = ["adasyn_oversample"]


def _k_nearest(
    point_index: int, features: np.ndarray, k: int
) -> np.ndarray:
    """Indices of the k nearest neighbours of a point (excluding itself)."""
    deltas = features - features[point_index]
    distances = np.einsum("ij,ij->i", deltas, deltas)
    distances[point_index] = np.inf
    k = min(k, features.shape[0] - 1)
    return np.argpartition(distances, k - 1)[:k]


def adasyn_oversample(
    features: np.ndarray,
    labels: np.ndarray,
    k_neighbors: int = 5,
    target_ratio: float = 1.0,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Balance a multiclass dataset with ADASYN.

    Every class smaller than the majority class is oversampled up to
    ``target_ratio`` times the majority size.  The synthetic budget is
    distributed across minority points in proportion to the fraction of
    their k nearest neighbours that are *not* of their class (points near
    class boundaries get more synthetic neighbours).

    Args:
        features: (n, d) feature matrix.
        labels: (n,) integer class labels.
        k_neighbors: neighbourhood size.
        target_ratio: desired minority/majority size ratio after sampling.
        seed: RNG seed.

    Returns:
        (features, labels) with synthetic rows appended; the original rows
        are preserved in order at the front.
    """
    x = np.asarray(features, dtype=np.float64)
    y = np.asarray(labels)
    if x.shape[0] != y.shape[0]:
        raise ValueError("features and labels must have equal length")
    if x.shape[0] == 0:
        raise ValueError("cannot oversample an empty dataset")
    if not 0.0 < target_ratio <= 1.0:
        raise ValueError("target_ratio must be in (0, 1]")

    rng = np.random.default_rng(seed)
    classes, counts = np.unique(y, return_counts=True)
    majority_count = int(counts.max())

    new_rows: list[np.ndarray] = []
    new_labels: list = []

    for cls, count in zip(classes, counts):
        deficit = int(round(target_ratio * majority_count)) - int(count)
        if deficit <= 0:
            continue
        member_idx = np.flatnonzero(y == cls)
        if member_idx.size < 2:
            # Cannot interpolate with fewer than two points; duplicate.
            copies = rng.choice(member_idx, size=deficit)
            new_rows.extend(x[copies])
            new_labels.extend([cls] * deficit)
            continue

        # Hardness r_i: fraction of k-NN (over the whole dataset) in other
        # classes.
        hardness = np.empty(member_idx.size)
        neighbors_cache: list[np.ndarray] = []
        for pos, idx in enumerate(member_idx):
            knn = _k_nearest(idx, x, k_neighbors)
            neighbors_cache.append(knn)
            hardness[pos] = np.mean(y[knn] != cls)
        if hardness.sum() == 0:
            # Class is perfectly separated; sample uniformly.
            weights = np.full(member_idx.size, 1.0 / member_idx.size)
        else:
            weights = hardness / hardness.sum()

        per_point = np.floor(weights * deficit).astype(int)
        # Distribute the rounding remainder to the hardest points.
        remainder = deficit - int(per_point.sum())
        if remainder > 0:
            order = np.argsort(-weights)
            per_point[order[:remainder]] += 1

        for pos, idx in enumerate(member_idx):
            n_synthetic = int(per_point[pos])
            if n_synthetic == 0:
                continue
            same_class_knn = neighbors_cache[pos][y[neighbors_cache[pos]] == cls]
            if same_class_knn.size == 0:
                # Fall back to any same-class point.
                same_class_knn = member_idx[member_idx != idx]
            partners = rng.choice(same_class_knn, size=n_synthetic)
            gaps = rng.random(n_synthetic)[:, None]
            synthetic = x[idx] + gaps * (x[partners] - x[idx])
            new_rows.extend(synthetic)
            new_labels.extend([cls] * n_synthetic)

    if not new_rows:
        return x.copy(), y.copy()
    x_out = np.vstack([x, np.asarray(new_rows)])
    y_out = np.concatenate([y, np.asarray(new_labels, dtype=y.dtype)])
    return x_out, y_out
