"""Porter stemming algorithm.

A faithful from-scratch implementation of M. F. Porter's 1980 suffix
stripping algorithm ("An algorithm for suffix stripping", *Program* 14(3)).
The paper stems tokens before dictionary matching (§3.5.1) and before
building SVM n-gram features (§3.5.3); stemming is what lets the hate
dictionary catch inflected variants (and what creates some of its documented
false positives).
"""

from __future__ import annotations

__all__ = ["PorterStemmer", "stem"]

_VOWELS = frozenset("aeiou")


class PorterStemmer:
    """Stateless Porter stemmer.

    Usage::

        stemmer = PorterStemmer()
        stemmer.stem("caresses")  # -> "caress"
    """

    # ------------------------------------------------------------------
    # Low-level predicates over the word being stemmed.  All operate on a
    # lowercase string; positions index characters.
    # ------------------------------------------------------------------

    @staticmethod
    def _is_consonant(word: str, i: int) -> bool:
        ch = word[i]
        if ch in _VOWELS:
            return False
        if ch == "y":
            # 'y' is a consonant at the start or after a vowel position
            # evaluated recursively: it is a consonant iff the previous
            # letter is NOT a consonant.
            return i == 0 or not PorterStemmer._is_consonant(word, i - 1)
        return True

    @classmethod
    def _measure(cls, stem_part: str) -> int:
        """The 'measure' m of a stem: the number of VC sequences."""
        m = 0
        i = 0
        n = len(stem_part)
        # Skip initial consonants.
        while i < n and cls._is_consonant(stem_part, i):
            i += 1
        while i < n:
            # Consume vowels.
            while i < n and not cls._is_consonant(stem_part, i):
                i += 1
            if i >= n:
                break
            m += 1
            # Consume consonants.
            while i < n and cls._is_consonant(stem_part, i):
                i += 1
        return m

    @classmethod
    def _contains_vowel(cls, stem_part: str) -> bool:
        return any(not cls._is_consonant(stem_part, i) for i in range(len(stem_part)))

    @classmethod
    def _ends_double_consonant(cls, word: str) -> bool:
        return (
            len(word) >= 2
            and word[-1] == word[-2]
            and cls._is_consonant(word, len(word) - 1)
        )

    @classmethod
    def _ends_cvc(cls, word: str) -> bool:
        """consonant-vowel-consonant ending, final consonant not w/x/y."""
        if len(word) < 3:
            return False
        return (
            cls._is_consonant(word, len(word) - 3)
            and not cls._is_consonant(word, len(word) - 2)
            and cls._is_consonant(word, len(word) - 1)
            and word[-1] not in "wxy"
        )

    # ------------------------------------------------------------------
    # Steps of the algorithm.
    # ------------------------------------------------------------------

    @classmethod
    def _step_1a(cls, word: str) -> str:
        if word.endswith("sses"):
            return word[:-2]
        if word.endswith("ies"):
            return word[:-2]
        if word.endswith("ss"):
            return word
        if word.endswith("s"):
            return word[:-1]
        return word

    @classmethod
    def _step_1b(cls, word: str) -> str:
        if word.endswith("eed"):
            if cls._measure(word[:-3]) > 0:
                return word[:-1]
            return word
        flag = False
        if word.endswith("ed") and cls._contains_vowel(word[:-2]):
            word = word[:-2]
            flag = True
        elif word.endswith("ing") and cls._contains_vowel(word[:-3]):
            word = word[:-3]
            flag = True
        if flag:
            if word.endswith(("at", "bl", "iz")):
                return word + "e"
            if cls._ends_double_consonant(word) and word[-1] not in "lsz":
                return word[:-1]
            if cls._measure(word) == 1 and cls._ends_cvc(word):
                return word + "e"
        return word

    @classmethod
    def _step_1c(cls, word: str) -> str:
        if word.endswith("y") and cls._contains_vowel(word[:-1]):
            return word[:-1] + "i"
        return word

    _STEP2_SUFFIXES = (
        ("ational", "ate"),
        ("tional", "tion"),
        ("enci", "ence"),
        ("anci", "ance"),
        ("izer", "ize"),
        ("abli", "able"),
        ("alli", "al"),
        ("entli", "ent"),
        ("eli", "e"),
        ("ousli", "ous"),
        ("ization", "ize"),
        ("ation", "ate"),
        ("ator", "ate"),
        ("alism", "al"),
        ("iveness", "ive"),
        ("fulness", "ful"),
        ("ousness", "ous"),
        ("aliti", "al"),
        ("iviti", "ive"),
        ("biliti", "ble"),
    )

    _STEP3_SUFFIXES = (
        ("icate", "ic"),
        ("ative", ""),
        ("alize", "al"),
        ("iciti", "ic"),
        ("ical", "ic"),
        ("ful", ""),
        ("ness", ""),
    )

    _STEP4_SUFFIXES = (
        "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
        "ment", "ent", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
    )

    @classmethod
    def _replace_if_m_positive(
        cls, word: str, suffixes: tuple[tuple[str, str], ...]
    ) -> str:
        for suffix, replacement in suffixes:
            if word.endswith(suffix):
                stem_part = word[: -len(suffix)]
                if cls._measure(stem_part) > 0:
                    return stem_part + replacement
                return word
        return word

    @classmethod
    def _step_4(cls, word: str) -> str:
        for suffix in cls._STEP4_SUFFIXES:
            if word.endswith(suffix):
                stem_part = word[: -len(suffix)]
                if suffix == "ion" and stem_part and stem_part[-1] not in "st":
                    return word
                if cls._measure(stem_part) > 1:
                    return stem_part
                return word
        # Special-case 'ion' preceded by s or t.
        if word.endswith("ion"):
            stem_part = word[:-3]
            if stem_part and stem_part[-1] in "st" and cls._measure(stem_part) > 1:
                return stem_part
        return word

    @classmethod
    def _step_5a(cls, word: str) -> str:
        if word.endswith("e"):
            stem_part = word[:-1]
            m = cls._measure(stem_part)
            if m > 1:
                return stem_part
            if m == 1 and not cls._ends_cvc(stem_part):
                return stem_part
        return word

    @classmethod
    def _step_5b(cls, word: str) -> str:
        if (
            cls._measure(word) > 1
            and cls._ends_double_consonant(word)
            and word.endswith("l")
        ):
            return word[:-1]
        return word

    def stem(self, token: str) -> str:
        """Stem a single lowercase token.

        Tokens of length <= 2 are returned unchanged (per the original
        algorithm's guard).
        """
        word = token.lower()
        if len(word) <= 2:
            return word
        word = self._step_1a(word)
        word = self._step_1b(word)
        word = self._step_1c(word)
        word = self._replace_if_m_positive(word, self._STEP2_SUFFIXES)
        word = self._replace_if_m_positive(word, self._STEP3_SUFFIXES)
        word = self._step_4(word)
        word = self._step_5a(word)
        word = self._step_5b(word)
        return word


_DEFAULT = PorterStemmer()


def stem(token: str) -> str:
    """Stem a token with the module-level default :class:`PorterStemmer`."""
    return _DEFAULT.stem(token)
