"""Synthetic stand-in for the Davidson et al. labelled Twitter corpus.

The paper trains its 3-class classifier on crowd-labelled tweets from
Davidson et al. (2017): 1,194 hate, 16,025 offensive, and 20,499 neither.
That corpus is third-party data we do not redistribute, so this module
generates a labelled corpus with the same class imbalance (scaled) and
class-conditional token distributions drawn from the shared lexicons —
which makes the downstream ADASYN + SVM pipeline face the same learning
problem: a rare hate class whose vocabulary partially overlaps the much
larger offensive class.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nlp.lexicons import BENIGN_VOCAB, OFFENSIVE_VOCAB, hate_vocab

__all__ = [
    "DAVIDSON_CLASS_COUNTS",
    "HATE",
    "NEITHER",
    "OFFENSIVE",
    "LabeledCorpus",
    "build_davidson_style_corpus",
]

# Class labels, kept as small ints for numpy friendliness.
HATE = 0
OFFENSIVE = 1
NEITHER = 2

DAVIDSON_CLASS_COUNTS: dict[int, int] = {
    HATE: 1194,
    OFFENSIVE: 16025,
    NEITHER: 20499,
}
"""Label counts of the original Davidson et al. corpus (paper §3.5.3)."""

LABEL_NAMES: dict[int, str] = {HATE: "hate", OFFENSIVE: "offensive", NEITHER: "neither"}


@dataclass(frozen=True)
class LabeledCorpus:
    """A labelled text corpus."""

    texts: tuple[str, ...]
    labels: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.texts) != len(self.labels):
            raise ValueError("texts and labels must have equal length")

    def __len__(self) -> int:
        return len(self.texts)

    def class_counts(self) -> dict[int, int]:
        counts: dict[int, int] = {}
        for label in self.labels:
            counts[label] = counts.get(label, 0) + 1
        return counts

    def subset(self, indices: np.ndarray) -> "LabeledCorpus":
        return LabeledCorpus(
            texts=tuple(self.texts[i] for i in indices),
            labels=tuple(self.labels[i] for i in indices),
        )


def _sample_sentence(
    rng: np.random.Generator,
    benign: np.ndarray,
    marked: np.ndarray,
    marked_rate: float,
    length_mean: float,
) -> str:
    """Emit a sentence whose tokens are benign except at ``marked_rate``."""
    length = max(3, int(rng.poisson(length_mean)))
    words = []
    for _ in range(length):
        if marked.size and rng.random() < marked_rate:
            words.append(str(rng.choice(marked)))
        else:
            words.append(str(rng.choice(benign)))
    return " ".join(words)


def build_davidson_style_corpus(
    scale: float = 0.05,
    seed: int = 15665,
) -> LabeledCorpus:
    """Generate the synthetic 3-class training corpus.

    Args:
        scale: fraction of the original corpus size to generate (1.0
            reproduces the full 37,718-example corpus; the default 0.05
            keeps the CV loop fast while preserving the imbalance ratios).
        seed: RNG seed.

    Returns:
        :class:`LabeledCorpus` with texts and integer labels.
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    rng = np.random.default_rng(seed)
    benign = np.asarray(BENIGN_VOCAB)
    offensive = np.asarray(OFFENSIVE_VOCAB)
    hate = np.asarray(hate_vocab())

    texts: list[str] = []
    labels: list[int] = []
    for label, full_count in DAVIDSON_CLASS_COUNTS.items():
        count = max(10, int(round(full_count * scale)))
        for _ in range(count):
            if label == HATE:
                # Hate speech: hate terms plus an admixture of offensive
                # vocabulary (real hate speech is usually also offensive —
                # that overlap is what makes the class hard).
                body = _sample_sentence(rng, benign, hate, 0.30, 12)
                if rng.random() < 0.6:
                    body += " " + _sample_sentence(rng, benign, offensive, 0.4, 5)
                texts.append(body)
            elif label == OFFENSIVE:
                texts.append(_sample_sentence(rng, benign, offensive, 0.35, 12))
            else:
                # Neither: almost entirely benign, rare stray mild word.
                texts.append(_sample_sentence(rng, benign, offensive, 0.01, 12))
            labels.append(label)

    # Shuffle so class blocks are interleaved.
    order = rng.permutation(len(texts))
    return LabeledCorpus(
        texts=tuple(texts[i] for i in order),
        labels=tuple(labels[i] for i in order),
    )
