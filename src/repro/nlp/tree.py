"""Decision-tree classifier (CART), from scratch.

§3.5.3: "We experiment with neural networks, decision trees, and support
vector machines (SVMs) ... we achieve the highest accuracy using SVMs."
To reproduce that model *comparison*, the losing models must exist too.
This is a standard CART implementation: binary splits on single features,
Gini impurity, depth/leaf-size stopping rules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["DecisionTreeClassifier"]


@dataclass
class _Node:
    """A tree node; leaves carry a class distribution."""

    prediction: int
    class_counts: np.ndarray
    feature: int | None = None
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.feature is None


def _gini(counts: np.ndarray) -> float:
    total = counts.sum()
    if total == 0:
        return 0.0
    proportions = counts / total
    return 1.0 - float((proportions ** 2).sum())


class DecisionTreeClassifier:
    """CART classifier over dense features.

    Args:
        max_depth: maximum tree depth.
        min_samples_split: do not split nodes smaller than this.
        max_candidate_thresholds: per feature, candidate split thresholds
            are quantiles of the observed values capped at this count —
            text-count features have few distinct values, so this is
            rarely binding but bounds worst-case fit time.
        seed: feature subsampling seed (all features are used when the
            feature count is small; a sqrt subsample otherwise).
    """

    def __init__(
        self,
        max_depth: int = 12,
        min_samples_split: int = 4,
        max_candidate_thresholds: int = 16,
        seed: int = 0,
    ):
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        if min_samples_split < 2:
            raise ValueError("min_samples_split must be >= 2")
        self._max_depth = max_depth
        self._min_split = min_samples_split
        self._max_thresholds = max_candidate_thresholds
        self._seed = seed
        self._root: _Node | None = None
        self.classes_: np.ndarray | None = None

    # ------------------------------------------------------------------

    def _leaf(self, y: np.ndarray) -> _Node:
        counts = np.bincount(y, minlength=self.classes_.size)
        return _Node(prediction=int(np.argmax(counts)), class_counts=counts)

    def _best_split(
        self, x: np.ndarray, y: np.ndarray, features: np.ndarray
    ) -> tuple[int, float, float] | None:
        parent_counts = np.bincount(y, minlength=self.classes_.size)
        parent_gini = _gini(parent_counts)
        n = y.size
        best: tuple[int, float, float] | None = None
        best_gain = 1e-12
        for feature in features:
            values = x[:, feature]
            distinct = np.unique(values)
            if distinct.size < 2:
                continue
            if distinct.size > self._max_thresholds:
                quantiles = np.linspace(0, 100, self._max_thresholds + 2)[1:-1]
                candidates = np.unique(np.percentile(values, quantiles))
            else:
                candidates = (distinct[:-1] + distinct[1:]) / 2.0
            for threshold in candidates:
                mask = values <= threshold
                n_left = int(mask.sum())
                if n_left == 0 or n_left == n:
                    continue
                left_counts = np.bincount(
                    y[mask], minlength=self.classes_.size
                )
                right_counts = parent_counts - left_counts
                gain = parent_gini - (
                    n_left / n * _gini(left_counts)
                    + (n - n_left) / n * _gini(right_counts)
                )
                if gain > best_gain:
                    best_gain = gain
                    best = (int(feature), float(threshold), float(gain))
        return best

    def _grow(
        self, x: np.ndarray, y: np.ndarray, depth: int,
        rng: np.random.Generator,
    ) -> _Node:
        if (
            depth >= self._max_depth
            or y.size < self._min_split
            or np.unique(y).size == 1
        ):
            return self._leaf(y)
        n_features = x.shape[1]
        if n_features > 256:
            k = max(16, int(np.sqrt(n_features)))
            features = rng.choice(n_features, size=k, replace=False)
        else:
            features = np.arange(n_features)
        split = self._best_split(x, y, features)
        if split is None:
            return self._leaf(y)
        feature, threshold, _gain = split
        mask = x[:, feature] <= threshold
        node = self._leaf(y)
        node.feature = feature
        node.threshold = threshold
        node.left = self._grow(x[mask], y[mask], depth + 1, rng)
        node.right = self._grow(x[~mask], y[~mask], depth + 1, rng)
        return node

    # ------------------------------------------------------------------

    def fit(self, features: np.ndarray, labels: Sequence[int]) -> "DecisionTreeClassifier":
        """Grow the tree."""
        x = np.asarray(features, dtype=np.float64)
        y_raw = np.asarray(labels)
        if x.ndim != 2 or x.shape[0] != y_raw.shape[0]:
            raise ValueError("features/labels shape mismatch")
        self.classes_ = np.unique(y_raw)
        index = {cls: i for i, cls in enumerate(self.classes_)}
        y = np.asarray([index[v] for v in y_raw])
        rng = np.random.default_rng(self._seed)
        self._root = self._grow(x, y, depth=0, rng=rng)
        return self

    def _walk(self, row: np.ndarray) -> _Node:
        node = self._root
        while not node.is_leaf:
            node = node.left if row[node.feature] <= node.threshold else node.right
        return node

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predicted class labels."""
        if self._root is None:
            raise RuntimeError("tree must be fitted before prediction")
        x = np.asarray(features, dtype=np.float64)
        return self.classes_[
            np.asarray([self._walk(row).prediction for row in x])
        ]

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Leaf class distributions."""
        if self._root is None:
            raise RuntimeError("tree must be fitted before prediction")
        x = np.asarray(features, dtype=np.float64)
        rows = []
        for row in x:
            counts = self._walk(row).class_counts.astype(float)
            total = counts.sum()
            rows.append(counts / total if total else counts)
        return np.asarray(rows)

    def depth(self) -> int:
        """Actual depth of the grown tree."""
        def walk(node: _Node) -> int:
            if node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))
        if self._root is None:
            raise RuntimeError("tree must be fitted first")
        return walk(self._root)
