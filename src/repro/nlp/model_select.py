"""Model evaluation and selection: metrics, cross-validation, grid search.

The paper tunes SVM hyperparameters with grid search and reports an F1
score of 0.87 under 5-fold cross-validation (§3.5.3).  This module supplies
the scaffolding: confusion matrices, per-class and macro F1, stratified
k-fold cross-validation, and exhaustive grid search over a hyperparameter
dictionary.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

import numpy as np

from repro.stats.sampling import stratified_indices

__all__ = [
    "CrossValResult",
    "GridSearchResult",
    "confusion_matrix",
    "cross_validate",
    "f1_score",
    "grid_search",
    "macro_f1",
    "weighted_f1",
]

ModelFactory = Callable[..., Any]


def confusion_matrix(
    true_labels: Sequence[int],
    predicted_labels: Sequence[int],
    classes: Sequence[int] | None = None,
) -> tuple[np.ndarray, list]:
    """Confusion matrix C where C[i, j] = count(true=i, predicted=j).

    Returns the matrix and the class ordering used for its axes.
    """
    y_true = np.asarray(true_labels)
    y_pred = np.asarray(predicted_labels)
    if y_true.shape != y_pred.shape:
        raise ValueError("label arrays must have equal shape")
    class_list = (
        list(classes)
        if classes is not None
        else sorted(set(y_true.tolist()) | set(y_pred.tolist()))
    )
    index = {cls: i for i, cls in enumerate(class_list)}
    matrix = np.zeros((len(class_list), len(class_list)), dtype=int)
    for t, p in zip(y_true, y_pred):
        matrix[index[t], index[p]] += 1
    return matrix, class_list


def f1_score(
    true_labels: Sequence[int],
    predicted_labels: Sequence[int],
    positive_class: int,
) -> float:
    """F1 of a single class treated as the positive label."""
    y_true = np.asarray(true_labels)
    y_pred = np.asarray(predicted_labels)
    tp = int(np.sum((y_true == positive_class) & (y_pred == positive_class)))
    fp = int(np.sum((y_true != positive_class) & (y_pred == positive_class)))
    fn = int(np.sum((y_true == positive_class) & (y_pred != positive_class)))
    if tp == 0:
        return 0.0
    precision = tp / (tp + fp)
    recall = tp / (tp + fn)
    return 2 * precision * recall / (precision + recall)


def macro_f1(true_labels: Sequence[int], predicted_labels: Sequence[int]) -> float:
    """Unweighted mean of per-class F1 scores."""
    classes = sorted(set(np.asarray(true_labels).tolist()))
    if not classes:
        raise ValueError("no labels supplied")
    return float(
        np.mean([f1_score(true_labels, predicted_labels, cls) for cls in classes])
    )


def weighted_f1(true_labels: Sequence[int], predicted_labels: Sequence[int]) -> float:
    """Support-weighted mean of per-class F1 (scikit-learn's 'weighted')."""
    y_true = np.asarray(true_labels)
    classes, counts = np.unique(y_true, return_counts=True)
    total = counts.sum()
    return float(
        sum(
            (count / total) * f1_score(y_true, predicted_labels, cls)
            for cls, count in zip(classes, counts)
        )
    )


@dataclass(frozen=True)
class CrossValResult:
    """Per-fold and aggregate cross-validation scores."""

    fold_scores: tuple[float, ...]

    @property
    def mean(self) -> float:
        return float(np.mean(self.fold_scores))

    @property
    def std(self) -> float:
        return float(np.std(self.fold_scores))


def cross_validate(
    model_factory: ModelFactory,
    features: np.ndarray,
    labels: Sequence[int],
    n_folds: int = 5,
    metric: Callable[[Sequence[int], Sequence[int]], float] = weighted_f1,
    seed: int = 0,
    resampler: Callable[[np.ndarray, np.ndarray], tuple[np.ndarray, np.ndarray]]
    | None = None,
) -> CrossValResult:
    """Stratified k-fold cross-validation.

    Args:
        model_factory: zero-argument callable returning a fresh, unfitted
            model with ``fit``/``predict`` methods.
        features: (n, d) feature matrix.
        labels: class labels.
        n_folds: number of folds (the paper uses 5).
        metric: scoring function over (true, predicted).
        seed: fold-assignment seed.
        resampler: optional (x, y) -> (x, y) transform applied to the
            *training* portion of each fold only — this is where ADASYN
            plugs in, so synthetic points never leak into evaluation.
    """
    x = np.asarray(features, dtype=np.float64)
    y = np.asarray(labels)
    folds = stratified_indices(y, n_folds, seed=seed)
    scores: list[float] = []
    for fold in folds:
        test_mask = np.zeros(y.shape[0], dtype=bool)
        test_mask[fold] = True
        x_train, y_train = x[~test_mask], y[~test_mask]
        if resampler is not None:
            x_train, y_train = resampler(x_train, y_train)
        model = model_factory()
        model.fit(x_train, y_train)
        predictions = model.predict(x[test_mask])
        scores.append(metric(y[test_mask], predictions))
    return CrossValResult(fold_scores=tuple(scores))


@dataclass
class GridSearchResult:
    """Best hyperparameters and the full score table."""

    best_params: dict[str, Any]
    best_score: float
    all_results: list[tuple[dict[str, Any], CrossValResult]] = field(
        default_factory=list
    )


def grid_search(
    model_factory: ModelFactory,
    param_grid: Mapping[str, Sequence[Any]],
    features: np.ndarray,
    labels: Sequence[int],
    n_folds: int = 5,
    metric: Callable[[Sequence[int], Sequence[int]], float] = weighted_f1,
    seed: int = 0,
    resampler: Callable[[np.ndarray, np.ndarray], tuple[np.ndarray, np.ndarray]]
    | None = None,
) -> GridSearchResult:
    """Exhaustive grid search with stratified cross-validation.

    ``model_factory`` is called with each combination of keyword arguments
    drawn from ``param_grid``.
    """
    if not param_grid:
        raise ValueError("param_grid must not be empty")
    names = sorted(param_grid)
    combos = list(itertools.product(*(param_grid[name] for name in names)))
    best_params: dict[str, Any] | None = None
    best_result: CrossValResult | None = None
    table: list[tuple[dict[str, Any], CrossValResult]] = []
    for combo in combos:
        params = dict(zip(names, combo))
        result = cross_validate(
            lambda params=params: model_factory(**params),
            features,
            labels,
            n_folds=n_folds,
            metric=metric,
            seed=seed,
            resampler=resampler,
        )
        table.append((params, result))
        if best_result is None or result.mean > best_result.mean:
            best_params, best_result = params, result
    assert best_params is not None and best_result is not None
    return GridSearchResult(
        best_params=best_params,
        best_score=best_result.mean,
        all_results=table,
    )
