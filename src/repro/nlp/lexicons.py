"""Shared word lists for the synthetic text universe.

Three code paths must agree on what "toxic vocabulary" means — the platform
text generator (which *emits* comments with a latent toxicity), the
dictionary scorer, and the simulated Perspective models (which *recover*
toxicity from text).  This module is the single source of truth: benign
vocabulary, mild-profanity/"offensive" vocabulary, ad-hominem attack
phrases, and the synthetic hate lexicon (imported from
:mod:`repro.nlp.dictionary`).

The offensive and attack vocabularies are intentionally mild, real English;
the hate lexicon is synthetic pseudo-words (see the dictionary module's
docstring for the substitution rationale).
"""

from __future__ import annotations

from repro.nlp.dictionary import build_synthetic_hatebase

__all__ = [
    "ATTACK_PHRASES",
    "BENIGN_VOCAB",
    "OBSCENE_VOCAB",
    "OFFENSIVE_VOCAB",
    "RUDE_VOCAB",
    "hate_vocab",
]

BENIGN_VOCAB: tuple[str, ...] = (
    "the", "a", "an", "this", "that", "these", "those", "is", "was", "are",
    "were", "be", "been", "have", "has", "had", "do", "does", "did", "will",
    "would", "can", "could", "should", "may", "might", "and", "or", "but",
    "because", "so", "if", "when", "while", "then", "there", "here", "now",
    "today", "article", "video", "news", "story", "report", "comment",
    "thread", "page", "site", "link", "media", "press", "journalist",
    "writer", "author", "reader", "viewer", "people", "person", "user",
    "government", "country", "nation", "state", "city", "world", "internet",
    "platform", "speech", "free", "freedom", "right", "rights", "truth",
    "fact", "facts", "opinion", "view", "point", "idea", "thought",
    "think", "believe", "know", "understand", "agree", "disagree", "read",
    "watch", "see", "hear", "say", "said", "tell", "told", "write", "wrote",
    "good", "great", "interesting", "important", "real", "true", "false",
    "wrong", "right", "new", "old", "big", "small", "long", "short",
    "first", "last", "many", "much", "more", "most", "some", "any", "all",
    "every", "other", "another", "same", "different", "year", "month",
    "week", "day", "time", "way", "thing", "things", "work", "works",
    "money", "business", "market", "economy", "policy", "election", "vote",
    "party", "law", "court", "judge", "police", "school", "family", "home",
    "question", "answer", "problem", "issue", "reason", "result", "change",
    "history", "future", "science", "research", "study", "evidence",
)

OFFENSIVE_VOCAB: tuple[str, ...] = (
    "idiot", "idiots", "moron", "morons", "stupid", "dumb", "dumbass",
    "fool", "fools", "clown", "clowns", "loser", "losers", "pathetic",
    "garbage", "trash", "scum", "filth", "disgusting", "worthless",
    "braindead", "imbecile", "cretin", "degenerate", "sleazy", "slimy",
    "crooked", "corrupt", "liar", "liars", "lying", "fraud", "frauds",
    "sheep", "sheeple", "coward", "cowards", "traitor", "traitors",
    "crap", "bullcrap", "damn", "hell", "sucks", "awful", "terrible",
)

OBSCENE_VOCAB: tuple[str, ...] = (
    "crap", "damn", "hell", "ass", "arse", "piss", "bloody", "bastard",
    "bollocks", "screw", "screwed", "freaking", "frigging", "sod",
)

RUDE_VOCAB: tuple[str, ...] = (
    "nonsense", "rubbish", "fake", "propaganda", "shill", "shills",
    "brainwashed", "wake", "sheeple", "paid", "bought", "censored",
    "censorship", "lies", "hoax", "joke", "laughable", "ridiculous",
    "absurd", "disgrace", "shameful", "embarrassing", "insane", "crazy",
    "delusional", "blind", "ignorant", "clueless", "hopeless",
)

ATTACK_PHRASES: tuple[str, ...] = (
    "the author is a",
    "whoever wrote this is a",
    "this journalist is a",
    "the writer must be a",
    "typical hack writer",
    "this so called reporter is a",
    "the person who made this is a",
    "fire this author",
    "the author should be ashamed",
    "written by a complete",
)

_HATE_CACHE: list[str] | None = None


def hate_vocab() -> list[str]:
    """The synthetic hate lexicon (cached; deterministic)."""
    global _HATE_CACHE
    if _HATE_CACHE is None:
        _HATE_CACHE = build_synthetic_hatebase()
    return list(_HATE_CACHE)
