"""Natural-language processing substrate.

The paper scores 1.68M comments with three independent classifiers (§3.5):
a Hatebase-style dictionary, the Perspective API, and an SVM trained on a
labelled Twitter corpus; it also language-identifies every comment with
``langid``.  This package implements all of the shared machinery from
scratch: tokenisation, Porter stemming, n-gram extraction, count/TF-IDF
vectorisation, the dictionary scorer, a naive-Bayes character-n-gram
language identifier, ADASYN oversampling, a linear SVM trained with SGD on
the hinge loss, one-vs-rest multiclass wrapping, and grid-search model
selection with stratified cross-validation.
"""

from repro.nlp.adasyn import adasyn_oversample
from repro.nlp.classifier import CommentClassifier, TrainedCommentClassifier
from repro.nlp.dictionary import HateDictionary, build_synthetic_hatebase
from repro.nlp.langid import LanguageIdentifier, default_language_identifier
from repro.nlp.mlp import MLPClassifier
from repro.nlp.model_select import (
    CrossValResult,
    GridSearchResult,
    confusion_matrix,
    cross_validate,
    f1_score,
    grid_search,
    macro_f1,
)
from repro.nlp.ngrams import extract_ngrams, ngram_counts
from repro.nlp.stem import PorterStemmer, stem
from repro.nlp.svm import LinearSVM, OneVsRestSVM
from repro.nlp.tokenize import clean_text, tokenize
from repro.nlp.train_data import LabeledCorpus, build_davidson_style_corpus
from repro.nlp.tree import DecisionTreeClassifier
from repro.nlp.vectorize import CountVectorizer, TfidfVectorizer

__all__ = [
    "CommentClassifier",
    "CountVectorizer",
    "CrossValResult",
    "GridSearchResult",
    "HateDictionary",
    "LabeledCorpus",
    "LanguageIdentifier",
    "DecisionTreeClassifier",
    "LinearSVM",
    "MLPClassifier",
    "OneVsRestSVM",
    "PorterStemmer",
    "TfidfVectorizer",
    "TrainedCommentClassifier",
    "adasyn_oversample",
    "build_davidson_style_corpus",
    "build_synthetic_hatebase",
    "clean_text",
    "confusion_matrix",
    "cross_validate",
    "default_language_identifier",
    "extract_ngrams",
    "f1_score",
    "grid_search",
    "macro_f1",
    "ngram_counts",
    "stem",
    "tokenize",
]
