"""Text cleaning and tokenisation.

The paper tokenises each comment, stems tokens, and matches them against a
hate dictionary (§3.5.1); the SVM pipeline uses "1 and 2-grams of cleaned
and stemmed word tokens" (§3.5.3).  This module provides that cleaning and
tokenisation layer.
"""

from __future__ import annotations

import re

__all__ = ["clean_text", "tokenize", "sentence_count", "caps_ratio"]

_URL_RE = re.compile(r"https?://\S+|www\.\S+", re.IGNORECASE)
_MENTION_RE = re.compile(r"@\w+")
_HTML_ENTITY_RE = re.compile(r"&[a-z]+;|&#\d+;", re.IGNORECASE)
_TOKEN_RE = re.compile(r"[a-z0-9']+")
_SENTENCE_RE = re.compile(r"[.!?]+")
_ALPHA_RE = re.compile(r"[A-Za-z]")
_UPPER_RE = re.compile(r"[A-Z]")


def clean_text(text: str) -> str:
    """Normalise raw comment text for feature extraction.

    Strips URLs, @-mentions, and HTML entities, lower-cases, and collapses
    whitespace.  The transformation is deliberately conservative: it never
    invents tokens, only removes noise.
    """
    text = _URL_RE.sub(" ", text)
    text = _MENTION_RE.sub(" ", text)
    text = _HTML_ENTITY_RE.sub(" ", text)
    text = text.lower()
    return " ".join(text.split())


def tokenize(text: str, clean: bool = True) -> list[str]:
    """Split text into lowercase word tokens.

    Args:
        text: raw or pre-cleaned text.
        clean: apply :func:`clean_text` first (default).

    Returns:
        List of tokens matching ``[a-z0-9']+`` with bare apostrophes
        stripped.
    """
    if clean:
        text = clean_text(text)
    else:
        text = text.lower()
    tokens = _TOKEN_RE.findall(text)
    return [tok.strip("'") for tok in tokens if tok.strip("'")]


def sentence_count(text: str) -> int:
    """Rough sentence count (used as a Perspective-model feature)."""
    parts = [p for p in _SENTENCE_RE.split(text) if p.strip()]
    return max(1, len(parts))


def caps_ratio(text: str) -> float:
    """Fraction of alphabetic characters that are upper-case.

    SHOUTED comments are a strong informal toxicity signal; the simulated
    Perspective models use this as one input feature.
    """
    letters = _ALPHA_RE.findall(text)
    if not letters:
        return 0.0
    uppers = _UPPER_RE.findall(text)
    return len(uppers) / len(letters)
