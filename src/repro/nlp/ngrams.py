"""Word and character n-gram extraction.

Word 1- and 2-grams feed the SVM classifier features (§3.5.3); character
n-grams feed the naive-Bayes language identifier.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Sequence

__all__ = ["extract_ngrams", "ngram_counts", "char_ngrams"]


def extract_ngrams(tokens: Sequence[str], orders: Iterable[int] = (1, 2)) -> list[str]:
    """Extract word n-grams of the given orders.

    N-grams of order > 1 are joined with an underscore, e.g.
    ``["free", "speech"] -> ["free", "speech", "free_speech"]``.
    """
    grams: list[str] = []
    for order in orders:
        if order < 1:
            raise ValueError(f"n-gram order must be >= 1, got {order}")
        if order == 1:
            grams.extend(tokens)
            continue
        for i in range(len(tokens) - order + 1):
            grams.append("_".join(tokens[i : i + order]))
    return grams


def ngram_counts(
    tokens: Sequence[str], orders: Iterable[int] = (1, 2)
) -> Counter[str]:
    """Counter of word n-grams (convenience wrapper)."""
    return Counter(extract_ngrams(tokens, orders))


def char_ngrams(text: str, order: int = 3, pad: bool = True) -> list[str]:
    """Character n-grams of a string.

    Args:
        text: input text (case is preserved by the caller's choice).
        order: n-gram length.
        pad: surround the text with ``order - 1`` boundary markers so that
            word-initial and word-final character patterns are represented.
    """
    if order < 1:
        raise ValueError(f"char n-gram order must be >= 1, got {order}")
    if pad and order > 1:
        padding = "\x00" * (order - 1)
        text = padding + text + padding
    if len(text) < order:
        return []
    return [text[i : i + order] for i in range(len(text) - order + 1)]
