"""Linear support-vector machines trained with stochastic gradient descent.

Section 3.5.3 of the paper experiments with neural networks, decision trees,
and SVMs on 1/2-gram features, finding SVMs best (F1 = 0.87 with 5-fold
CV).  We implement a linear SVM from scratch: the primal L2-regularised
hinge-loss objective minimised with the Pegasos-style SGD schedule, plus a
one-vs-rest wrapper for the three-class (hate / offensive / neither)
problem.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["LinearSVM", "OneVsRestSVM"]


class LinearSVM:
    """Binary linear SVM (labels in {-1, +1}).

    Minimises ``lambda/2 ||w||^2 + mean(hinge(y (w.x + b)))`` with the
    Pegasos learning-rate schedule ``eta_t = 1 / (lambda * t)``.

    Args:
        regularization: lambda; larger values mean a wider margin and more
            regularisation.
        epochs: passes over the training data.
        seed: RNG seed for the shuffle order.
    """

    def __init__(
        self,
        regularization: float = 1e-4,
        epochs: int = 10,
        seed: int = 0,
    ):
        if regularization <= 0:
            raise ValueError("regularization must be positive")
        if epochs < 1:
            raise ValueError("epochs must be >= 1")
        self._lambda = regularization
        self._epochs = epochs
        self._seed = seed
        self.weights_: np.ndarray | None = None
        self.bias_: float = 0.0

    @property
    def is_fitted(self) -> bool:
        return self.weights_ is not None

    def fit(self, features: np.ndarray, labels: Sequence[int]) -> "LinearSVM":
        """Train on a dense feature matrix and +/-1 labels."""
        x = np.asarray(features, dtype=np.float64)
        y = np.asarray(labels, dtype=np.float64)
        if x.ndim != 2:
            raise ValueError("features must be a 2-D matrix")
        if y.shape[0] != x.shape[0]:
            raise ValueError("features and labels must have equal length")
        if not np.all(np.isin(y, (-1.0, 1.0))):
            raise ValueError("labels must be -1 or +1")

        n_samples, n_features = x.shape
        rng = np.random.default_rng(self._seed)
        # The bias is trained as a weight on a constant feature, so the
        # Pegasos step bounds apply to it too (a free bias with the
        # 1/(lambda*t) schedule diverges on its first steps).
        augmented = np.hstack([x, np.ones((n_samples, 1))])
        w = np.zeros(n_features + 1)
        t = 0
        for _ in range(self._epochs):
            order = rng.permutation(n_samples)
            for i in order:
                t += 1
                eta = 1.0 / (self._lambda * t)
                margin = y[i] * (augmented[i] @ w)
                w *= 1.0 - eta * self._lambda
                if margin < 1.0:
                    w += eta * y[i] * augmented[i]
                # Pegasos projection step: keep ||w|| <= 1/sqrt(lambda).
                norm = np.linalg.norm(w)
                radius = 1.0 / np.sqrt(self._lambda)
                if norm > radius:
                    w *= radius / norm
        self.weights_ = w[:-1]
        self.bias_ = float(w[-1])
        return self

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        """Signed distance to the separating hyperplane."""
        if self.weights_ is None:
            raise RuntimeError("model must be fitted before prediction")
        x = np.asarray(features, dtype=np.float64)
        return x @ self.weights_ + self.bias_

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predicted labels in {-1, +1}."""
        return np.where(self.decision_function(features) >= 0.0, 1, -1)


class OneVsRestSVM:
    """Multiclass SVM via one-vs-rest decomposition.

    The paper "compute[s] the probability of each of the three possible
    classes for all Dissenter comments"; we expose a softmax over the
    per-class decision values as :meth:`predict_proba`.
    """

    def __init__(
        self,
        regularization: float = 1e-4,
        epochs: int = 10,
        seed: int = 0,
    ):
        self._regularization = regularization
        self._epochs = epochs
        self._seed = seed
        self.classes_: np.ndarray | None = None
        self._models: list[LinearSVM] = []

    @property
    def is_fitted(self) -> bool:
        return self.classes_ is not None

    def fit(self, features: np.ndarray, labels: Sequence[int]) -> "OneVsRestSVM":
        """Train one binary SVM per distinct class label."""
        y = np.asarray(labels)
        self.classes_ = np.unique(y)
        if self.classes_.size < 2:
            raise ValueError("need at least two classes")
        self._models = []
        for index, cls in enumerate(self.classes_):
            binary = np.where(y == cls, 1, -1)
            model = LinearSVM(
                regularization=self._regularization,
                epochs=self._epochs,
                seed=self._seed + index,
            )
            model.fit(features, binary)
            self._models.append(model)
        return self

    def decision_matrix(self, features: np.ndarray) -> np.ndarray:
        """(n_samples, n_classes) matrix of per-class decision values."""
        if self.classes_ is None:
            raise RuntimeError("model must be fitted before prediction")
        return np.column_stack(
            [model.decision_function(features) for model in self._models]
        )

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Class with the highest decision value."""
        scores = self.decision_matrix(features)
        return self.classes_[np.argmax(scores, axis=1)]

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Softmax over decision values (a calibrated-ish probability)."""
        scores = self.decision_matrix(features)
        shifted = scores - scores.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        return exp / exp.sum(axis=1, keepdims=True)
