"""Sparse-ish text vectorisation (counts and TF-IDF).

We avoid scikit-learn by design: the vectorisers here build a vocabulary
over tokenised documents and emit dense ``numpy`` matrices (adequate at the
corpus scales this reproduction runs at) with an optional feature cap by
document frequency.
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, Sequence

import numpy as np

from repro.nlp.ngrams import extract_ngrams
from repro.nlp.stem import PorterStemmer
from repro.nlp.tokenize import tokenize

__all__ = ["CountVectorizer", "TfidfVectorizer", "default_analyzer"]


def default_analyzer(orders: tuple[int, ...] = (1, 2)) -> Callable[[str], list[str]]:
    """Analyzer matching the paper's SVM features.

    Cleans, tokenises, Porter-stems, and extracts word n-grams of the given
    orders (the paper uses 1- and 2-grams of cleaned, stemmed tokens).
    """
    stemmer = PorterStemmer()

    def analyze(text: str) -> list[str]:
        stems = [stemmer.stem(tok) for tok in tokenize(text)]
        return extract_ngrams(stems, orders)

    return analyze


class CountVectorizer:
    """Bag-of-n-grams count vectoriser.

    Args:
        analyzer: text -> feature list function; defaults to the paper's
            stemmed 1+2-gram analyzer.
        max_features: keep only the most document-frequent features.
        min_df: drop features appearing in fewer than this many documents.
    """

    def __init__(
        self,
        analyzer: Callable[[str], list[str]] | None = None,
        max_features: int | None = None,
        min_df: int = 1,
    ):
        self._analyzer = analyzer or default_analyzer()
        self._max_features = max_features
        self._min_df = min_df
        self.vocabulary_: dict[str, int] = {}

    @property
    def is_fitted(self) -> bool:
        return bool(self.vocabulary_)

    def fit(self, documents: Sequence[str]) -> "CountVectorizer":
        """Learn the vocabulary from a document collection."""
        doc_freq: Counter[str] = Counter()
        for doc in documents:
            doc_freq.update(set(self._analyzer(doc)))
        candidates = [
            (feature, df) for feature, df in doc_freq.items() if df >= self._min_df
        ]
        # Highest document frequency first; ties broken lexicographically for
        # determinism.
        candidates.sort(key=lambda item: (-item[1], item[0]))
        if self._max_features is not None:
            candidates = candidates[: self._max_features]
        # Sorted feature order keeps column indices stable across runs.
        features = sorted(feature for feature, _ in candidates)
        self.vocabulary_ = {feature: index for index, feature in enumerate(features)}
        return self

    def transform(self, documents: Sequence[str]) -> np.ndarray:
        """Vectorise documents against the learned vocabulary."""
        if not self.is_fitted:
            raise RuntimeError("vectorizer must be fitted before transform")
        matrix = np.zeros((len(documents), len(self.vocabulary_)), dtype=np.float64)
        for row, doc in enumerate(documents):
            for feature in self._analyzer(doc):
                col = self.vocabulary_.get(feature)
                if col is not None:
                    matrix[row, col] += 1.0
        return matrix

    def fit_transform(self, documents: Sequence[str]) -> np.ndarray:
        return self.fit(documents).transform(documents)


class TfidfVectorizer(CountVectorizer):
    """TF-IDF vectoriser built on :class:`CountVectorizer`.

    Uses smoothed IDF (``log((1 + n) / (1 + df)) + 1``) and L2 row
    normalisation.
    """

    def __init__(
        self,
        analyzer: Callable[[str], list[str]] | None = None,
        max_features: int | None = None,
        min_df: int = 1,
    ):
        super().__init__(analyzer=analyzer, max_features=max_features, min_df=min_df)
        self.idf_: np.ndarray | None = None

    def fit(self, documents: Sequence[str]) -> "TfidfVectorizer":
        super().fit(documents)
        n_docs = len(documents)
        doc_freq = np.zeros(len(self.vocabulary_))
        for doc in documents:
            # Deduplication only: each distinct feature adds exactly 1.0
            # to its column, and float additions of 1.0 commute exactly.
            # repro: allow DET003 order-independent count increments
            for feature in set(self._analyzer(doc)):
                col = self.vocabulary_.get(feature)
                if col is not None:
                    doc_freq[col] += 1
        self.idf_ = np.log((1.0 + n_docs) / (1.0 + doc_freq)) + 1.0
        return self

    def transform(self, documents: Sequence[str]) -> np.ndarray:
        if self.idf_ is None:
            raise RuntimeError("vectorizer must be fitted before transform")
        counts = super().transform(documents)
        weighted = counts * self.idf_
        norms = np.linalg.norm(weighted, axis=1, keepdims=True)
        norms[norms == 0] = 1.0
        return weighted / norms
