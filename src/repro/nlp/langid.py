"""Character n-gram language identification.

The paper classifies all 1.68M comments with ``langid.py`` (§4.2.3), finding
94% English and 2% German.  This module implements the same role from
scratch: a multinomial naive-Bayes classifier over character n-grams,
trained on bundled seed corpora for the languages that matter in the
Dissenter corpus (English, German, French, Spanish, Italian).

The seed corpora are short passages of everyday text; character-trigram
statistics of function words dominate, which is exactly why this family of
classifiers works well on short comments.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Mapping, Sequence

from repro.nlp.ngrams import char_ngrams

__all__ = ["LanguageIdentifier", "default_language_identifier", "SEED_CORPORA"]

SEED_CORPORA: dict[str, str] = {
    "en": (
        "the quick brown fox jumps over the lazy dog and this is the way "
        "that we have always spoken about the things which are important "
        "to the people of this country because they should not have been "
        "there when it happened and nobody would tell them what they were "
        "going to do with all of the money that was found in the house "
        "you know that I think this is not right and we will never agree "
        "with what the government said about the news this week because "
        "it was wrong and everyone could see that they were lying to us "
        "free speech is the right of every person and the comments on the "
        "internet should not be removed by anyone who disagrees with them"
    ),
    "de": (
        "der schnelle braune fuchs springt über den faulen hund und das "
        "ist die art wie wir immer über die dinge gesprochen haben die "
        "für die menschen dieses landes wichtig sind weil sie nicht dort "
        "hätten sein sollen als es geschah und niemand würde ihnen sagen "
        "was sie mit dem ganzen geld machen wollten das im haus gefunden "
        "wurde ich denke das ist nicht richtig und wir werden niemals "
        "zustimmen was die regierung diese woche über die nachrichten "
        "gesagt hat weil es falsch war und jeder sehen konnte dass sie "
        "uns angelogen haben die meinungsfreiheit ist das recht jedes "
        "menschen und die kommentare im internet sollten nicht entfernt "
        "werden von irgendjemandem der mit ihnen nicht einverstanden ist"
    ),
    "fr": (
        "le renard brun rapide saute par dessus le chien paresseux et "
        "c'est ainsi que nous avons toujours parlé des choses qui sont "
        "importantes pour les gens de ce pays parce qu'ils n'auraient pas "
        "dû être là quand cela s'est produit et personne ne leur dirait "
        "ce qu'ils allaient faire avec tout l'argent trouvé dans la "
        "maison je pense que ce n'est pas juste et nous ne serons jamais "
        "d'accord avec ce que le gouvernement a dit cette semaine parce "
        "que c'était faux et tout le monde pouvait voir qu'ils nous "
        "mentaient la liberté d'expression est le droit de chaque "
        "personne et les commentaires sur internet ne devraient pas être "
        "supprimés par quiconque n'est pas d'accord avec eux"
    ),
    "es": (
        "el rápido zorro marrón salta sobre el perro perezoso y esta es "
        "la manera en que siempre hemos hablado de las cosas que son "
        "importantes para la gente de este país porque no deberían haber "
        "estado allí cuando sucedió y nadie les diría lo que iban a hacer "
        "con todo el dinero que se encontró en la casa creo que esto no "
        "es correcto y nunca estaremos de acuerdo con lo que el gobierno "
        "dijo sobre las noticias esta semana porque estaba mal y todos "
        "podían ver que nos estaban mintiendo la libertad de expresión es "
        "el derecho de cada persona y los comentarios en internet no "
        "deberían ser eliminados por nadie que no esté de acuerdo"
    ),
    "it": (
        "la veloce volpe marrone salta sopra il cane pigro e questo è il "
        "modo in cui abbiamo sempre parlato delle cose che sono "
        "importanti per la gente di questo paese perché non avrebbero "
        "dovuto essere lì quando è successo e nessuno avrebbe detto loro "
        "cosa avrebbero fatto con tutti i soldi trovati nella casa penso "
        "che questo non sia giusto e non saremo mai d'accordo con quello "
        "che il governo ha detto sulle notizie questa settimana perché "
        "era sbagliato e tutti potevano vedere che ci stavano mentendo la "
        "libertà di parola è il diritto di ogni persona e i commenti su "
        "internet non dovrebbero essere rimossi da nessuno"
    ),
}


class LanguageIdentifier:
    """Multinomial naive-Bayes classifier over character n-grams.

    Args:
        order: character n-gram length (3 is the classic choice).
        smoothing: Laplace smoothing constant.
    """

    def __init__(self, order: int = 3, smoothing: float = 0.05):
        if order < 1:
            raise ValueError("order must be >= 1")
        if smoothing <= 0:
            raise ValueError("smoothing must be positive")
        self._order = order
        self._smoothing = smoothing
        self._log_probs: dict[str, dict[str, float]] = {}
        self._default_log_prob: dict[str, float] = {}
        self._languages: list[str] = []

    @property
    def languages(self) -> list[str]:
        """Languages the identifier was trained on."""
        return list(self._languages)

    def fit(self, corpora: Mapping[str, str]) -> "LanguageIdentifier":
        """Train from a {language: text} mapping."""
        if not corpora:
            raise ValueError("at least one training corpus is required")
        self._languages = sorted(corpora)
        vocab: set[str] = set()
        counts_per_lang: dict[str, Counter[str]] = {}
        for lang, text in corpora.items():
            counts = Counter(char_ngrams(text.lower(), self._order))
            counts_per_lang[lang] = counts
            vocab.update(counts)
        vocab_size = max(1, len(vocab))
        for lang in self._languages:
            counts = counts_per_lang[lang]
            total = sum(counts.values()) + self._smoothing * vocab_size
            self._log_probs[lang] = {
                gram: math.log((count + self._smoothing) / total)
                for gram, count in counts.items()
            }
            self._default_log_prob[lang] = math.log(self._smoothing / total)
        return self

    def scores(self, text: str) -> dict[str, float]:
        """Log-likelihood of the text under each language model."""
        if not self._languages:
            raise RuntimeError("identifier must be trained before use")
        grams = char_ngrams(text.lower(), self._order)
        result: dict[str, float] = {}
        for lang in self._languages:
            table = self._log_probs[lang]
            default = self._default_log_prob[lang]
            result[lang] = sum(table.get(gram, default) for gram in grams)
        return result

    def classify(self, text: str) -> str:
        """Most likely language; ties broken alphabetically.

        Empty/whitespace-only text defaults to English (matching langid's
        behaviour of always producing a label).
        """
        if not text.strip():
            return "en" if "en" in self._languages else self._languages[0]
        scored = self.scores(text)
        return min(scored, key=lambda lang: (-scored[lang], lang))

    def classify_many(self, texts: Sequence[str]) -> list[str]:
        """Classify a batch of texts."""
        return [self.classify(text) for text in texts]


def default_language_identifier() -> LanguageIdentifier:
    """Identifier trained on the bundled seed corpora.

    The English model is additionally trained on the platform's own
    vocabulary (including the synthetic hate lexicon, whose pseudo-words
    are not dictionary English but appear inside English comments) — the
    real langid.py was likewise trained on web text containing slang and
    slurs.  Without this, short toxic comments misclassify.
    """
    from repro.nlp.lexicons import (
        BENIGN_VOCAB,
        OBSCENE_VOCAB,
        OFFENSIVE_VOCAB,
        RUDE_VOCAB,
        hate_vocab,
    )

    corpora = dict(SEED_CORPORA)
    domain_text = " ".join(
        list(BENIGN_VOCAB)
        + list(OFFENSIVE_VOCAB)
        + list(OBSCENE_VOCAB)
        + list(RUDE_VOCAB)
        + hate_vocab()
    )
    # Repeat the base text so ordinary English n-gram statistics still
    # dominate; the domain vocabulary only needs to beat the OOV penalty.
    corpora["en"] = (corpora["en"] + " ") * 10 + (domain_text + " ") * 3
    return LanguageIdentifier().fit(corpora)
