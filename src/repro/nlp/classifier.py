"""The paper's three-class comment classifier (§3.5.3).

Pipeline: clean + stem + 1/2-gram features -> TF-IDF -> ADASYN oversampling
of the training set -> one-vs-rest linear SVM, hyperparameters chosen by
grid search under stratified 5-fold cross-validation.  The trained model
assigns each Dissenter comment a probability for each of {hate, offensive,
neither}.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.nlp.adasyn import adasyn_oversample
from repro.nlp.model_select import (
    CrossValResult,
    cross_validate,
    grid_search,
    weighted_f1,
)
from repro.nlp.svm import OneVsRestSVM
from repro.nlp.train_data import HATE, LABEL_NAMES, NEITHER, OFFENSIVE, LabeledCorpus
from repro.nlp.vectorize import TfidfVectorizer

__all__ = ["CommentClassifier", "TrainedCommentClassifier"]

_DEFAULT_GRID: dict[str, tuple] = {
    "regularization": (1e-3, 1e-4),
    "epochs": (5, 10),
}


@dataclass(frozen=True)
class ClassProbabilities:
    """Per-class probabilities for one comment."""

    hate: float
    offensive: float
    neither: float

    @property
    def predicted_label(self) -> int:
        probs = {HATE: self.hate, OFFENSIVE: self.offensive, NEITHER: self.neither}
        return max(probs, key=lambda k: probs[k])

    @property
    def predicted_name(self) -> str:
        return LABEL_NAMES[self.predicted_label]


class TrainedCommentClassifier:
    """A fitted classifier ready to score comments."""

    def __init__(
        self,
        vectorizer: TfidfVectorizer,
        model: OneVsRestSVM,
        cv_result: CrossValResult,
        best_params: Mapping[str, object],
    ):
        self._vectorizer = vectorizer
        self._model = model
        self.cv_result = cv_result
        self.best_params = dict(best_params)

    @property
    def cv_f1(self) -> float:
        """Mean cross-validated weighted F1 (the paper reports 0.87)."""
        return self.cv_result.mean

    def predict_proba(self, texts: Sequence[str]) -> list[ClassProbabilities]:
        """Probability of each class for each comment."""
        features = self._vectorizer.transform(list(texts))
        probs = self._model.predict_proba(features)
        classes = list(self._model.classes_)
        col = {cls: classes.index(cls) for cls in (HATE, OFFENSIVE, NEITHER)}
        return [
            ClassProbabilities(
                hate=float(row[col[HATE]]),
                offensive=float(row[col[OFFENSIVE]]),
                neither=float(row[col[NEITHER]]),
            )
            for row in probs
        ]

    def predict(self, texts: Sequence[str]) -> np.ndarray:
        """Hard class labels for each comment."""
        features = self._vectorizer.transform(list(texts))
        return self._model.predict(features)


class CommentClassifier:
    """Trainer for the 3-class pipeline.

    Args:
        max_features: vocabulary cap for the TF-IDF vectoriser.
        n_folds: cross-validation folds (paper: 5).
        use_adasyn: apply ADASYN to training folds (paper: yes).
        param_grid: SVM hyperparameter grid; a small default is provided.
        seed: RNG seed threaded through every stochastic component.
    """

    def __init__(
        self,
        max_features: int = 2000,
        n_folds: int = 5,
        use_adasyn: bool = True,
        param_grid: Mapping[str, Sequence] | None = None,
        seed: int = 0,
    ):
        self._max_features = max_features
        self._n_folds = n_folds
        self._use_adasyn = use_adasyn
        self._param_grid = dict(param_grid) if param_grid else dict(_DEFAULT_GRID)
        self._seed = seed

    def _resampler(self, x: np.ndarray, y: np.ndarray):
        return adasyn_oversample(x, y, seed=self._seed)

    def train(self, corpus: LabeledCorpus) -> TrainedCommentClassifier:
        """Grid-search, cross-validate, and fit the final model.

        The final model is refit on the full (ADASYN-augmented) corpus with
        the best hyperparameters found.
        """
        vectorizer = TfidfVectorizer(max_features=self._max_features, min_df=2)
        features = vectorizer.fit_transform(list(corpus.texts))
        labels = np.asarray(corpus.labels)
        resampler = self._resampler if self._use_adasyn else None

        search = grid_search(
            lambda **params: OneVsRestSVM(seed=self._seed, **params),
            self._param_grid,
            features,
            labels,
            n_folds=self._n_folds,
            metric=weighted_f1,
            seed=self._seed,
            resampler=resampler,
        )
        cv = cross_validate(
            lambda: OneVsRestSVM(seed=self._seed, **search.best_params),
            features,
            labels,
            n_folds=self._n_folds,
            metric=weighted_f1,
            seed=self._seed,
            resampler=resampler,
        )
        x_final, y_final = features, labels
        if resampler is not None:
            x_final, y_final = resampler(features, labels)
        final_model = OneVsRestSVM(seed=self._seed, **search.best_params)
        final_model.fit(x_final, y_final)
        return TrainedCommentClassifier(
            vectorizer=vectorizer,
            model=final_model,
            cv_result=cv,
            best_params=search.best_params,
        )
