"""A small feed-forward neural network, from scratch.

The third contender in §3.5.3's model comparison.  One hidden ReLU layer,
softmax output, cross-entropy loss, mini-batch SGD with momentum — a
deliberately period-appropriate architecture (the paper predates the
everything-is-a-transformer era, and its authors would have reached for
exactly this).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["MLPClassifier"]


def _softmax(z: np.ndarray) -> np.ndarray:
    shifted = z - z.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


class MLPClassifier:
    """One-hidden-layer network for multiclass text features.

    Args:
        hidden: hidden-layer width.
        epochs: passes over the training data.
        batch_size: mini-batch size.
        learning_rate: SGD step size.
        momentum: classical momentum coefficient.
        l2: weight decay.
        seed: init/shuffle seed.
    """

    def __init__(
        self,
        hidden: int = 64,
        epochs: int = 30,
        batch_size: int = 32,
        learning_rate: float = 0.05,
        momentum: float = 0.9,
        l2: float = 1e-4,
        seed: int = 0,
    ):
        if hidden < 1 or epochs < 1 or batch_size < 1:
            raise ValueError("hidden, epochs and batch_size must be >= 1")
        self._hidden = hidden
        self._epochs = epochs
        self._batch = batch_size
        self._lr = learning_rate
        self._momentum = momentum
        self._l2 = l2
        self._seed = seed
        self.classes_: np.ndarray | None = None
        self._w1: np.ndarray | None = None
        self._b1: np.ndarray | None = None
        self._w2: np.ndarray | None = None
        self._b2: np.ndarray | None = None

    def _forward(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        hidden = np.maximum(0.0, x @ self._w1 + self._b1)
        return hidden, _softmax(hidden @ self._w2 + self._b2)

    def fit(self, features: np.ndarray, labels: Sequence[int]) -> "MLPClassifier":
        """Train with mini-batch SGD."""
        x = np.asarray(features, dtype=np.float64)
        y_raw = np.asarray(labels)
        if x.ndim != 2 or x.shape[0] != y_raw.shape[0]:
            raise ValueError("features/labels shape mismatch")
        self.classes_ = np.unique(y_raw)
        index = {cls: i for i, cls in enumerate(self.classes_)}
        y = np.asarray([index[v] for v in y_raw])
        n, d = x.shape
        k = self.classes_.size

        rng = np.random.default_rng(self._seed)
        self._w1 = rng.normal(0, np.sqrt(2.0 / d), size=(d, self._hidden))
        self._b1 = np.zeros(self._hidden)
        self._w2 = rng.normal(0, np.sqrt(2.0 / self._hidden),
                              size=(self._hidden, k))
        self._b2 = np.zeros(k)
        velocity = [np.zeros_like(p) for p in
                    (self._w1, self._b1, self._w2, self._b2)]

        one_hot = np.eye(k)[y]
        for _ in range(self._epochs):
            order = rng.permutation(n)
            for start in range(0, n, self._batch):
                batch = order[start:start + self._batch]
                xb, tb = x[batch], one_hot[batch]
                hidden, probs = self._forward(xb)
                m = xb.shape[0]

                d_logits = (probs - tb) / m
                grad_w2 = hidden.T @ d_logits + self._l2 * self._w2
                grad_b2 = d_logits.sum(axis=0)
                d_hidden = (d_logits @ self._w2.T) * (hidden > 0)
                grad_w1 = xb.T @ d_hidden + self._l2 * self._w1
                grad_b1 = d_hidden.sum(axis=0)

                params = (self._w1, self._b1, self._w2, self._b2)
                grads = (grad_w1, grad_b1, grad_w2, grad_b2)
                for i, (param, grad) in enumerate(zip(params, grads)):
                    velocity[i] = self._momentum * velocity[i] - self._lr * grad
                    param += velocity[i]
        return self

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Softmax class probabilities."""
        if self._w1 is None:
            raise RuntimeError("model must be fitted before prediction")
        x = np.asarray(features, dtype=np.float64)
        _, probs = self._forward(x)
        return probs

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Most probable class labels."""
        probs = self.predict_proba(features)
        return self.classes_[np.argmax(probs, axis=1)]
