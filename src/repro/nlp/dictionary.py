"""Hate-term dictionary scoring.

Section 3.5.1 of the paper scores comments against the modified Hatebase
dictionary (1,027 terms) used by prior Gab/4chan studies: tokenise, stem,
and take the ratio of dictionary hits to total tokens.

The real Hatebase dictionary is licensed and consists largely of slurs, so
this reproduction ships a **synthetic** stand-in with the same statistical
structure: 1,027 deterministic pseudo-terms, a handful of deliberately
ambiguous everyday words (the paper calls out "queen" and "pig"), and a
"substring trap" term whose four leading characters appear inside an
innocuous country name — mirroring the paper's "Pakistan contains 'paki'"
false-positive discussion.  The scoring code path is identical to the
paper's; only the vocabulary is synthetic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.nlp.stem import PorterStemmer
from repro.nlp.tokenize import tokenize

__all__ = [
    "AMBIGUOUS_TERMS",
    "HATEBASE_SIZE",
    "HateDictionary",
    "build_synthetic_hatebase",
]

HATEBASE_SIZE = 1027
"""Term count of the modified Hatebase dictionary the paper uses."""

# Everyday words that also appear in the real dictionary and cause false
# positives (§3.5.1 names "queen" and "pig" explicitly).
AMBIGUOUS_TERMS: tuple[str, ...] = (
    "queen",
    "pig",
    "skank",
    "rat",
    "snake",
    "trash",
    "vermin",
    "parasite",
    "cockroach",
    "animal",
    "ape",
    "monkey",
)

# The substring-trap analogue: "zekist" is a dictionary term whose stem is a
# prefix of the innocuous token "zekistan" (a fictional country), mirroring
# the paper's Pakistan/"paki" example when substring matching is (wrongly)
# enabled.
SUBSTRING_TRAP_TERM = "zekist"
SUBSTRING_TRAP_INNOCUOUS = "zekistan"

# Generated pseudo-words must never collide with real common English words
# (onset+nucleus+coda can produce e.g. "not" or "but", which would turn
# stopwords into dictionary hits corpus-wide).
_ENGLISH_BLOCKLIST = frozenset(
    """
    not but bat bit sat set sit sun son man men net new now out top ten
    tin tan ton nut gut got get bet best hat hit hot hut jet job jam
    kid kit man map mat mad nod pat pet pit pot put rat rod rot run
    sad sap sod tab tap tip wet win wit zap fan far fat fit fun gap gas
    bad bag ban bed bid big bin bog box bud bug bun bus dig dim dip dog
    dot dug fin fig fog fox gum gun ham has had hen hid him hip his hop
    lab lad lag lap led leg let lid lip lit log lot low mob mop mud mug
    nap nip pad pan pen pig pin pop pub rag ram ran rap red rib rid rim
    rip rob rub rug sag sin sip six ski sky slat snap spit spot stab
    stop swim trap trim trip twin vet was web wig yes zip
    """.split()
)

_ONSETS = (
    "b", "bl", "br", "d", "dr", "f", "fl", "g", "gl", "gr", "h", "j", "k",
    "kl", "kr", "m", "n", "p", "pl", "pr", "r", "s", "sk", "sl", "sm", "sn",
    "sp", "st", "t", "tr", "v", "w", "z",
)
_NUCLEI = ("a", "e", "i", "o", "u", "aa", "ee", "oo", "ai", "ou")
_CODAS = ("b", "ck", "d", "f", "g", "k", "l", "m", "n", "p", "r", "rg",
          "rk", "s", "sh", "t", "x", "zz")


def _pseudo_word(rng: np.random.Generator, syllables: int) -> str:
    parts = []
    for _ in range(syllables):
        parts.append(str(rng.choice(_ONSETS)))
        parts.append(str(rng.choice(_NUCLEI)))
    parts.append(str(rng.choice(_CODAS)))
    return "".join(parts)


def build_synthetic_hatebase(seed: int = 1027) -> list[str]:
    """Build the deterministic synthetic hate lexicon.

    Returns exactly :data:`HATEBASE_SIZE` unique terms: generated
    pseudo-words (some with a trailing-"z" slang variant, mirroring the
    paper's stemming/fuzzy-matching discussion), the ambiguous everyday
    terms, and the substring-trap term.
    """
    rng = np.random.default_rng(seed)
    terms: list[str] = list(AMBIGUOUS_TERMS)
    terms.append(SUBSTRING_TRAP_TERM)
    seen = set(terms)
    seen.add(SUBSTRING_TRAP_INNOCUOUS)  # never generate the innocuous word
    while len(terms) < HATEBASE_SIZE:
        word = _pseudo_word(rng, syllables=int(rng.integers(1, 3)))
        if len(word) < 3 or word in seen or word in _ENGLISH_BLOCKLIST:
            continue
        seen.add(word)
        terms.append(word)
        # ~10% of terms get a trailing-z slang variant, as real hate slang
        # often does ("...can yield false negatives, for instance if the
        # hate word is succeeded with a 'z'").
        if rng.random() < 0.10 and len(terms) < HATEBASE_SIZE:
            variant = word + "z"
            if variant not in seen:
                seen.add(variant)
                terms.append(variant)
    return terms


@dataclass(frozen=True)
class DictionaryScore:
    """Per-comment dictionary scoring result."""

    hate_tokens: int
    total_tokens: int
    matches: tuple[str, ...]

    @property
    def ratio(self) -> float:
        """Hate-token ratio; 0.0 for empty comments."""
        if self.total_tokens == 0:
            return 0.0
        return self.hate_tokens / self.total_tokens


class HateDictionary:
    """Tokenise-stem-match dictionary scorer (paper §3.5.1).

    Args:
        terms: the dictionary vocabulary; defaults to the synthetic
            Hatebase stand-in.
        substring_matching: when True, also count tokens that merely
            *contain* a dictionary term — deliberately reproducing the
            false-positive failure mode the paper warns about.  Off by
            default.
    """

    def __init__(
        self,
        terms: Iterable[str] | None = None,
        substring_matching: bool = False,
    ):
        self._stemmer = PorterStemmer()
        raw_terms = list(terms) if terms is not None else build_synthetic_hatebase()
        self._raw_terms = frozenset(t.lower() for t in raw_terms)
        # Stems shorter than 3 characters would turn stopwords like "to"
        # into dictionary hits (e.g. the stem of a term ending in "s"), so
        # they are matched on the raw form only.
        self._stemmed_terms = frozenset(
            s for s in (self._stemmer.stem(t) for t in self._raw_terms) if len(s) >= 3
        )
        self._substring = substring_matching

    @property
    def size(self) -> int:
        """Number of raw dictionary terms."""
        return len(self._raw_terms)

    def is_hate_token(self, token: str) -> bool:
        """Whether a single token matches the dictionary."""
        token = token.lower()
        stemmed = self._stemmer.stem(token)
        if token in self._raw_terms or stemmed in self._stemmed_terms:
            return True
        if self._substring:
            return any(term in token for term in self._raw_terms if len(term) >= 4)
        return False

    def score(self, text: str) -> DictionaryScore:
        """Score a comment: ratio of dictionary hits over total tokens."""
        tokens = tokenize(text)
        matches = tuple(tok for tok in tokens if self.is_hate_token(tok))
        return DictionaryScore(
            hate_tokens=len(matches),
            total_tokens=len(tokens),
            matches=matches,
        )

    def score_many(self, texts: Sequence[str]) -> np.ndarray:
        """Vector of hate ratios for a batch of comments."""
        return np.asarray([self.score(text).ratio for text in texts])
