"""Reproduction of "Reading In-Between the Lines: An Analysis of Dissenter".

Rye, Blackburn, Beverly — IMC 2020 (arXiv:2009.01772).

The studied platform is defunct, so this library pairs a faithful
synthetic Gab + Dissenter world (served over an in-memory HTTP substrate)
with a complete re-implementation of the paper's measurement stack:

``repro.platform``
    The world generator: Gab accounts and their ID counter, Dissenter
    users/comments/votes/shadow content, the follower graph, YouTube,
    Reddit and news-site baselines — plus the HTTP origins serving it.
``repro.net``
    The wire: HTTP message model, loopback transport with virtual clock
    and fault injection, routing, client retries, rate limiting.
``repro.crawler``
    The paper's §3 methodology: Gab ID enumeration, response-size account
    detection, comment spidering, authenticated shadow re-crawls, YouTube
    render crawling, paginated social-graph crawling, Reddit matching,
    checkpointing and validation.
``repro.nlp``
    From-scratch NLP: tokeniser, Porter stemmer, hate dictionary,
    language identification, TF-IDF, ADASYN, linear SVM, model selection.
``repro.perspective``
    A local, API-shaped stand-in for Google's Perspective models.
``repro.stats``
    ECDFs, concentration measures, discrete power-law fits, KS tests.
``repro.core``
    The §4 analyses: one module per table/figure, plus the end-to-end
    :class:`~repro.core.pipeline.ReproductionPipeline`.

Quickstart::

    from repro.core import ReproductionPipeline
    from repro.platform import WorldConfig

    report = ReproductionPipeline(WorldConfig(scale=0.005, seed=42)).run()
    print(report.headlines)
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
