"""Command-line interface: ``python -m repro <command>``.

Commands:

``run``
    Build a world, run the full crawl + analyses, print the paper-style
    report (optionally write crawl checkpoint and report files).
``crawl``
    Run only the collection stages and write a crawl checkpoint.
``score``
    Score text (stdin or arguments) with the dictionary, the Perspective
    models, and optionally the SVM classifier.
``diffuse``
    Seeded independent-cascade hate-diffusion simulation over the
    crawled follow graph (Mathew et al.'s workload on the CSR engine).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.core.pipeline import ReproductionPipeline
from repro.core.report import (
    render_full_report,
    render_stage_timings,
    report_to_payload,
)
from repro.crawler.checkpoint import dump_result
from repro.crawler.runtime import Checkpointer, load_state
from repro.net.errors import CrawlKilled
from repro.nlp.dictionary import HateDictionary
from repro.perspective.models import PerspectiveModels
from repro.platform.config import WorldConfig

__all__ = ["build_parser", "main"]

EXIT_KILLED = 3   # the --die-after injector fired; state file holds progress


def _add_crawl_engine_flags(parser: argparse.ArgumentParser) -> None:
    """Fetch-engine options shared by ``run`` and ``crawl``."""
    parser.add_argument(
        "--connections", type=int, default=1, metavar="K",
        help="simulated concurrent connections for the crawl stages "
             "(default 1 = sequential; corpus, stats and checkpoints are "
             "bit-identical at any K — only the simulated crawl duration "
             "shrinks, to the makespan over K connections)")
    parser.add_argument(
        "--parse-workers", type=int, default=0, metavar="W",
        help="worker threads for off-loading page parsing during the "
             "crawl (0 = parse inline; results identical at any W)")
    parser.add_argument(
        "--store-dir", type=Path, default=None, metavar="DIR",
        help="spill sealed corpus segments to this directory; runtime "
             "checkpoints then reference them by name + hash instead of "
             "embedding the corpus, so a tick costs O(progress since the "
             "last tick) — corpus and report are bit-identical either way")
    parser.add_argument(
        "--segment-records", type=int, default=4096, metavar="N",
        help="records per sealed corpus segment (default 4096)")
    parser.add_argument(
        "--no-columns", action="store_true",
        help="disable the columnar analytics layer: skip projecting "
             "sealed segments into typed column arrays and run the §4 "
             "analyses over the record dicts instead (the oracle path; "
             "every report number is identical either way)")


def _add_resume_flags(parser: argparse.ArgumentParser) -> None:
    """Checkpoint/resume options shared by ``run`` and ``crawl``."""
    parser.add_argument(
        "--checkpoint-every", type=int, default=0, metavar="N",
        help="write a resumable crawl checkpoint every N fetched pages "
             "(0 = only on --resume; checkpoints are atomic)")
    parser.add_argument(
        "--checkpoint-seconds", type=float, default=0.0, metavar="M",
        help="also checkpoint every M simulated seconds (0 = off)")
    parser.add_argument(
        "--resume", action="store_true",
        help="resume the crawl from the --state file's last checkpoint")
    parser.add_argument(
        "--state", type=Path, default=None,
        help="runtime checkpoint file (default: <out/report>.state.json)")
    parser.add_argument(
        "--die-after", type=int, default=None, metavar="K",
        help="kill the crawl after K HTTP requests (crash-safety testing; "
             f"exits with status {EXIT_KILLED})")


def _build_runtime(args: argparse.Namespace, pipeline: ReproductionPipeline,
                   default_state: Path) -> tuple[Checkpointer | None, dict | None]:
    """Assemble the Checkpointer and resume payload from CLI flags."""
    state_path = args.state or default_state
    checkpointer = None
    wants_checkpoints = (
        args.checkpoint_every > 0 or args.checkpoint_seconds > 0 or args.resume
    )
    if wants_checkpoints:
        checkpointer = Checkpointer(
            state_path,
            every_pages=args.checkpoint_every if args.checkpoint_every > 0 else 25,
            every_seconds=args.checkpoint_seconds,
            clock=pipeline.origins.clock,
        )
    resume_payload = None
    if args.resume:
        if not state_path.exists():
            raise SystemExit(
                f"--resume: no checkpoint state at {state_path}"
            )
        resume_payload = load_state(state_path)
    if args.die_after is not None:
        pipeline.origins.transport.kill_after(args.die_after)
    return checkpointer, resume_payload


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Reading In-Between the Lines: An Analysis "
            "of Dissenter' (IMC 2020)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="full crawl + analyses + report")
    run.add_argument("--scale", type=float, default=0.005,
                     help="world scale (1.0 = the paper's sizes)")
    run.add_argument("--seed", type=int, default=42, help="world seed")
    run.add_argument("--core", action="store_true",
                     help="plant the 42-user hateful core")
    run.add_argument("--workers", type=int, default=0,
                     help="scoring-pass worker threads (0 = serial; "
                          "results are identical at any worker count)")
    run.add_argument("--checkpoint", type=Path, default=None,
                     help="write the crawl corpus to this JSON file")
    run.add_argument("--report", type=Path, default=None,
                     help="write the text report to this file")
    run.add_argument("--report-json", type=Path, default=None,
                     help="write the full analysis payload as JSON (stable "
                          "across runs of the same world; extras excluded)")
    run.add_argument("--with-faults", action="store_true",
                     help="inject transport faults (exercises retries)")
    run.add_argument("--nx-oracle", action="store_true",
                     help="route the §4.5 social analyses through the "
                          "networkx oracle instead of the CSR graph engine "
                          "(requires the 'nx' extra; the report is "
                          "bit-identical either way — CI diffs the two)")
    _add_crawl_engine_flags(run)
    _add_resume_flags(run)

    crawl = sub.add_parser("crawl", help="collection stages only")
    crawl.add_argument("--scale", type=float, default=0.005)
    crawl.add_argument("--seed", type=int, default=42)
    crawl.add_argument("--out", type=Path, required=True,
                       help="checkpoint file to write")
    crawl.add_argument("--with-faults", action="store_true",
                       help="inject transport faults (exercises retries)")
    crawl.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="run the corpus stages sharded over N worker processes "
             "(linux fork); the parent merges per-shard logs so the "
             "corpus, segments and manifest are byte-identical to the "
             "unsharded run at any N (composes with --connections, "
             "--resume and --die-after; rejects --with-faults; skips "
             "the non-corpus YouTube/social/validation stages)")
    _add_crawl_engine_flags(crawl)
    _add_resume_flags(crawl)

    score = sub.add_parser("score", help="score comment text")
    score.add_argument("text", nargs="*", help="comment text (default: stdin)")

    # ``analyze`` forwards its whole tail to repro.analysis (main()
    # intercepts it before parsing); registered here for --help only.
    sub.add_parser(
        "analyze",
        help="run the determinism & concurrency lint suite "
             "(all arguments forwarded to python -m repro.analysis)",
        add_help=False,
    )

    figures = sub.add_parser("figures", help="render the paper's figures as SVG")
    figures.add_argument("--scale", type=float, default=0.004)
    figures.add_argument("--seed", type=int, default=42)
    figures.add_argument("--out", type=Path, default=Path("figures"),
                         help="output directory for the SVG files")
    figures.add_argument("--workers", type=int, default=0,
                         help="scoring-pass worker threads (0 = serial)")

    serve = sub.add_parser(
        "serve",
        help="mount the read API over a crawled corpus and issue requests",
    )
    serve.add_argument("--scale", type=float, default=0.002)
    serve.add_argument("--seed", type=int, default=42)
    serve.add_argument("--store-dir", type=Path, default=None,
                       help="spill directory for sealed corpus segments")
    serve.add_argument("path", nargs="*",
                       help="API paths to request (default: /api/status)")

    loadgen = sub.add_parser(
        "loadgen",
        help="seeded deterministic load run against the serve API",
    )
    loadgen.add_argument("--scale", type=float, default=0.002)
    loadgen.add_argument("--seed", type=int, default=42)
    loadgen.add_argument("--store-dir", type=Path, default=None,
                         help="spill directory for sealed corpus segments")
    loadgen.add_argument("--users", type=int, default=500,
                         help="simulated client population")
    loadgen.add_argument("--requests", type=int, default=2000,
                         help="total requests to issue")
    loadgen.add_argument("--load-seed", type=int, default=0,
                         help="load-schedule RNG seed (independent of the "
                              "world seed)")
    loadgen.add_argument("--mean-gap", type=float, default=0.01,
                         help="mean virtual think time between requests")
    loadgen.add_argument("--out", type=Path, default=None,
                         help="also write the summary to this file")

    diffuse = sub.add_parser(
        "diffuse",
        help="seeded independent-cascade hate-diffusion simulation over "
             "the crawled follow graph",
    )
    diffuse.add_argument("--scale", type=float, default=0.002,
                         help="world scale (1.0 = the paper's sizes)")
    diffuse.add_argument("--seed", type=int, default=42, help="world seed")
    diffuse.add_argument("--workers", type=int, default=0,
                         help="scoring-pass worker threads (0 = serial)")
    diffuse.add_argument("--seeds", type=int, default=10, metavar="K",
                         help="seed-set size for the top-degree and random "
                              "strategies (default 10)")
    diffuse.add_argument("--rounds", type=int, default=20,
                         help="cascade round cap (default 20)")
    diffuse.add_argument("--base-p", type=float, default=0.05,
                         help="base per-edge activation probability")
    diffuse.add_argument("--tox-weight", type=float, default=0.25,
                         help="weight of the source's median toxicity on "
                              "the edge activation probability")
    diffuse.add_argument("--diffusion-seed", type=int, default=0,
                         help="cascade RNG seed (independent of the world "
                              "seed; the report is a pure function of both)")
    diffuse.add_argument("--json", type=Path, default=None, metavar="FILE",
                         help="write the full diffusion report as JSON "
                              "('-' for stdout)")
    return parser


def _config(args: argparse.Namespace) -> WorldConfig:
    kwargs: dict = {"scale": args.scale, "seed": args.seed}
    if getattr(args, "core", False):
        kwargs.update(
            planted_core_size=42, core_components=6, core_giant_size=32
        )
    return WorldConfig(**kwargs)


def _cmd_run(args: argparse.Namespace) -> int:
    pipeline = ReproductionPipeline(
        _config(args),
        with_faults=args.with_faults,
        workers=args.workers,
        connections=args.connections,
        parse_workers=args.parse_workers,
        store_dir=str(args.store_dir) if args.store_dir is not None else None,
        segment_records=args.segment_records,
        columns=not args.no_columns,
        nx_oracle=args.nx_oracle,
    )
    print(f"world: {pipeline.world.summary()}", file=sys.stderr)
    default_state = Path(
        str(args.report or args.checkpoint or "repro-run") + ".state.json"
    )
    checkpointer, resume_payload = _build_runtime(args, pipeline, default_state)
    try:
        report = pipeline.run(checkpointer=checkpointer, resume=resume_payload)
    except CrawlKilled as killed:
        state_path = args.state or default_state
        print(f"crawl killed after {killed.requests_served} requests; "
              f"resume with --resume --state {state_path}", file=sys.stderr)
        return EXIT_KILLED
    if checkpointer is not None:
        checkpointer.path.unlink(missing_ok=True)
    text = render_full_report(report)
    print(text)
    print(render_stage_timings(report), file=sys.stderr)
    if args.checkpoint is not None:
        dump_result(report.corpus, args.checkpoint)
        print(f"checkpoint written to {args.checkpoint}", file=sys.stderr)
    if args.report is not None:
        args.report.write_text(text + "\n", encoding="utf-8")
        print(f"report written to {args.report}", file=sys.stderr)
    if args.report_json is not None:
        payload = report_to_payload(report)
        args.report_json.write_text(
            json.dumps(payload, indent=1) + "\n", encoding="utf-8"
        )
        print(f"JSON payload written to {args.report_json}", file=sys.stderr)
    return 0


def _cmd_crawl_sharded(args: argparse.Namespace) -> int:
    """The --shards N path: multi-process corpus crawl + deterministic merge."""
    from repro.crawler.shard import ShardEngine
    from repro.platform.world import build_world

    if args.with_faults:
        raise SystemExit(
            "--shards does not compose with --with-faults: fault injection "
            "is seeded by global request order, which sharding re-partitions"
        )
    if args.shards < 1:
        raise SystemExit("--shards must be >= 1")
    world = build_world(_config(args))
    print(f"world: {world.summary()}", file=sys.stderr)
    state_path = args.state or Path(str(args.out) + ".state.json")
    engine = ShardEngine(
        world,
        args.shards,
        args.out,
        connections=args.connections,
        parse_workers=args.parse_workers,
        store_dir=str(args.store_dir) if args.store_dir is not None else None,
        segment_records=args.segment_records,
        columns=not args.no_columns,
        checkpoint_every=args.checkpoint_every,
        checkpoint_seconds=args.checkpoint_seconds,
        die_after=args.die_after,
        state_path=state_path,
    )
    resume_payload = None
    if args.resume:
        if not state_path.exists():
            raise SystemExit(f"--resume: no checkpoint state at {state_path}")
        resume_payload = load_state(state_path)
    try:
        corpus = engine.run(resume=resume_payload)
    except CrawlKilled as killed:
        print(f"sharded crawl killed after {killed.requests_served} requests; "
              f"resume with --resume --state {state_path}", file=sys.stderr)
        return EXIT_KILLED
    except ValueError as exc:
        raise SystemExit(f"--shards: {exc}") from exc
    corpus.seal()
    dump_result(corpus, args.out)
    engine.cleanup()
    print(f"crawled {corpus.summary()} "
          f"({engine.requests} HTTP requests over {args.shards} shard(s))")
    print(f"simulated crawl duration: {engine.simulated_seconds:.1f}s "
          f"over {args.shards} shard(s) x {args.connections} connection(s)")
    print(f"checkpoint written to {args.out}")
    return 0


def _cmd_crawl(args: argparse.Namespace) -> int:
    if args.shards is not None:
        return _cmd_crawl_sharded(args)
    pipeline = ReproductionPipeline(
        _config(args),
        with_faults=args.with_faults,
        connections=args.connections,
        parse_workers=args.parse_workers,
        store_dir=str(args.store_dir) if args.store_dir is not None else None,
        segment_records=args.segment_records,
        columns=not args.no_columns,
    )
    default_state = Path(str(args.out) + ".state.json")
    checkpointer, resume_payload = _build_runtime(args, pipeline, default_state)
    try:
        artifacts = pipeline.stage_crawl(
            checkpointer=checkpointer, resume=resume_payload
        )
    except CrawlKilled as killed:
        state_path = args.state or default_state
        print(f"crawl killed after {killed.requests_served} requests; "
              f"resume with --resume --state {state_path}", file=sys.stderr)
        return EXIT_KILLED
    corpus = artifacts.corpus
    dump_result(corpus, args.out)
    if checkpointer is not None:
        # The finished corpus supersedes the runtime state file.
        checkpointer.path.unlink(missing_ok=True)
    print(f"crawled {corpus.summary()} "
          f"({pipeline.client.stats.requests} HTTP requests, "
          f"{pipeline.client.stats.timeouts} timeouts retried)")
    simulated = getattr(pipeline.client.clock, "total_slept", None)
    if simulated is not None:
        print(f"simulated crawl duration: {simulated:.1f}s "
              f"over {args.connections} connection(s)")
    print(f"checkpoint written to {args.out}")
    return 0


def _cmd_score(args: argparse.Namespace) -> int:
    texts = args.text or [line.strip() for line in sys.stdin if line.strip()]
    if not texts:
        print("no text to score", file=sys.stderr)
        return 1
    dictionary = HateDictionary()
    models = PerspectiveModels()
    for text in texts:
        scores = models.score(text)
        ratio = dictionary.score(text).ratio
        print(f"{text[:60]!r}")
        print(f"  dictionary hate ratio: {ratio:.3f}")
        for name, value in scores.items():
            print(f"  {name}: {value:.3f}")
    return 0


def _build_stack(args: argparse.Namespace):
    from repro.serve import build_serve_stack

    return build_serve_stack(
        scale=args.scale,
        seed=args.seed,
        store_dir=str(args.store_dir) if args.store_dir is not None else None,
    )


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.net.http import Request

    stack = _build_stack(args)
    print(f"serving {stack.corpus.summary()} at https://{stack.app.host} "
          f"(manifest {stack.app.manifest_hash[:12]})", file=sys.stderr)
    paths = args.path or ["/api/status"]
    worst = 0
    for path in paths:
        request = Request(
            method="GET", url=f"https://{stack.app.host}{path}"
        )
        request.headers.set("X-Client-Id", "cli")
        response = stack.transport.send(request)
        worst = max(worst, 0 if response.status == 200 else 1)
        print(f"{response.status} {path}", file=sys.stderr)
        print(response.body.decode("utf-8"))
    return worst


def _cmd_loadgen(args: argparse.Namespace) -> int:
    from repro.serve import LoadGenerator

    stack = _build_stack(args)
    print(f"loadgen over {stack.corpus.summary()} "
          f"(manifest {stack.app.manifest_hash[:12]})", file=sys.stderr)
    generator = LoadGenerator(
        stack.transport,
        stack.app,
        n_users=args.users,
        n_requests=args.requests,
        seed=args.load_seed,
        mean_gap=args.mean_gap,
    )
    report = generator.run()
    text = report.summary_text()
    print(text)
    if args.out is not None:
        args.out.write_text(text + "\n", encoding="utf-8")
        print(f"summary written to {args.out}", file=sys.stderr)
    return 0


def _cmd_diffuse(args: argparse.Namespace) -> int:
    from repro.core.socialnet import (
        extract_hateful_core,
        per_user_activity_toxicity,
    )
    from repro.graph import run_diffusion

    pipeline = ReproductionPipeline(_config(args), workers=args.workers)
    print(f"world: {pipeline.world.summary()}", file=sys.stderr)
    artifacts = pipeline.stage_crawl()
    score_store = pipeline.stage_score(artifacts)
    counts, toxicity = per_user_activity_toxicity(
        artifacts.corpus, artifacts.gab_ids, score_store
    )
    core = extract_hateful_core(artifacts.graph, counts, toxicity)
    report = run_diffusion(
        artifacts.graph,
        toxicity,
        core_members=core.members,
        n_seeds=args.seeds,
        base_p=args.base_p,
        tox_weight=args.tox_weight,
        max_rounds=args.rounds,
        seed=args.diffusion_seed,
    )
    print(report.summary_text())
    if args.json is not None:
        text = json.dumps(report.to_payload(), indent=1, sort_keys=True) + "\n"
        if str(args.json) == "-":
            sys.stdout.write(text)
        else:
            args.json.write_text(text, encoding="utf-8")
            print(f"JSON report written to {args.json}", file=sys.stderr)
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    from repro.viz.figures import render_all_figures

    pipeline = ReproductionPipeline(_config(args), workers=args.workers)
    report = pipeline.run()
    written = render_all_figures(report, args.out)
    for path in written:
        print(path)
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "analyze":
        # The lint suite owns its own argument surface (including
        # --help); forward the tail untouched.
        from repro.analysis.cli import main as analysis_main

        return analysis_main(argv[1:])
    args = build_parser().parse_args(argv)
    handlers = {
        "run": _cmd_run,
        "crawl": _cmd_crawl,
        "score": _cmd_score,
        "figures": _cmd_figures,
        "serve": _cmd_serve,
        "loadgen": _cmd_loadgen,
        "diffuse": _cmd_diffuse,
    }
    return handlers[args.command](args)


if __name__ == "__main__":   # pragma: no cover
    raise SystemExit(main())
