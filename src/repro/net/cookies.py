"""Cookie jar with domain scoping.

The paper's shadow-content methodology (§3.2) re-spiders Dissenter "using
the HTTP cookies of an authenticated account" with NSFW/offensive viewing
enabled.  The jar here implements the subset of RFC 6265 needed for that:
Set-Cookie parsing, domain/path matching, replacement, and Cookie header
assembly.
"""

from __future__ import annotations

from dataclasses import dataclass
from urllib.parse import urlsplit

__all__ = ["Cookie", "CookieJar"]


@dataclass(frozen=True)
class Cookie:
    """A single cookie bound to a domain and path."""

    name: str
    value: str
    domain: str
    path: str = "/"

    def matches(self, host: str, path: str) -> bool:
        """RFC 6265 domain-suffix and path-prefix matching."""
        host = host.lower()
        domain = self.domain.lower().lstrip(".")
        domain_ok = host == domain or host.endswith("." + domain)
        path_ok = path.startswith(self.path)
        return domain_ok and path_ok


def parse_set_cookie(header_value: str, default_domain: str) -> Cookie:
    """Parse one Set-Cookie header value."""
    parts = [p.strip() for p in header_value.split(";") if p.strip()]
    if not parts or "=" not in parts[0]:
        raise ValueError(f"malformed Set-Cookie: {header_value!r}")
    name, _, value = parts[0].partition("=")
    domain = default_domain
    path = "/"
    for attribute in parts[1:]:
        key, _, attr_value = attribute.partition("=")
        key = key.strip().lower()
        if key == "domain" and attr_value:
            domain = attr_value.strip()
        elif key == "path" and attr_value:
            path = attr_value.strip()
    return Cookie(name=name.strip(), value=value.strip(), domain=domain, path=path)


class CookieJar:
    """Holds cookies and assembles Cookie headers per request."""

    def __init__(self) -> None:
        self._cookies: dict[tuple[str, str, str], Cookie] = {}

    def __len__(self) -> int:
        return len(self._cookies)

    def set(self, cookie: Cookie) -> None:
        """Insert or replace a cookie (keyed by name, domain, path)."""
        self._cookies[(cookie.name, cookie.domain.lower(), cookie.path)] = cookie

    def set_simple(self, name: str, value: str, domain: str) -> None:
        """Convenience: set a host-wide cookie."""
        self.set(Cookie(name=name, value=value, domain=domain))

    def get(self, name: str, domain: str) -> Cookie | None:
        for cookie in self._cookies.values():
            if cookie.name == name and cookie.matches(domain, "/"):
                return cookie
        return None

    def clear(self, domain: str | None = None) -> None:
        """Drop all cookies, or only those for one domain."""
        if domain is None:
            self._cookies.clear()
            return
        domain = domain.lower()
        self._cookies = {
            key: cookie
            for key, cookie in self._cookies.items()
            if not cookie.matches(domain, "/")
        }

    def ingest_response(self, url: str, set_cookie_values: list[str]) -> None:
        """Store cookies from a response's Set-Cookie headers."""
        host = urlsplit(url).netloc.lower()
        for value in set_cookie_values:
            self.set(parse_set_cookie(value, default_domain=host))

    def to_state(self) -> list[dict]:
        """Snapshot the jar as a JSON-serialisable list (checkpointing)."""
        return [
            {
                "name": cookie.name,
                "value": cookie.value,
                "domain": cookie.domain,
                "path": cookie.path,
            }
            for cookie in self._cookies.values()
        ]

    @classmethod
    def from_state(cls, state: list[dict]) -> "CookieJar":
        """Rebuild a jar from :meth:`to_state` output.

        Raises:
            ValueError: the state list is malformed.
        """
        jar = cls()
        try:
            for entry in state:
                jar.set(
                    Cookie(
                        name=entry["name"],
                        value=entry["value"],
                        domain=entry["domain"],
                        path=entry.get("path", "/"),
                    )
                )
        except (KeyError, TypeError) as exc:
            raise ValueError(f"malformed cookie-jar state: {exc!r}") from exc
        return jar

    def cookie_header_for(self, url: str) -> str | None:
        """Assemble the Cookie header for a request URL, or None."""
        parts = urlsplit(url)
        host = parts.netloc.lower()
        path = parts.path or "/"
        matched = [
            cookie
            for cookie in self._cookies.values()
            if cookie.matches(host, path)
        ]
        if not matched:
            return None
        matched.sort(key=lambda c: (-len(c.path), c.name))
        return "; ".join(f"{c.name}={c.value}" for c in matched)
