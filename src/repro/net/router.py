"""Server-side request routing for the synthetic origins.

Each synthetic site (dissenter.com, gab.com, youtube.com, …) is an
:class:`App`: an ordered list of routes whose patterns may contain
``{placeholder}`` segments.  Handlers receive the request and the extracted
path parameters and return a :class:`~repro.net.http.Response`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable

from repro.net.http import Request, Response

__all__ = ["App", "Route", "RouteHandler"]

RouteHandler = Callable[[Request, dict[str, str]], Response]

_PLACEHOLDER_RE = re.compile(r"\{(\w+)\}")


def _compile_pattern(pattern: str) -> re.Pattern[str]:
    """Compile ``/user/{name}`` into a regex with named groups.

    A placeholder matches one path segment; a trailing ``{rest:path}``-style
    greedy capture is spelled ``{name...}`` and matches the remainder of the
    path including slashes.
    """
    parts: list[str] = []
    index = 0
    for match in re.finditer(r"\{(\w+)(\.\.\.)?\}", pattern):
        parts.append(re.escape(pattern[index : match.start()]))
        name, greedy = match.group(1), match.group(2)
        if greedy:
            parts.append(f"(?P<{name}>.+)")
        else:
            parts.append(f"(?P<{name}>[^/]+)")
        index = match.end()
    parts.append(re.escape(pattern[index:]))
    return re.compile("^" + "".join(parts) + "$")


@dataclass
class Route:
    """A compiled route: method + path pattern + handler."""

    method: str
    pattern: str
    handler: RouteHandler
    regex: re.Pattern[str]

    def match(self, method: str, path: str) -> dict[str, str] | None:
        if method != self.method:
            return None
        found = self.regex.match(path)
        if found is None:
            return None
        return found.groupdict()


class App:
    """A synthetic origin server application.

    Usage::

        app = App("dissenter.com")

        @app.get("/user/{username}")
        def user_page(request, params):
            return Response.html(...)
    """

    def __init__(self, host: str, deterministic_render: bool = False) -> None:
        self.host = host.lower()
        # True promises that route dispatch (render) is a pure function of
        # the request — no mutable server state, no clock reads — so the
        # transport may memoise rendered responses.  Middleware (prepare)
        # carries the stateful parts (rate-limit windows, session checks)
        # and always runs.
        self.deterministic_render = deterministic_render
        self._routes: list[Route] = []
        self._middleware: list[Callable[[Request], Response | None]] = []

    def add_route(self, method: str, pattern: str, handler: RouteHandler) -> None:
        self._routes.append(
            Route(
                method=method.upper(),
                pattern=pattern,
                handler=handler,
                regex=_compile_pattern(pattern),
            )
        )

    def get(self, pattern: str) -> Callable[[RouteHandler], RouteHandler]:
        """Decorator registering a GET route."""
        def register(handler: RouteHandler) -> RouteHandler:
            self.add_route("GET", pattern, handler)
            return handler
        return register

    def post(self, pattern: str) -> Callable[[RouteHandler], RouteHandler]:
        """Decorator registering a POST route."""
        def register(handler: RouteHandler) -> RouteHandler:
            self.add_route("POST", pattern, handler)
            return handler
        return register

    def use(self, middleware: Callable[[Request], Response | None]) -> None:
        """Register middleware that may short-circuit a request.

        Middleware runs before routing; returning a Response (e.g. a 429
        from a rate limiter) stops dispatch, returning None continues.
        """
        self._middleware.append(middleware)

    def prepare(self, request: Request) -> Response | None:
        """Run the stateful half of dispatch: middleware.

        Returns a short-circuit response (e.g. a rate limiter's 429) or
        None when the request may proceed to :meth:`render`.
        """
        for middleware in self._middleware:
            early = middleware(request)
            if early is not None:
                early.url = request.url
                return early
        return None

    def render_cookie_key(self, request: Request) -> object:
        """Cookie-derived component of the transport's render-memo key.

        Defaults to the raw Cookie header.  Apps whose renders depend on
        the cookie only through coarser state (e.g. which view filters a
        session enables) may override this so sessions that would see
        identical bytes share one cache entry.  Must be hashable and a
        pure function of the request.
        """
        return request.cookie_header()

    def render(self, request: Request) -> Response:
        """Run the routing half of dispatch (no middleware).

        When ``deterministic_render`` is set this must be pure in the
        request, which lets the transport cache the result.
        """
        for route in self._routes:
            params = route.match(request.method, request.path)
            if params is not None:
                response = route.handler(request, params)
                response.url = request.url
                return response
        response = Response.not_found()
        response.url = request.url
        return response

    def handle(self, request: Request) -> Response:
        """Dispatch a request to the first matching route."""
        early = self.prepare(request)
        if early is not None:
            return early
        return self.render(request)
