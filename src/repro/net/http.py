"""HTTP message model: headers, requests, responses.

A deliberately small but faithful subset of HTTP/1.1 semantics — enough for
the crawl methodology the paper describes: status codes, case-insensitive
headers, query strings, cookies, redirects, JSON and HTML bodies, and
response sizes (which the paper uses to detect Dissenter accounts: >10 kB
for an existing user page vs ~150 B for a missing one).
"""

from __future__ import annotations

import json as _json
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Mapping
from urllib.parse import parse_qsl, quote, urlencode, urljoin, urlsplit

from repro.net.errors import HTTPStatusError

__all__ = ["Headers", "Request", "Response", "url_with_params"]

REASON_PHRASES: dict[int, str] = {
    200: "OK",
    201: "Created",
    204: "No Content",
    301: "Moved Permanently",
    302: "Found",
    304: "Not Modified",
    400: "Bad Request",
    401: "Unauthorized",
    403: "Forbidden",
    404: "Not Found",
    429: "Too Many Requests",
    500: "Internal Server Error",
    502: "Bad Gateway",
    503: "Service Unavailable",
}


class Headers:
    """Case-insensitive header map preserving insertion order.

    Multiple values per name are supported (needed for Set-Cookie).
    """

    def __init__(self, items: Mapping[str, str] | Iterable[tuple[str, str]] = ()) -> None:
        self._items: list[tuple[str, str]] = []
        if isinstance(items, Mapping):
            items = items.items()
        for name, value in items:
            self.add(name, value)

    def add(self, name: str, value: str) -> None:
        """Append a header, keeping any existing values with the same name."""
        self._items.append((name, str(value)))

    def set(self, name: str, value: str) -> None:
        """Replace all values of ``name`` with a single value."""
        lowered = name.lower()
        self._items = [(n, v) for n, v in self._items if n.lower() != lowered]
        self._items.append((name, str(value)))

    def get(self, name: str, default: str | None = None) -> str | None:
        lowered = name.lower()
        for n, v in self._items:
            if n.lower() == lowered:
                return v
        return default

    def get_all(self, name: str) -> list[str]:
        lowered = name.lower()
        return [v for n, v in self._items if n.lower() == lowered]

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and self.get(name) is not None

    def __iter__(self) -> Iterator[tuple[str, str]]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __repr__(self) -> str:
        return f"Headers({self._items!r})"

    def copy(self) -> "Headers":
        return Headers(self._items)


def url_with_params(url: str, params: Mapping[str, Any] | None) -> str:
    """Append query parameters to a URL (after any existing ones)."""
    if not params:
        return url
    encoded = urlencode({k: str(v) for k, v in params.items()})
    separator = "&" if "?" in url else "?"
    return f"{url}{separator}{encoded}"


@dataclass
class Request:
    """An outbound HTTP request.

    Attributes:
        method: HTTP verb, upper-case.
        url: absolute URL including scheme and host.
        headers: request headers (Cookie is filled in by the client).
        body: raw request body bytes.
    """

    method: str
    url: str
    headers: Headers = field(default_factory=Headers)
    body: bytes = b""

    def __post_init__(self) -> None:
        self.method = self.method.upper()
        parts = urlsplit(self.url)
        if parts.scheme not in ("http", "https"):
            raise ValueError(f"unsupported URL scheme in {self.url!r}")
        if not parts.netloc:
            raise ValueError(f"URL must be absolute: {self.url!r}")

    @property
    def host(self) -> str:
        return urlsplit(self.url).netloc.lower()

    @property
    def path(self) -> str:
        return urlsplit(self.url).path or "/"

    @property
    def query(self) -> dict[str, str]:
        """Query parameters (last value wins on duplicates)."""
        return dict(parse_qsl(urlsplit(self.url).query, keep_blank_values=True))

    @property
    def scheme(self) -> str:
        return urlsplit(self.url).scheme

    def cookie_header(self) -> str | None:
        return self.headers.get("Cookie")


@dataclass
class Response:
    """An inbound HTTP response.

    Attributes:
        status: status code.
        headers: response headers.
        body: raw body bytes (``size`` derives from this — the account
            detection trick needs honest byte counts).
        url: final URL the response was served from (after redirects).
        elapsed: simulated seconds the request took.
    """

    status: int
    headers: Headers = field(default_factory=Headers)
    body: bytes = b""
    url: str = ""
    elapsed: float = 0.0

    @property
    def reason(self) -> str:
        return REASON_PHRASES.get(self.status, "Unknown")

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 400

    @property
    def size(self) -> int:
        """Body size in bytes."""
        return len(self.body)

    @property
    def text(self) -> str:
        return self.body.decode("utf-8", errors="replace")

    def json(self) -> Any:
        """Decode the body as JSON."""
        return _json.loads(self.text)

    def raise_for_status(self) -> "Response":
        """Raise :class:`HTTPStatusError` on 4xx/5xx; return self otherwise."""
        if self.status >= 400:
            raise HTTPStatusError(self.status, self.url)
        return self

    def is_redirect(self) -> bool:
        return self.status in (301, 302) and "Location" in self.headers

    def redirect_target(self) -> str:
        location = self.headers.get("Location")
        if location is None:
            raise ValueError("response has no Location header")
        return urljoin(self.url, location)

    # ------------------------------------------------------------------
    # Convenience constructors used by the synthetic origin servers.
    # ------------------------------------------------------------------

    @classmethod
    def html(cls, markup: str, status: int = 200) -> "Response":
        headers = Headers({"Content-Type": "text/html; charset=utf-8"})
        return cls(status=status, headers=headers, body=markup.encode("utf-8"))

    @classmethod
    def json_response(cls, payload: Any, status: int = 200) -> "Response":
        headers = Headers({"Content-Type": "application/json"})
        return cls(
            status=status,
            headers=headers,
            body=_json.dumps(payload).encode("utf-8"),
        )

    @classmethod
    def not_found(cls, message: str = "Not Found") -> "Response":
        return cls.html(f"<html><body>{quote(message, safe=' ')}</body></html>", 404)

    @classmethod
    def redirect(cls, location: str, permanent: bool = False) -> "Response":
        headers = Headers({"Location": location})
        return cls(status=301 if permanent else 302, headers=headers)
