"""Networking substrate.

The paper's methodology is a web crawl: enumerate Gab's REST API, detect
Dissenter accounts by HTTP response size, spider HTML pages, honour
rate-limit headers, re-request timeouts.  Since the platform is defunct,
this package provides the substrate the crawl runs on: an HTTP
request/response model, a deterministic in-memory loopback transport with a
virtual clock and failure injection, a server-side router for the synthetic
origins, client-side retry/redirect/cookie machinery, and both token-bucket
and header-driven rate limiting.

Nothing here touches a real socket; the byte-level artefacts (headers,
HTML/JSON bodies, status codes, Set-Cookie) are real, the wire is simulated.
"""

from repro.net.client import ClientStats, HttpClient
from repro.net.clock import SystemClock, VirtualClock
from repro.net.cookies import Cookie, CookieJar
from repro.net.errors import (
    ConnectError,
    CrawlKilled,
    HTTPStatusError,
    NetworkError,
    RateLimitExceeded,
    TimeoutError,
    TooManyRedirects,
)
from repro.net.http import Headers, Request, Response
from repro.net.pool import FetchPool, FetchPoolStats
from repro.net.ratelimit import (
    HeaderRateLimiter,
    KeyedRateLimiter,
    TokenBucket,
)
from repro.net.router import App, Route
from repro.net.transport import FaultPlan, LoopbackTransport, Transport

__all__ = [
    "App",
    "ClientStats",
    "ConnectError",
    "Cookie",
    "CrawlKilled",
    "CookieJar",
    "FaultPlan",
    "FetchPool",
    "FetchPoolStats",
    "HTTPStatusError",
    "HeaderRateLimiter",
    "Headers",
    "HttpClient",
    "KeyedRateLimiter",
    "LoopbackTransport",
    "NetworkError",
    "RateLimitExceeded",
    "Request",
    "Response",
    "Route",
    "SystemClock",
    "TimeoutError",
    "TokenBucket",
    "TooManyRedirects",
    "Transport",
    "VirtualClock",
]
