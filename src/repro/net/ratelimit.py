"""Rate limiting, client- and server-side.

Two observations in the paper drive this module.  First (§3.2): Dissenter
enforced 10 requests/minute *per URL*, which never binds a breadth-first
crawl that requests each URL once — the per-key vs global distinction is
our ablation A1.  Second (§3.4): "Gab exposes its rate-limiting in the HTTP
response headers by including the number of remaining requests, as well as
the time at which the request limit will be refreshed", and the authors
wait for the refresh before continuing — implemented here as
:class:`HeaderRateLimiter`.
"""

from __future__ import annotations

import math
from collections import OrderedDict

from repro.net.clock import Clock
from repro.net.http import Response

__all__ = ["HeaderRateLimiter", "KeyedRateLimiter", "TokenBucket"]


class TokenBucket:
    """Classic token bucket.

    Args:
        rate: tokens added per second.
        capacity: bucket size (burst allowance).
        clock: time source.
    """

    def __init__(self, rate: float, capacity: float, clock: Clock) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self._rate = rate
        self._capacity = capacity
        self._clock = clock
        self._tokens = capacity
        self._updated = clock.now()

    def _refill(self) -> None:
        now = self._clock.now()
        elapsed = now - self._updated
        if elapsed > 0:
            self._tokens = min(self._capacity, self._tokens + elapsed * self._rate)
            self._updated = now

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Take tokens if available; never blocks."""
        self._refill()
        if self._tokens >= tokens:
            self._tokens -= tokens
            return True
        return False

    def wait_time(self, tokens: float = 1.0) -> float:
        """Seconds until ``tokens`` would be available (0 if now).

        The advertised wait is *sufficient*: a caller that sleeps exactly
        this long is guaranteed the next ``try_acquire(tokens)`` succeeds.
        ``deficit / rate`` alone can round one ulp short of the deficit
        when multiplied back by the rate — a server handing the quotient
        to a 429 ``Retry-After`` would then bounce the well-behaved
        client that honoured it, so the wait is extended ulp-by-ulp
        until the refill it promises actually covers the deficit.
        """
        self._refill()
        deficit = tokens - self._tokens
        if deficit <= 0:
            return 0.0
        now = self._updated   # _refill just synced this to clock.now()
        wait = deficit / self._rate
        # Replay the refill a sleeper will actually perform: it runs at
        # absolute time ``now + wait``, whose float granularity (ulps of
        # a ~1e9 epoch timestamp) dwarfs ulps of ``wait`` itself.  Step
        # the *arrival* timestamp up until the replayed refill covers
        # the deficit; each step is one representable clock instant, so
        # this converges in a couple of iterations.
        while True:
            arrival = now + wait
            elapsed = arrival - now
            if self._tokens + elapsed * self._rate >= tokens:
                return wait
            wait = math.nextafter(arrival, math.inf) - now

    def acquire(self, tokens: float = 1.0) -> float:
        """Block (on the clock) until tokens are available.

        Returns the seconds waited.
        """
        waited = self.wait_time(tokens)
        if waited > 0:
            self._clock.sleep(waited)
            self._refill()
        # The post-sleep refill computes elapsed * rate in floats; when
        # that rounds just below the deficit the balance would go (and
        # stay) negative, silently over-throttling every later acquire.
        self._tokens = max(0.0, self._tokens - tokens)
        return waited

    def is_full(self) -> bool:
        """True when the bucket has refilled to capacity (quiescent)."""
        self._refill()
        return self._tokens >= self._capacity


class KeyedRateLimiter:
    """A family of token buckets indexed by key.

    With ``key_fn = lambda req: req.url`` this reproduces Dissenter's
    per-URL limit; with a constant key it is a global limit.  Used on the
    *server* side of the simulation (middleware returning 429s) and in the
    A1 ablation.

    Memory is bounded: a crawl keyed per URL touches 588k distinct keys,
    but a bucket that has refilled to capacity is indistinguishable from
    a fresh one, so when the table exceeds ``max_keys`` the least recently
    used *full* buckets are evicted (a re-created bucket starts at
    capacity — bit-identical behavior).  Buckets still paying off debt
    are never evicted, so the table can only exceed ``max_keys`` while
    that many keys are simultaneously mid-window.
    """

    DEFAULT_MAX_KEYS = 4096

    #: Hits between eviction sweeps while the table is oversized.  The
    #: sweep scans every bucket (O(n)), so running it on a counter keeps
    #: the amortized per-hit cost constant; the counter (not the clock,
    #: not hash order) decides when, so sweep points are deterministic.
    HIT_SWEEP_INTERVAL = 64

    def __init__(
        self,
        rate: float,
        capacity: float,
        clock: Clock,
        max_keys: int = DEFAULT_MAX_KEYS,
    ) -> None:
        if max_keys < 1:
            raise ValueError("max_keys must be >= 1")
        self._rate = rate
        self._capacity = capacity
        self._clock = clock
        self._max_keys = max_keys
        self._buckets: OrderedDict[str, TokenBucket] = OrderedDict()
        self._hits_since_sweep = 0
        self.created = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._buckets)

    def _evict(self, protect: str) -> None:
        over = len(self._buckets) - self._max_keys
        if over <= 0:
            return
        # The just-created bucket starts full: without `protect` it would
        # be its own first eviction victim, discarding the token its
        # caller is about to take.  Stop scanning as soon as enough
        # victims are found — the table sits at most a few entries over
        # ``max_keys`` in steady state, so sweeping the whole dict here
        # made every new key an O(max_keys) operation (quadratic over a
        # crawl that touches millions of distinct URLs).
        victims = []
        for k, b in self._buckets.items():
            if k != protect and b.is_full():
                victims.append(k)
                if len(victims) >= over:
                    break
        for key in victims:
            del self._buckets[key]
            self.evictions += 1

    def bucket(self, key: str) -> TokenBucket:
        existing = self._buckets.get(key)
        if existing is None:
            existing = TokenBucket(self._rate, self._capacity, self._clock)
            self._buckets[key] = existing
            self.created += 1
            self._evict(protect=key)
        else:
            self._buckets.move_to_end(key)
            # A table pushed past max_keys by simultaneously-indebted
            # keys must shrink back once they refill, even when no new
            # key ever arrives (a server limiting a fixed URL set) —
            # sweep on hits too, amortized over HIT_SWEEP_INTERVAL.
            if len(self._buckets) > self._max_keys:
                self._hits_since_sweep += 1
                if self._hits_since_sweep >= self.HIT_SWEEP_INTERVAL:
                    self._hits_since_sweep = 0
                    self._evict(protect=key)
        return existing

    def try_acquire(self, key: str) -> bool:
        return self.bucket(key).try_acquire()

    def wait_time(self, key: str) -> float:
        return self.bucket(key).wait_time()


class HeaderRateLimiter:
    """Client-side limiter driven by X-RateLimit response headers.

    Mirrors the paper's Gab API etiquette: issue at most ``floor_interval``
    seconds apart, watch ``X-RateLimit-Remaining``, and when it hits zero
    sleep until ``X-RateLimit-Reset`` (an absolute timestamp) before
    issuing new requests.
    """

    REMAINING_HEADER = "X-RateLimit-Remaining"
    RESET_HEADER = "X-RateLimit-Reset"

    def __init__(self, clock: Clock, floor_interval: float = 1.0) -> None:
        if floor_interval < 0:
            raise ValueError("floor_interval must be >= 0")
        self._clock = clock
        self._floor = floor_interval
        self._last_request: float | None = None
        self._remaining: int | None = None
        self._reset_at: float | None = None
        self.total_waited = 0.0

    def before_request(self) -> float:
        """Wait as needed before the next request; returns seconds waited."""
        waited = 0.0
        now = self._clock.now()
        if self._remaining is not None and self._remaining <= 0:
            if self._reset_at is not None and self._reset_at > now:
                wait = self._reset_at - now
            else:
                # Remaining hit zero with no usable reset: either the
                # server sent none, or the recorded one has already
                # passed (a later response reported exhaustion without
                # refreshing it).  Waiting zero here would hammer the
                # server; back off by the floor interval instead.
                wait = self._floor
            if wait > 0:
                self._clock.sleep(wait)
                waited += wait
            # The window refreshed (or its reset was stale); forget
            # both halves so a past timestamp can never be compared
            # against a *future* exhaustion.
            self._remaining = None
            self._reset_at = None
        now = self._clock.now()
        if self._last_request is not None:
            since = now - self._last_request
            if since < self._floor:
                wait = self._floor - since
                self._clock.sleep(wait)
                waited += wait
        self._last_request = self._clock.now()
        self.total_waited += waited
        return waited

    def after_response(self, response: Response) -> None:
        """Ingest rate-limit headers from a response."""
        remaining = response.headers.get(self.REMAINING_HEADER)
        reset_at = response.headers.get(self.RESET_HEADER)
        if remaining is not None:
            try:
                self._remaining = int(remaining)
            except ValueError:
                self._remaining = None
        if reset_at is not None:
            try:
                self._reset_at = float(reset_at)
            except ValueError:
                self._reset_at = None
