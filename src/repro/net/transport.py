"""In-memory loopback transport with deterministic fault injection.

The transport plays the role of the Internet: it resolves a request's host
to a registered origin :class:`~repro.net.router.App`, charges simulated
latency against the shared virtual clock, and — per the paper's §3.2
methodology ("we monitor request timeouts and re-request missed pages") —
can inject timeouts and transient server errors from a seeded RNG so the
crawler's retry logic is genuinely exercised.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Protocol

import numpy as np

from repro.net.clock import Clock, VirtualClock
from repro.net.errors import ConnectError, CrawlKilled, TimeoutError
from repro.net.http import Request, Response

if TYPE_CHECKING:   # pragma: no cover - import cycle guard, types only
    from repro.net.router import App

__all__ = ["FaultPlan", "LoopbackTransport", "Transport"]


class Transport(Protocol):
    """Anything that can turn a Request into a Response."""

    def send(self, request: Request, timeout: float) -> Response:
        ...


@dataclass(frozen=True)
class FaultPlan:
    """Deterministic fault-injection policy.

    Attributes:
        timeout_rate: probability a request hangs past its deadline.
        error_rate: probability a request returns HTTP 503.
        max_faults_per_url: after this many faults for the same URL, the
            URL succeeds — guarantees crawler retry loops terminate.
    """

    timeout_rate: float = 0.0
    error_rate: float = 0.0
    max_faults_per_url: int = 2

    def __post_init__(self) -> None:
        if not 0.0 <= self.timeout_rate <= 1.0:
            raise ValueError("timeout_rate must be in [0, 1]")
        if not 0.0 <= self.error_rate <= 1.0:
            raise ValueError("error_rate must be in [0, 1]")
        if self.max_faults_per_url < 0:
            raise ValueError("max_faults_per_url must be >= 0")


class LoopbackTransport:
    """Routes requests to registered origin apps over a virtual wire.

    Args:
        clock: shared simulation clock; a fresh :class:`VirtualClock` is
            created when omitted.
        latency: simulated per-request round-trip seconds.
        faults: optional :class:`FaultPlan`.
        seed: RNG seed for fault injection.
    """

    RENDER_CACHE_SIZE = 4096

    def __init__(
        self,
        clock: Clock | None = None,
        latency: float = 0.05,
        faults: FaultPlan | None = None,
        seed: int = 0,
    ) -> None:
        self.clock: Clock = clock if clock is not None else VirtualClock()
        self._latency = latency
        self._faults = faults or FaultPlan()
        self._rng = np.random.default_rng(seed)
        self._origins: dict[str, object] = {}
        self._fault_counts: dict[str, int] = {}
        self._kill_remaining: int | None = None
        self._render_cache: OrderedDict[tuple, Response] = OrderedDict()
        self.requests_served = 0
        self.requests_attempted = 0
        self.render_hits = 0
        self.render_misses = 0
        self.faults_injected = 0

    def register(self, app: App) -> None:
        """Register an origin App; its ``host`` becomes routable."""
        self._origins[app.host] = app

    def kill_after(self, remaining: int | None) -> None:
        """Arm the die-after-K injector (None disarms).

        After ``remaining`` more send attempts, every subsequent send
        raises :class:`CrawlKilled` — simulating the crawling process
        dying mid-flight so checkpoint/resume paths can be exercised at
        an arbitrary request boundary.
        """
        if remaining is not None and remaining < 0:
            raise ValueError("remaining must be >= 0")
        self._kill_remaining = remaining

    def hosts(self) -> list[str]:
        return sorted(self._origins)

    def _maybe_fault(self, request: Request, timeout: float) -> Response | None:
        plan = self._faults
        if plan.timeout_rate == 0.0 and plan.error_rate == 0.0:
            return None
        url_faults = self._fault_counts.get(request.url, 0)
        if url_faults >= plan.max_faults_per_url:
            return None
        roll = self._rng.random()
        if roll < plan.timeout_rate:
            self._fault_counts[request.url] = url_faults + 1
            self.faults_injected += 1
            self.clock.sleep(timeout)
            raise TimeoutError(request.url, timeout)
        if roll < plan.timeout_rate + plan.error_rate:
            self._fault_counts[request.url] = url_faults + 1
            self.faults_injected += 1
            self.clock.sleep(self._latency)
            response = Response(status=503, url=request.url)
            return response
        return None

    def send(self, request: Request, timeout: float = 30.0) -> Response:
        """Deliver a request to its origin.

        Raises:
            ConnectError: no origin registered for the host.
            TimeoutError: injected timeout (per the fault plan).
            CrawlKilled: the die-after-K injector fired.
        """
        if self._kill_remaining is not None:
            if self._kill_remaining <= 0:
                raise CrawlKilled(self.requests_attempted)
            self._kill_remaining -= 1
        self.requests_attempted += 1
        host = request.host
        app = self._origins.get(host)
        if app is None:
            raise ConnectError(host)
        faulted = self._maybe_fault(request, timeout)
        if faulted is not None:
            return faulted
        start = self.clock.now()
        self.clock.sleep(self._latency)
        response = self._dispatch(app, request)
        response.elapsed = self.clock.now() - start
        if not response.url:
            response.url = request.url
        self.requests_served += 1
        return response

    def _dispatch(self, app: App, request: Request) -> Response:
        """Run an origin app, memoising pure renders.

        Apps that declare ``deterministic_render`` promise their route
        dispatch is a pure function of (method, url, cookie, body); their
        stateful middleware still runs every time via ``prepare``, but
        identical renders are served from a bounded LRU — the dominant
        CPU cost of a simulated fetch.  Apps without the split (test
        fakes) fall back to ``handle``.
        """
        prepare = getattr(app, "prepare", None)
        if prepare is None:
            return app.handle(request)
        early = prepare(request)
        if early is not None:
            return early
        if not getattr(app, "deterministic_render", False):
            return app.render(request)
        cookie_key = getattr(app, "render_cookie_key", None)
        key = (
            app.host,
            request.method,
            request.url,
            cookie_key(request) if cookie_key is not None
            else request.cookie_header(),
            request.body,
        )
        cached = self._render_cache.get(key)
        if cached is not None:
            self._render_cache.move_to_end(key)
            self.render_hits += 1
            # send() mutates .elapsed on what it returns; hand hits a
            # per-request shell around the shared body.
            return Response(
                status=cached.status,
                headers=cached.headers.copy(),
                body=cached.body,
                url=cached.url,
            )
        response = app.render(request)
        self._render_cache[key] = response
        self.render_misses += 1
        if len(self._render_cache) > self.RENDER_CACHE_SIZE:
            self._render_cache.popitem(last=False)
        # The live object doubles as the cache entry: send()'s own
        # .elapsed/.url writes are the only post-render mutations, and
        # both are identical for every request mapping to this key.
        return response
