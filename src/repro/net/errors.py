"""Exception hierarchy for the networking substrate.

Mirrors the error taxonomy of real HTTP client libraries so crawler code is
written exactly as it would be against a live platform: transport-level
failures (connect, timeout) are distinct from protocol-level ones (bad
status), and rate-limit exhaustion is its own signal.
"""

from __future__ import annotations

__all__ = [
    "ConnectError",
    "CrawlKilled",
    "HTTPStatusError",
    "NetworkError",
    "RateLimitExceeded",
    "TimeoutError",
    "TooManyRedirects",
]


class NetworkError(Exception):
    """Base class for all substrate errors."""


class CrawlKilled(RuntimeError):
    """Injected process death (the "die after K requests" test switch).

    Deliberately *not* a :class:`NetworkError`: retry loops and
    ``get_or_none`` must not swallow it — it models the whole process
    dying, and the only recovery is resuming from the last checkpoint.
    """

    def __init__(self, requests_served: int) -> None:
        super().__init__(
            f"crawl killed by injector after {requests_served} requests"
        )
        self.requests_served = requests_served


class ConnectError(NetworkError):
    """No origin is registered for the requested host (DNS/connect failure)."""

    def __init__(self, host: str) -> None:
        super().__init__(f"cannot connect to host {host!r}")
        self.host = host


class TimeoutError(NetworkError):
    """The (simulated) request exceeded its deadline."""

    def __init__(self, url: str, timeout: float) -> None:
        super().__init__(f"request to {url} timed out after {timeout:.3f}s")
        self.url = url
        self.timeout = timeout


class TooManyRedirects(NetworkError):
    """Redirect chain exceeded the client's limit."""

    def __init__(self, url: str, limit: int) -> None:
        super().__init__(f"exceeded {limit} redirects fetching {url}")
        self.url = url
        self.limit = limit


class HTTPStatusError(NetworkError):
    """Raised by ``Response.raise_for_status`` on 4xx/5xx responses."""

    def __init__(self, status: int, url: str) -> None:
        super().__init__(f"HTTP {status} for {url}")
        self.status = status
        self.url = url


class RateLimitExceeded(NetworkError):
    """A client-side limiter refused to issue the request."""

    def __init__(self, key: str, retry_after: float) -> None:
        super().__init__(
            f"rate limit exhausted for {key!r}; retry after {retry_after:.3f}s"
        )
        self.key = key
        self.retry_after = retry_after
