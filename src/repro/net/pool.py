"""Deterministic concurrent fetch engine: virtual connections + windows.

The paper's crawls took weeks at ~1 req/s because every request was
serial; a real measurement crawler keeps K connections in flight.  The
:class:`FetchPool` models that concurrency *deterministically*:

* **Virtual time.**  Each fetch runs inside a *flight* that captures the
  simulated seconds it slept (transport latency, retry backoff, rate-limit
  waits).  Flights are scheduled onto K virtual connection lanes through a
  min-heap of lane-free times — ties broken by submission sequence number —
  so the crawl's simulated duration (``VirtualClock.total_slept``) becomes
  the *makespan* over K lanes instead of the serial sum: ~K× lower.

* **Determinism.**  Fetches still *execute* in submission order against
  the shared canonical clock, so origins, fault injection, retries and
  rate-limit windows observe the exact same request sequence at any lane
  count: the corpus, stats and checkpoints are bit-identical across
  ``--connections`` values.  With ``connections=1`` the engine degenerates
  to the historical sequential crawl, step for step.

* **Windowed merge.**  :meth:`FetchPool.run` drives a crawl stage as
  repeated windows of up to K jobs: a *plan* callback chooses the next
  window (observing fully merged state, so job selection is identical to
  the sequential crawl), fetches run in submission order, pure *parse*
  work is optionally dispatched onto a bounded worker pool, and *process*
  merges results back in submission order — one checkpoint tick per job,
  exactly where the sequential crawl ticked.

* **Crash safety.**  A :class:`~repro.net.errors.CrawlKilled` (or any
  error) raised mid-window first merges the completed prefix — so the
  last checkpoint reflects exactly the work a sequential crawl would have
  completed — then propagates.
"""

from __future__ import annotations

import heapq
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterator, Protocol, Sequence, TypeVar

from repro.net.clock import Clock

__all__ = ["FetchPool", "FetchPoolStats"]

J = TypeVar("J")


class SupportsTick(Protocol):
    """What :meth:`FetchPool.run` needs from a checkpointer."""

    def tick(self) -> bool: ...


@dataclass
class FetchPoolStats:
    """Counters one pool accumulated (surfaced on report extras)."""

    connections: int = 1
    jobs: int = 0                   # flights scheduled
    windows: int = 0                # plan() windows executed
    high_watermark: int = 0         # max simultaneously-busy lanes
    busy_seconds: float = 0.0       # serial sum of flight durations
    makespan_seconds: float = 0.0   # concurrent elapsed over K lanes
    parse_tasks: int = 0            # parse callbacks offloaded to workers

    @property
    def speedup(self) -> float:
        """Serial-vs-concurrent simulated-duration ratio."""
        if self.makespan_seconds <= 0:
            return 1.0
        return self.busy_seconds / self.makespan_seconds

    def as_dict(self) -> dict[str, object]:
        return {
            "connections": self.connections,
            "jobs": self.jobs,
            "windows": self.windows,
            "high_watermark": self.high_watermark,
            "busy_seconds": round(self.busy_seconds, 6),
            "makespan_seconds": round(self.makespan_seconds, 6),
            "speedup": round(self.speedup, 3),
            "parse_tasks": self.parse_tasks,
        }


class FetchPool:
    """K virtual connections over a virtual-time event scheduler.

    Args:
        clock: the crawl's clock (normally the transport's
            :class:`~repro.net.clock.VirtualClock`; a clock without
            flight capture — e.g. ``SystemClock`` — is scheduled from
            ``now()`` deltas and no makespan credit is issued, since the
            real seconds were genuinely spent).
        connections: number of simulated concurrent connections (>= 1).
        parse_workers: thread-pool size for the pure parse callbacks of
            :meth:`run`; 0 parses inline.  Parsing is pure and results
            merge in submission order, so any worker count is
            bit-identical.
    """

    def __init__(
        self,
        clock: Clock,
        connections: int = 1,
        parse_workers: int = 0,
    ) -> None:
        if connections < 1:
            raise ValueError("connections must be >= 1")
        if parse_workers < 0:
            raise ValueError("parse_workers must be >= 0")
        self._clock = clock
        self.connections = int(connections)
        self._parse_workers = int(parse_workers)
        self._executor: ThreadPoolExecutor | None = None
        # Lane heap entries: (free_at, seq_of_freeing_job, lane_id).  The
        # submission sequence number breaks free-time ties so lane
        # assignment — and therefore the makespan — is fully determined
        # by the job sequence, never by heap internals.
        self._lanes: list[tuple[float, int, int]] = [
            (0.0, -lane, lane) for lane in range(self.connections)
        ]
        heapq.heapify(self._lanes)
        self._seq = 0
        self._makespan = 0.0
        self.stats = FetchPoolStats(connections=self.connections)

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Shut down the parse worker pool (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __del__(self) -> None:  # pragma: no cover - interpreter-shutdown path
        try:
            self.close()
        except Exception:
            pass

    def _pool(self) -> ThreadPoolExecutor | None:
        if self._parse_workers <= 0:
            return None
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=self._parse_workers,
                thread_name_prefix="fetchpool-parse",
            )
        return self._executor

    # ------------------------------------------------------------------
    # Virtual-time lane scheduling.
    # ------------------------------------------------------------------

    def _schedule(self, duration: float) -> float:
        """Place one flight on the earliest-free lane.

        Returns the makespan increment the flight caused (0 when it fit
        entirely inside the existing schedule's shadow).
        """
        seq = self._seq
        self._seq += 1
        free_at, _, lane = heapq.heappop(self._lanes)
        busy = sum(1 for entry in self._lanes if entry[0] > free_at)
        # FetchPoolStats is written from the coordinator thread only:
        # parse workers run the pure parse callback and never touch it.
        # repro: allow CONC001 coordinator-thread-only writes
        self.stats.high_watermark = max(self.stats.high_watermark, busy + 1)
        end = free_at + duration
        heapq.heappush(self._lanes, (end, seq, lane))
        previous = self._makespan
        self._makespan = max(self._makespan, end)
        self.stats.jobs += 1        # repro: allow CONC001 coordinator-only
        self.stats.busy_seconds += duration   # repro: allow CONC001 coordinator-only
        self.stats.makespan_seconds = self._makespan   # repro: allow CONC001 coordinator-only
        return self._makespan - previous

    @contextmanager
    def flight(self) -> Iterator[None]:
        """Account one fetch (plus its retries and waits) as a flight.

        Slept seconds inside the block are captured off the clock's
        ``total_slept`` and re-accounted as the makespan increment of the
        flight's lane assignment.  Exceptions (including
        ``CrawlKilled``) still schedule the partial duration — the time
        was spent — and propagate.
        """
        begin = getattr(self._clock, "begin_flight", None)
        if begin is None:
            start = self._clock.now()
            try:
                yield
            finally:
                self._schedule(self._clock.now() - start)
            return
        begin()
        try:
            yield
        finally:
            captured = self._clock.end_flight()
            delta = self._schedule(captured)
            self._clock.charge_concurrent(delta)

    # ------------------------------------------------------------------
    # The windowed fetch/parse/merge engine.
    # ------------------------------------------------------------------

    def run(
        self,
        plan: Callable[[int], Sequence[J]],
        fetch: Callable[[J], object],
        process: Callable[[J, object], None],
        parse: Callable[[J, object], object] | None = None,
        checkpointer: SupportsTick | None = None,
    ) -> int:
        """Drive a crawl stage through repeated windows of K jobs.

        Args:
            plan: called with the window capacity; returns the next jobs
                (at most that many; empty ends the stage).  It runs with
                all previous windows fully merged and MUST NOT mutate
                crawler state — selection has to match what a sequential
                crawl would fetch next.
            fetch: issues one job's HTTP traffic (retries included);
                runs serially in submission order inside a flight.
            parse: optional *pure* transform of the fetched value; runs
                on the parse worker pool when one is configured.
            process: merges one job's (parsed) result into crawler
                state; runs in submission order, after which the
                checkpointer (when given) ticks — the same cadence as a
                sequential crawl.

        Returns the number of jobs processed.
        """
        done = 0
        while True:
            jobs = list(plan(self.connections))
            if not jobs:
                return done
            if len(jobs) > self.connections:
                raise ValueError(
                    f"plan returned {len(jobs)} jobs for a "
                    f"{self.connections}-connection window"
                )
            self.stats.windows += 1   # repro: allow CONC001 coordinator-only
            fetched: list[tuple[J, object]] = []
            failure: BaseException | None = None
            for job in jobs:
                try:
                    with self.flight():
                        fetched.append((job, fetch(job)))
                except Exception as exc:
                    # Merge the completed prefix before propagating, so
                    # the last checkpoint matches a sequential crawl
                    # dying at the same request boundary.
                    failure = exc
                    break
            executor = self._pool() if parse is not None else None
            if parse is None:
                parsed = [raw for _, raw in fetched]
            elif executor is None:
                parsed = [parse(job, raw) for job, raw in fetched]
            else:
                futures = [
                    executor.submit(parse, job, raw) for job, raw in fetched
                ]
                # repro: allow CONC001 coordinator-thread-only write
                self.stats.parse_tasks += len(futures)
                parsed = [future.result() for future in futures]
            for (job, _), value in zip(fetched, parsed):
                process(job, value)
                done += 1
                if checkpointer is not None:
                    checkpointer.tick()
            if failure is not None:
                raise failure
