"""Virtual and system clocks.

The crawl of a 1.3M-account API at one request per second took the paper's
authors weeks of wall time; our reproduction runs the same control flow
against a virtual clock, so rate-limit waits and timeout arithmetic are
exact but instantaneous.  Every component that needs time takes a clock
object — no module reads ``time.time()`` directly.
"""

from __future__ import annotations

import time
from typing import Protocol

__all__ = ["Clock", "SystemClock", "VirtualClock"]


class Clock(Protocol):
    """Minimal clock interface: monotonically non-decreasing seconds."""

    def now(self) -> float:
        """Current time in seconds."""
        ...

    def sleep(self, seconds: float) -> None:
        """Advance time by ``seconds``."""
        ...


class VirtualClock:
    """Deterministic simulated clock.

    ``sleep`` advances instantly; ``now`` starts at ``epoch`` (default: the
    Unix timestamp of Dissenter's launch month, Feb 2019, which keeps
    simulated crawl timestamps in the paper's study window).

    Two timelines live here once a :class:`~repro.net.pool.FetchPool` is
    in play.  ``now`` is the *canonical serial timeline*: every sleep
    advances it, in execution order, no matter how many simulated
    connections are configured — this is what keeps server-side
    rate-limit windows, retry schedules and fault injection bit-identical
    at any ``--connections`` value.  ``total_slept`` is the *crawl
    duration metric*: inside a pool flight, slept seconds are captured
    and re-accounted as the makespan over K virtual connections, so a
    concurrent crawl reports ~K× less ``total_slept`` than a serial one
    while observing the exact same ``now`` sequence.
    """

    DISSENTER_LAUNCH = 1_550_000_000.0  # 2019-02-12T19:33:20Z

    def __init__(self, epoch: float = DISSENTER_LAUNCH) -> None:
        self._now = float(epoch)
        self.total_slept = 0.0
        self._flight: float | None = None

    def now(self) -> float:
        return self._now

    def sleep(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("cannot sleep a negative duration")
        self._now += seconds
        if self._flight is not None:
            self._flight += seconds
        else:
            self.total_slept += seconds

    def advance(self, seconds: float) -> None:
        """Alias for :meth:`sleep` that reads better in server-side code."""
        self.sleep(seconds)

    # ------------------------------------------------------------------
    # Flight capture (the FetchPool's virtual-connection accounting).
    # ------------------------------------------------------------------

    def begin_flight(self) -> None:
        """Start routing slept seconds into the current flight's bucket.

        While a flight is open, ``now`` still advances serially but
        ``total_slept`` does not — the pool converts the captured
        duration into a makespan increment via :meth:`charge_concurrent`.
        Flights cannot nest: one clock models one crawling process.
        """
        if self._flight is not None:
            raise RuntimeError("a flight is already being captured")
        self._flight = 0.0

    def end_flight(self) -> float:
        """Close the open flight; return the seconds it captured."""
        if self._flight is None:
            raise RuntimeError("no flight is being captured")
        captured = self._flight
        self._flight = None
        return captured

    def charge_concurrent(self, seconds: float) -> None:
        """Accrue a makespan increment to ``total_slept``."""
        if seconds < 0:
            raise ValueError("cannot charge a negative duration")
        self.total_slept += seconds


class SystemClock:
    """Real wall-clock (used only when running against live-like latencies)."""

    def now(self) -> float:
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("cannot sleep a negative duration")
        time.sleep(seconds)
