"""Virtual and system clocks.

The crawl of a 1.3M-account API at one request per second took the paper's
authors weeks of wall time; our reproduction runs the same control flow
against a virtual clock, so rate-limit waits and timeout arithmetic are
exact but instantaneous.  Every component that needs time takes a clock
object — no module reads ``time.time()`` directly.
"""

from __future__ import annotations

import time
from typing import Protocol

__all__ = ["Clock", "SystemClock", "VirtualClock"]


class Clock(Protocol):
    """Minimal clock interface: monotonically non-decreasing seconds."""

    def now(self) -> float:
        """Current time in seconds."""
        ...

    def sleep(self, seconds: float) -> None:
        """Advance time by ``seconds``."""
        ...


class VirtualClock:
    """Deterministic simulated clock.

    ``sleep`` advances instantly; ``now`` starts at ``epoch`` (default: the
    Unix timestamp of Dissenter's launch month, Feb 2019, which keeps
    simulated crawl timestamps in the paper's study window).
    """

    DISSENTER_LAUNCH = 1_550_000_000.0  # 2019-02-12T19:33:20Z

    def __init__(self, epoch: float = DISSENTER_LAUNCH):
        self._now = float(epoch)
        self.total_slept = 0.0

    def now(self) -> float:
        return self._now

    def sleep(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("cannot sleep a negative duration")
        self._now += seconds
        self.total_slept += seconds

    def advance(self, seconds: float) -> None:
        """Alias for :meth:`sleep` that reads better in server-side code."""
        self.sleep(seconds)


class SystemClock:
    """Real wall-clock (used only when running against live-like latencies)."""

    def now(self) -> float:
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("cannot sleep a negative duration")
        time.sleep(seconds)
