"""HTTP client with retries, redirects, cookies, and instrumentation.

The crawler-facing API.  Semantics follow the paper's crawl hygiene:
timeouts are retried with backoff ("we monitor request timeouts and
re-request missed pages"), 5xx responses are retried, redirects are
followed up to a limit, and a cookie jar carries authenticated sessions for
the NSFW/offensive shadow crawl.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.net.clock import Clock
from repro.net.cookies import CookieJar
from repro.net.errors import NetworkError, TimeoutError, TooManyRedirects
from repro.net.http import Request, Response, url_with_params
from repro.net.transport import Transport

__all__ = ["ClientStats", "HttpClient"]

_RETRYABLE_STATUSES = frozenset({429, 500, 502, 503})


def _parse_delay_seconds(value: str) -> float | None:
    """A server-advertised delay as finite, non-negative seconds.

    ``float()`` alone is not a safe parse here: it *raises* on the
    HTTP-date form of ``Retry-After``, and it *accepts* ``"inf"`` and
    ``"nan"`` — an infinite sleep would wedge the virtual clock forever.
    Anything unusable degrades to ``None`` so the caller falls back to
    its exponential backoff.
    """
    try:
        parsed = float(value)
    except ValueError:
        return None
    if not math.isfinite(parsed) or parsed < 0:
        return None
    return parsed


@dataclass
class ClientStats:
    """Counters a crawl report can cite.

    Mutations go through the ``record_*``/``bump`` methods, which hold a
    lock: once a :class:`~repro.net.pool.FetchPool` offloads parse work
    to threads, the read-modify-write increments here would otherwise
    lose updates.
    """

    requests: int = 0
    retries: int = 0
    timeouts: int = 0
    redirects_followed: int = 0
    bytes_received: int = 0
    status_counts: dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Not a dataclass field: locks aren't comparable or serialisable.
        self._lock = threading.Lock()

    def bump(self, counter: str, amount: int = 1) -> None:
        """Atomically increment one of the integer counters by name."""
        with self._lock:
            setattr(self, counter, getattr(self, counter) + amount)

    def record_response(self, response: Response) -> None:
        with self._lock:
            self.bytes_received += response.size
            self.status_counts[response.status] = (
                self.status_counts.get(response.status, 0) + 1
            )

    def merge(self, other: "ClientStats") -> None:
        """Fold another stats object into this one (sharded-crawl merge).

        Commutative and associative: counters sum, and ``status_counts``
        is rebuilt with numerically sorted keys — insertion order would
        otherwise depend on which worker's stats merged first, and a
        serialized envelope would differ byte-for-byte between runs that
        saw identical traffic.
        """
        with self._lock:
            self.requests += other.requests
            self.retries += other.retries
            self.timeouts += other.timeouts
            self.redirects_followed += other.redirects_followed
            self.bytes_received += other.bytes_received
            combined = dict(self.status_counts)
            for status, count in other.status_counts.items():
                combined[status] = combined.get(status, 0) + count
            self.status_counts = {
                status: combined[status] for status in sorted(combined)
            }

    def to_dict(self) -> dict:
        """JSON-ready snapshot (worker → parent transfer)."""
        with self._lock:
            return {
                "requests": self.requests,
                "retries": self.retries,
                "timeouts": self.timeouts,
                "redirects_followed": self.redirects_followed,
                "bytes_received": self.bytes_received,
                "status_counts": {
                    str(status): self.status_counts[status]
                    for status in sorted(self.status_counts)
                },
            }

    @classmethod
    def from_dict(cls, payload: dict) -> "ClientStats":
        try:
            return cls(
                requests=int(payload.get("requests", 0)),
                retries=int(payload.get("retries", 0)),
                timeouts=int(payload.get("timeouts", 0)),
                redirects_followed=int(payload.get("redirects_followed", 0)),
                bytes_received=int(payload.get("bytes_received", 0)),
                status_counts={
                    int(status): int(count)
                    for status, count in (
                        payload.get("status_counts") or {}
                    ).items()
                },
            )
        except (TypeError, ValueError) as exc:
            raise ValueError(f"malformed client stats: {exc!r}") from exc


class HttpClient:
    """A synchronous HTTP client over a :class:`Transport`.

    Args:
        transport: the wire (normally a LoopbackTransport).
        user_agent: default User-Agent header.  Note the paper's
            observation that the Dissenter browser reports Brave's UA
            string — the default here mirrors that indistinguishability.
        max_retries: attempts after the first failure (timeouts and
            retryable statuses).
        backoff: base seconds for exponential backoff (doubles per retry).
        max_redirects: redirect-chain limit.
        timeout: per-request deadline in simulated seconds.
    """

    def __init__(
        self,
        transport: Transport,
        user_agent: str = (
            "Mozilla/5.0 (X11; Linux x86_64) AppleWebKit/537.36 "
            "(KHTML, like Gecko) Chrome/80.0.3987.87 Safari/537.36 Brave/80"
        ),
        max_retries: int = 3,
        backoff: float = 0.5,
        max_redirects: int = 5,
        timeout: float = 30.0,
    ) -> None:
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        self._transport = transport
        self._user_agent = user_agent
        self._max_retries = max_retries
        self._backoff = backoff
        self._max_redirects = max_redirects
        self._timeout = timeout
        self.cookies = CookieJar()
        self.stats = ClientStats()

    @property
    def clock(self) -> Clock:
        """The transport's clock (for callers that pace themselves)."""
        return self._transport.clock  # type: ignore[attr-defined]

    def _build_request(
        self,
        method: str,
        url: str,
        params: Mapping[str, object] | None,
        headers: Mapping[str, str] | None,
        body: bytes,
    ) -> Request:
        request = Request(method=method, url=url_with_params(url, params))
        request.headers.set("User-Agent", self._user_agent)
        request.headers.set("Accept", "*/*")
        if headers:
            for name, value in headers.items():
                request.headers.set(name, value)
        cookie_header = self.cookies.cookie_header_for(request.url)
        if cookie_header:
            request.headers.set("Cookie", cookie_header)
        request.body = body
        return request

    def _send_once(self, request: Request) -> Response:
        self.stats.bump("requests")
        response = self._transport.send(request, timeout=self._timeout)
        self.stats.record_response(response)
        self.cookies.ingest_response(
            response.url or request.url, response.headers.get_all("Set-Cookie")
        )
        return response

    def _retry_delay(self, response: Response | None, attempt: int) -> float:
        """Server-advertised wait beats exponential backoff.

        429 responses may carry ``Retry-After`` (seconds) or
        ``X-RateLimit-Reset`` (absolute timestamp); honouring them is what
        lets a crawl ride out a rate-limit window instead of burning its
        retry budget (§3.4's etiquette).
        """
        backoff = self._backoff * (2 ** (attempt - 1))
        if response is None:
            return backoff
        retry_after = response.headers.get("Retry-After")
        if retry_after is not None:
            delay = _parse_delay_seconds(retry_after)
            if delay is not None:
                return max(backoff, delay)
        reset_at = response.headers.get("X-RateLimit-Reset")
        if reset_at is not None:
            timestamp = _parse_delay_seconds(reset_at)
            if timestamp is not None:
                return max(backoff, timestamp - self.clock.now())
        return backoff

    def _send_with_retries(self, request: Request) -> Response:
        attempt = 0
        while True:
            response: Response | None = None
            try:
                response = self._send_once(request)
            except TimeoutError:
                self.stats.bump("timeouts")
                if attempt >= self._max_retries:
                    raise
            else:
                if response.status not in _RETRYABLE_STATUSES:
                    return response
                if attempt >= self._max_retries:
                    return response
            attempt += 1
            self.stats.bump("retries")
            self.clock.sleep(max(0.0, self._retry_delay(response, attempt)))

    def request(
        self,
        method: str,
        url: str,
        params: Mapping[str, object] | None = None,
        headers: Mapping[str, str] | None = None,
        body: bytes = b"",
        follow_redirects: bool = True,
    ) -> Response:
        """Issue a request, retrying and following redirects as configured.

        Raises:
            TimeoutError: all retry attempts timed out.
            TooManyRedirects: redirect chain exceeded the limit.
            ConnectError: host not routable.
        """
        request = self._build_request(method, url, params, headers, body)
        response = self._send_with_retries(request)
        redirects = 0
        while follow_redirects and response.is_redirect():
            redirects += 1
            if redirects > self._max_redirects:
                raise TooManyRedirects(url, self._max_redirects)
            self.stats.bump("redirects_followed")
            target = response.redirect_target()
            # A redirect-followed request is a *fresh* GET: replaying the
            # caller's original headers would leak request-specific fields
            # (a POST's Content-Type, conditional headers) onto it.
            request = self._build_request("GET", target, None, None, b"")
            response = self._send_with_retries(request)
        return response

    def get(
        self,
        url: str,
        params: Mapping[str, object] | None = None,
        headers: Mapping[str, str] | None = None,
        follow_redirects: bool = True,
    ) -> Response:
        """GET a URL."""
        return self.request(
            "GET", url, params=params, headers=headers,
            follow_redirects=follow_redirects,
        )

    def get_or_none(self, url: str, **kwargs: Any) -> Response | None:
        """GET a URL; swallow substrate errors and return None.

        Convenience used by bulk crawl loops that account for failures
        separately (the validation module tracks what was missed).
        """
        try:
            return self.get(url, **kwargs)
        except NetworkError:
            return None

    def post(
        self,
        url: str,
        body: bytes = b"",
        headers: Mapping[str, str] | None = None,
    ) -> Response:
        """POST a body to a URL."""
        return self.request("POST", url, headers=headers, body=body)
