"""Discrete power-law fitting.

Section 4.5 of the paper observes that both the in-degree (followers) and
out-degree (following) distributions of the Dissenter social graph fit a
power law.  This module implements the standard Clauset-Shalizi-Newman
procedure for discrete data: maximum-likelihood estimation of the exponent
``alpha`` for a given ``xmin``, selection of ``xmin`` by minimising the
Kolmogorov-Smirnov distance between data and fit, and a goodness-of-fit KS
statistic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy.optimize import minimize_scalar
from scipy.special import zeta

__all__ = ["PowerLawFit", "fit_discrete_powerlaw"]

_MAX_XMIN_CANDIDATES = 50


@dataclass(frozen=True)
class PowerLawFit:
    """Result of a discrete power-law fit.

    Attributes:
        alpha: estimated exponent (P(X = x) proportional to x**-alpha).
        xmin: lower cut-off the law applies above.
        ks_distance: KS distance between empirical and fitted CDFs on the
            tail x >= xmin.
        n_tail: number of observations in the fitted tail.
    """

    alpha: float
    xmin: int
    ks_distance: float
    n_tail: int

    def pmf(self, x: np.ndarray) -> np.ndarray:
        """Fitted probability mass function on x >= xmin."""
        x = np.asarray(x, dtype=float)
        norm = zeta(self.alpha, self.xmin)
        return x ** (-self.alpha) / norm

    def cdf(self, x: int) -> float:
        """Fitted CDF P(X <= x | X >= xmin)."""
        if x < self.xmin:
            return 0.0
        norm = zeta(self.alpha, self.xmin)
        support = np.arange(self.xmin, x + 1, dtype=float)
        return float((support ** (-self.alpha)).sum() / norm)


def _mle_alpha(tail: np.ndarray, xmin: int) -> float:
    """Exact discrete MLE for alpha.

    Minimises the negative log-likelihood
    ``alpha * sum(log x) + n * log(zeta(alpha, xmin))`` numerically.  The
    popular closed-form approximation (Clauset et al., eq. 3.7) is badly
    biased for small ``xmin`` (the common case for degree data), so the
    exact objective is used instead.
    """
    log_sum = float(np.log(tail).sum())
    n = tail.size

    def negative_log_likelihood(alpha: float) -> float:
        return alpha * log_sum + n * float(np.log(zeta(alpha, xmin)))

    result = minimize_scalar(
        negative_log_likelihood, bounds=(1.01, 6.0), method="bounded"
    )
    return float(result.x)


def _ks_distance(tail: np.ndarray, alpha: float, xmin: int) -> float:
    """KS distance between the empirical tail CDF and the fitted CDF."""
    values, counts = np.unique(tail, return_counts=True)
    empirical = np.cumsum(counts) / tail.size
    norm = zeta(alpha, xmin)
    # Fitted CDF evaluated at each distinct observed value.
    hi = int(values[-1])
    pmf_support = np.arange(xmin, hi + 1, dtype=float) ** (-alpha) / norm
    cdf_all = np.cumsum(pmf_support)
    fitted = cdf_all[(values - xmin).astype(int)]
    return float(np.abs(empirical - fitted).max())


def fit_discrete_powerlaw(
    degrees: Sequence[int],
    xmin: int | None = None,
) -> PowerLawFit:
    """Fit a discrete power law to positive integer data.

    Args:
        degrees: sample of positive integers (zeros are dropped — a degree-0
            node carries no information about the tail).
        xmin: fix the lower cut-off; when ``None`` it is chosen by scanning
            candidate values and minimising the KS distance.

    Returns:
        The best :class:`PowerLawFit`.

    Raises:
        ValueError: if fewer than 10 positive observations are available.
    """
    data = np.asarray([d for d in degrees if d > 0], dtype=float)
    if data.size < 10:
        raise ValueError(
            f"power-law fit needs >= 10 positive observations, got {data.size}"
        )

    if xmin is not None:
        candidates = [int(xmin)]
    else:
        distinct = np.unique(data).astype(int)
        # Never place xmin so deep in the tail that fewer than 10 points remain.
        viable = [x for x in distinct if (data >= x).sum() >= 10]
        candidates = viable[:_MAX_XMIN_CANDIDATES] or [int(distinct[0])]

    best: PowerLawFit | None = None
    for cand in candidates:
        tail = data[data >= cand]
        if tail.size < 2:
            continue
        alpha = _mle_alpha(tail, cand)
        if not np.isfinite(alpha) or alpha <= 1.0:
            continue
        ks = _ks_distance(tail, alpha, cand)
        fit = PowerLawFit(alpha=float(alpha), xmin=cand, ks_distance=ks, n_tail=int(tail.size))
        if best is None or fit.ks_distance < best.ks_distance:
            best = fit
    if best is None:
        raise ValueError("no viable power-law fit found for the given data")
    return best
