"""Statistical utilities used throughout the reproduction.

This package provides the distribution machinery the paper's analyses rest
on: empirical CDFs, concentration measures (Lorenz curves, Gini, top-k
shares), discrete power-law fitting for the social-graph degree analysis,
two-sample Kolmogorov-Smirnov tests for the Allsides bias comparisons, and
seeded sampling helpers.
"""

from repro.stats.distributions import (
    ECDF,
    gini_coefficient,
    lorenz_curve,
    quantile,
    summarize,
    top_share,
)
from repro.stats.hypothesis_tests import (
    KSResult,
    ks_two_sample,
    pairwise_ks,
    rank_correlation,
)
from repro.stats.powerlaw import PowerLawFit, fit_discrete_powerlaw
from repro.stats.sampling import (
    bootstrap_ci,
    reservoir_sample,
    stratified_indices,
)

__all__ = [
    "ECDF",
    "KSResult",
    "PowerLawFit",
    "bootstrap_ci",
    "fit_discrete_powerlaw",
    "gini_coefficient",
    "ks_two_sample",
    "lorenz_curve",
    "pairwise_ks",
    "quantile",
    "rank_correlation",
    "reservoir_sample",
    "stratified_indices",
    "summarize",
    "top_share",
]
