"""Empirical distribution helpers.

The paper reports most of its findings as empirical CDFs (Figures 3, 4, 6,
7, 8b) and concentration statements ("90% of comments are made by about 14%
of active users").  This module implements the primitives behind those
artefacts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "ECDF",
    "gini_coefficient",
    "lorenz_curve",
    "quantile",
    "summarize",
    "top_share",
]


class ECDF:
    """Empirical cumulative distribution function of a 1-D sample.

    Evaluation follows the right-continuous convention:
    ``F(x) = (# samples <= x) / n``.
    """

    def __init__(self, samples: Iterable[float]):
        data = np.asarray(list(samples), dtype=float)
        if data.size == 0:
            raise ValueError("ECDF requires at least one sample")
        if np.isnan(data).any():
            raise ValueError("ECDF samples must not contain NaN")
        self._sorted = np.sort(data)
        self._n = data.size
        # Rank grid (i+1)/n shared by steps() and the searchsorted-based
        # quantile(): the smallest rank >= q locates the q-quantile.
        self._ranks = np.arange(1, self._n + 1) / self._n

    @property
    def n(self) -> int:
        """Number of samples the ECDF was built from."""
        return self._n

    @property
    def support(self) -> tuple[float, float]:
        """(min, max) of the underlying sample."""
        return float(self._sorted[0]), float(self._sorted[-1])

    def __call__(self, x: float | np.ndarray) -> float | np.ndarray:
        """Evaluate F(x); accepts scalars or arrays."""
        idx = np.searchsorted(self._sorted, np.asarray(x, dtype=float), side="right")
        result = idx / self._n
        if np.isscalar(x) or np.asarray(x).ndim == 0:
            return float(result)
        return result

    def quantile(
        self, q: float | np.ndarray
    ) -> float | np.ndarray:
        """Inverse CDF: smallest x with F(x) >= q; accepts scalars or arrays.

        Vectorized as a single ``np.searchsorted`` against the cached rank
        grid — the smallest index i with (i+1)/n >= q is exactly the
        ``ceil(q*n) - 1`` the scalar formula used, with q == 0 collapsing
        to the sample minimum.
        """
        q_arr = np.asarray(q, dtype=float)
        if ((q_arr < 0.0) | (q_arr > 1.0) | np.isnan(q_arr)).any():
            raise ValueError(f"quantile level must be in [0, 1], got {q}")
        idx = np.searchsorted(self._ranks, q_arr, side="left")
        result = self._sorted[np.minimum(idx, self._n - 1)]
        if np.isscalar(q) or np.asarray(q).ndim == 0:
            return float(result)
        return result

    def survival(self, x: float | np.ndarray) -> float | np.ndarray:
        """Complementary CDF: P(X > x); accepts scalars or arrays."""
        return 1.0 - self(x)

    def steps(self) -> tuple[np.ndarray, np.ndarray]:
        """Return (x, F(x)) arrays suitable for plotting a step function."""
        return self._sorted.copy(), self._ranks.copy()

    def evaluate_grid(self, points: int = 101) -> tuple[np.ndarray, np.ndarray]:
        """Evaluate the ECDF on an evenly spaced grid over its support."""
        lo, hi = self.support
        grid = np.linspace(lo, hi, points)
        return grid, np.asarray(self(grid))


def quantile(samples: Sequence[float], q: float) -> float:
    """Convenience wrapper: the q-quantile of a raw sample."""
    return ECDF(samples).quantile(q)


def lorenz_curve(values: Sequence[float]) -> tuple[np.ndarray, np.ndarray]:
    """Lorenz curve of a non-negative sample.

    Returns ``(population_fraction, mass_fraction)`` arrays, both beginning
    at 0 and ending at 1, with the sample sorted ascending.  Figure 3 of the
    paper is this curve with axes swapped (users sorted by activity).
    """
    data = np.sort(np.asarray(list(values), dtype=float))
    if data.size == 0:
        raise ValueError("lorenz_curve requires at least one value")
    if (data < 0).any():
        raise ValueError("lorenz_curve requires non-negative values")
    total = data.sum()
    if total == 0:
        # Degenerate all-zero sample: equality line.
        frac = np.linspace(0.0, 1.0, data.size + 1)
        return frac, frac.copy()
    cum = np.concatenate([[0.0], np.cumsum(data)]) / total
    pop = np.arange(data.size + 1) / data.size
    return pop, cum


def gini_coefficient(values: Sequence[float]) -> float:
    """Gini coefficient computed from the Lorenz curve (trapezoid rule)."""
    pop, cum = lorenz_curve(values)
    area_under_lorenz = float(np.trapezoid(cum, pop))
    return 1.0 - 2.0 * area_under_lorenz


def top_share(values: Sequence[float], population_fraction: float) -> float:
    """Fraction of total mass held by the top ``population_fraction``.

    ``top_share(counts, 0.14)`` answers "what fraction of all comments do the
    top 14% most active users contribute?" — the statistic behind Figure 3's
    takeaway.
    """
    if not 0.0 < population_fraction <= 1.0:
        raise ValueError("population_fraction must be in (0, 1]")
    data = np.sort(np.asarray(list(values), dtype=float))[::-1]
    total = data.sum()
    if total == 0:
        return 0.0
    k = max(1, int(round(population_fraction * data.size)))
    return float(data[:k].sum() / total)


@dataclass(frozen=True)
class SampleSummary:
    """Five-number-plus summary of a sample."""

    n: int
    mean: float
    std: float
    minimum: float
    p25: float
    median: float
    p75: float
    maximum: float

    def as_dict(self) -> dict[str, float]:
        return {
            "n": self.n,
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "p25": self.p25,
            "median": self.median,
            "p75": self.p75,
            "max": self.maximum,
        }


def summarize(samples: Sequence[float]) -> SampleSummary:
    """Compute a :class:`SampleSummary` for a non-empty sample."""
    data = np.asarray(list(samples), dtype=float)
    if data.size == 0:
        raise ValueError("summarize requires at least one sample")
    return SampleSummary(
        n=int(data.size),
        mean=float(data.mean()),
        std=float(data.std(ddof=0)),
        minimum=float(data.min()),
        p25=float(np.percentile(data, 25)),
        median=float(np.median(data)),
        p75=float(np.percentile(data, 75)),
        maximum=float(data.max()),
    )
