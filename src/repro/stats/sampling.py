"""Seeded sampling utilities.

The paper's validation methodology samples 100 NSFW/offensive comments for
manual verification (§3.2); our synthetic world-building and bootstrap
confidence intervals also need reproducible randomness.  Everything here
takes an explicit ``numpy.random.Generator`` or integer seed — no module
hides global RNG state.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence, TypeVar

import numpy as np

__all__ = ["bootstrap_ci", "reservoir_sample", "stratified_indices"]

T = TypeVar("T")


def _as_rng(seed: int | np.random.Generator) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def reservoir_sample(
    items: Iterable[T],
    k: int,
    seed: int | np.random.Generator = 0,
) -> list[T]:
    """Uniformly sample k items from a stream of unknown length.

    Classic Algorithm R.  Used by the crawler's validation pass to pick the
    manual-verification sample without materialising the full comment stream.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    rng = _as_rng(seed)
    reservoir: list[T] = []
    for index, item in enumerate(items):
        if index < k:
            reservoir.append(item)
        else:
            j = int(rng.integers(0, index + 1))
            if j < k:
                reservoir[j] = item
    return reservoir


def stratified_indices(
    labels: Sequence[T],
    n_folds: int,
    seed: int | np.random.Generator = 0,
) -> list[np.ndarray]:
    """Stratified k-fold index split.

    Each fold preserves the label proportions of the full sample as closely
    as integer arithmetic allows.  Backs the 5-fold cross-validation used to
    evaluate the paper's SVM classifier (§3.5.3).
    """
    if n_folds < 2:
        raise ValueError("n_folds must be >= 2")
    labels_arr = np.asarray(labels)
    if labels_arr.size < n_folds:
        raise ValueError("fewer samples than folds")
    rng = _as_rng(seed)
    folds: list[list[int]] = [[] for _ in range(n_folds)]
    for value in np.unique(labels_arr):
        idx = np.flatnonzero(labels_arr == value)
        rng.shuffle(idx)
        for position, sample_index in enumerate(idx):
            folds[position % n_folds].append(int(sample_index))
    return [np.sort(np.asarray(fold, dtype=int)) for fold in folds]


def bootstrap_ci(
    samples: Sequence[float],
    statistic: Callable[[np.ndarray], float],
    n_resamples: int = 1000,
    confidence: float = 0.95,
    seed: int | np.random.Generator = 0,
) -> tuple[float, float]:
    """Percentile bootstrap confidence interval for an arbitrary statistic."""
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    data = np.asarray(list(samples), dtype=float)
    if data.size == 0:
        raise ValueError("bootstrap_ci requires a non-empty sample")
    rng = _as_rng(seed)
    estimates = np.empty(n_resamples)
    for i in range(n_resamples):
        resample = data[rng.integers(0, data.size, size=data.size)]
        estimates[i] = statistic(resample)
    alpha = (1.0 - confidence) / 2.0
    lo, hi = np.percentile(estimates, [100 * alpha, 100 * (1 - alpha)])
    return float(lo), float(hi)
