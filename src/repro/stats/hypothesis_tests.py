"""Two-sample hypothesis tests.

Section 4.4.4 of the paper confirms that toxicity-score distributions differ
across Allsides bias categories using pairwise two-sample Kolmogorov-Smirnov
tests with p < 0.01.  We implement the KS statistic directly (exact D over
the pooled sample) and use the asymptotic Kolmogorov distribution for the
p-value, cross-checked against SciPy in the test suite.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

__all__ = ["KSResult", "ks_two_sample", "pairwise_ks", "rank_correlation"]


def rank_correlation(a: Sequence[float], b: Sequence[float]) -> float:
    """Spearman rank correlation (Pearson correlation of ranks).

    Used for Fig. 2's time-vs-ID monotonicity and the classifier-agreement
    ablation.  Ties are broken by position (adequate for the mostly
    continuous inputs here).
    """
    x = np.asarray(list(a), dtype=float)
    y = np.asarray(list(b), dtype=float)
    if x.size != y.size:
        raise ValueError("samples must have equal length")
    if x.size < 2:
        raise ValueError("rank correlation needs at least 2 observations")
    rank_x = np.argsort(np.argsort(x))
    rank_y = np.argsort(np.argsort(y))
    return float(np.corrcoef(rank_x, rank_y)[0, 1])


@dataclass(frozen=True)
class KSResult:
    """Result of a two-sample KS test."""

    statistic: float
    pvalue: float
    n1: int
    n2: int

    def significant(self, alpha: float = 0.01) -> bool:
        """Whether the null (same distribution) is rejected at level alpha."""
        return self.pvalue < alpha


def _kolmogorov_sf(t: float) -> float:
    """Survival function of the Kolmogorov distribution.

    Q(t) = 2 * sum_{k>=1} (-1)^{k-1} exp(-2 k^2 t^2), clipped to [0, 1].
    """
    if t <= 0:
        return 1.0
    total = 0.0
    for k in range(1, 101):
        term = (-1.0) ** (k - 1) * math.exp(-2.0 * k * k * t * t)
        total += term
        if abs(term) < 1e-12:
            break
    return min(1.0, max(0.0, 2.0 * total))


def ks_two_sample(sample1: Sequence[float], sample2: Sequence[float]) -> KSResult:
    """Exact two-sample KS statistic with asymptotic p-value.

    Args:
        sample1: first sample (non-empty).
        sample2: second sample (non-empty).

    Returns:
        :class:`KSResult` with D, the asymptotic p-value, and sample sizes.
    """
    a = np.sort(np.asarray(list(sample1), dtype=float))
    b = np.sort(np.asarray(list(sample2), dtype=float))
    if a.size == 0 or b.size == 0:
        raise ValueError("both samples must be non-empty")

    pooled = np.concatenate([a, b])
    cdf_a = np.searchsorted(a, pooled, side="right") / a.size
    cdf_b = np.searchsorted(b, pooled, side="right") / b.size
    d = float(np.abs(cdf_a - cdf_b).max())

    n_eff = math.sqrt(a.size * b.size / (a.size + b.size))
    # Stephens' small-sample correction improves accuracy for modest n.
    t = (n_eff + 0.12 + 0.11 / n_eff) * d
    pvalue = _kolmogorov_sf(t)
    return KSResult(statistic=d, pvalue=pvalue, n1=int(a.size), n2=int(b.size))


def pairwise_ks(
    groups: Mapping[str, Sequence[float]],
    min_size: int = 2,
) -> dict[tuple[str, str], KSResult]:
    """All-pairs KS tests over named groups.

    Groups smaller than ``min_size`` are skipped.  Keys of the returned dict
    are (name1, name2) tuples in sorted-name order.
    """
    usable = {name: vals for name, vals in groups.items() if len(vals) >= min_size}
    results: dict[tuple[str, str], KSResult] = {}
    for name1, name2 in itertools.combinations(sorted(usable), 2):
        results[(name1, name2)] = ks_two_sample(usable[name1], usable[name2])
    return results
