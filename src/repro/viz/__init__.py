"""Figure rendering without plotting dependencies.

The evaluation's figures are line/scatter plots; this package regenerates
them as standalone SVG documents (:mod:`repro.viz.svg`,
:mod:`repro.viz.figures`) and as quick terminal ASCII charts
(:mod:`repro.viz.ascii`), using nothing beyond the standard library — the
reproduction environment has no matplotlib.
"""

from repro.viz.ascii import ascii_cdf, ascii_scatter
from repro.viz.figures import render_all_figures
from repro.viz.svg import SvgPlot

__all__ = ["SvgPlot", "ascii_cdf", "ascii_scatter", "render_all_figures"]
