"""A minimal SVG chart writer.

Supports exactly what the paper's figures need: scatter points, step/line
series, log-scaled axes, ticks, axis labels, and a legend.  Output is a
self-contained SVG document string.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

__all__ = ["SvgPlot"]

# A small colour-blind-safe palette.
PALETTE = (
    "#0072b2", "#d55e00", "#009e73", "#cc79a7",
    "#f0e442", "#56b4e9", "#e69f00", "#000000",
)


def _fmt(value: float) -> str:
    if value == int(value) and abs(value) < 1e7:
        return str(int(value))
    return f"{value:.3g}"


@dataclass
class _Series:
    label: str
    xs: list[float]
    ys: list[float]
    kind: str          # "line" | "scatter"
    color: str


@dataclass
class SvgPlot:
    """One chart.

    Usage::

        plot = SvgPlot(title="Figure 3", x_label="users", y_label="CDF")
        plot.line(xs, ys, label="comments")
        svg = plot.render()
    """

    title: str = ""
    x_label: str = ""
    y_label: str = ""
    width: int = 640
    height: int = 420
    x_log: bool = False
    y_log: bool = False
    _series: list[_Series] = field(default_factory=list)

    MARGIN_LEFT = 70
    MARGIN_RIGHT = 20
    MARGIN_TOP = 40
    MARGIN_BOTTOM = 55

    # ------------------------------------------------------------------

    def _next_color(self) -> str:
        return PALETTE[len(self._series) % len(PALETTE)]

    def line(
        self, xs: Sequence[float], ys: Sequence[float], label: str = "",
        color: str | None = None,
    ) -> "SvgPlot":
        """Add a line series."""
        self._add(xs, ys, label, "line", color)
        return self

    def scatter(
        self, xs: Sequence[float], ys: Sequence[float], label: str = "",
        color: str | None = None,
    ) -> "SvgPlot":
        """Add a scatter series."""
        self._add(xs, ys, label, "scatter", color)
        return self

    def _add(self, xs, ys, label, kind, color) -> None:
        xs, ys = list(map(float, xs)), list(map(float, ys))
        if len(xs) != len(ys):
            raise ValueError("xs and ys must have equal length")
        if not xs:
            raise ValueError("series must be non-empty")
        self._series.append(_Series(
            label=label, xs=xs, ys=ys, kind=kind,
            color=color or self._next_color(),
        ))

    # ------------------------------------------------------------------

    def _bounds(self) -> tuple[float, float, float, float]:
        xs = [x for s in self._series for x in s.xs]
        ys = [y for s in self._series for y in s.ys]
        if self.x_log:
            xs = [x for x in xs if x > 0] or [1.0]
        if self.y_log:
            ys = [y for y in ys if y > 0] or [1.0]
        lo_x, hi_x = min(xs), max(xs)
        lo_y, hi_y = min(ys), max(ys)
        if lo_x == hi_x:
            lo_x, hi_x = lo_x - 1, hi_x + 1
        if lo_y == hi_y:
            lo_y, hi_y = lo_y - 1, hi_y + 1
        return lo_x, hi_x, lo_y, hi_y

    def _transformers(self):
        lo_x, hi_x, lo_y, hi_y = self._bounds()
        if self.x_log:
            lo_x, hi_x = math.log10(lo_x), math.log10(hi_x)
        if self.y_log:
            lo_y, hi_y = math.log10(lo_y), math.log10(hi_y)
        plot_w = self.width - self.MARGIN_LEFT - self.MARGIN_RIGHT
        plot_h = self.height - self.MARGIN_TOP - self.MARGIN_BOTTOM

        def to_px(x: float, y: float) -> tuple[float, float] | None:
            if self.x_log:
                if x <= 0:
                    return None
                x = math.log10(x)
            if self.y_log:
                if y <= 0:
                    return None
                y = math.log10(y)
            fx = (x - lo_x) / (hi_x - lo_x)
            fy = (y - lo_y) / (hi_y - lo_y)
            return (
                self.MARGIN_LEFT + fx * plot_w,
                self.height - self.MARGIN_BOTTOM - fy * plot_h,
            )

        return to_px, (lo_x, hi_x, lo_y, hi_y)

    def _ticks(self, lo: float, hi: float, log: bool, n: int = 5) -> list[float]:
        if log:
            return [10 ** e for e in range(math.floor(lo), math.ceil(hi) + 1)]
        step = (hi - lo) / (n - 1)
        return [lo + i * step for i in range(n)]

    # ------------------------------------------------------------------

    def render(self) -> str:
        """Produce the SVG document."""
        if not self._series:
            raise ValueError("plot has no series")
        to_px, (lo_x, hi_x, lo_y, hi_y) = self._transformers()
        parts: list[str] = [
            f'<svg xmlns="http://www.w3.org/2000/svg" '
            f'width="{self.width}" height="{self.height}" '
            f'viewBox="0 0 {self.width} {self.height}" '
            f'font-family="sans-serif" font-size="12">',
            f'<rect width="{self.width}" height="{self.height}" fill="white"/>',
        ]
        # Frame.
        x0, y0 = self.MARGIN_LEFT, self.MARGIN_TOP
        x1 = self.width - self.MARGIN_RIGHT
        y1 = self.height - self.MARGIN_BOTTOM
        parts.append(
            f'<rect x="{x0}" y="{y0}" width="{x1 - x0}" height="{y1 - y0}" '
            f'fill="none" stroke="#888"/>'
        )
        # Ticks.
        for tick in self._ticks(lo_x, hi_x, self.x_log):
            raw = tick if not self.x_log else tick
            point = to_px(raw if not self.x_log else raw,
                          10 ** lo_y if self.y_log else lo_y)
            if point is None:
                continue
            px = point[0]
            parts.append(
                f'<line x1="{px:.1f}" y1="{y1}" x2="{px:.1f}" y2="{y1 + 5}" '
                f'stroke="#555"/>'
            )
            parts.append(
                f'<text x="{px:.1f}" y="{y1 + 18}" text-anchor="middle">'
                f"{_fmt(raw)}</text>"
            )
        for tick in self._ticks(lo_y, hi_y, self.y_log):
            point = to_px(10 ** lo_x if self.x_log else lo_x, tick)
            if point is None:
                continue
            py = point[1]
            parts.append(
                f'<line x1="{x0 - 5}" y1="{py:.1f}" x2="{x0}" y2="{py:.1f}" '
                f'stroke="#555"/>'
            )
            parts.append(
                f'<text x="{x0 - 8}" y="{py + 4:.1f}" text-anchor="end">'
                f"{_fmt(tick)}</text>"
            )
        # Series.
        for series in self._series:
            points = [to_px(x, y) for x, y in zip(series.xs, series.ys)]
            points = [p for p in points if p is not None]
            if not points:
                continue
            if series.kind == "line":
                path = " ".join(f"{px:.1f},{py:.1f}" for px, py in points)
                parts.append(
                    f'<polyline points="{path}" fill="none" '
                    f'stroke="{series.color}" stroke-width="1.8"/>'
                )
            else:
                for px, py in points:
                    parts.append(
                        f'<circle cx="{px:.1f}" cy="{py:.1f}" r="2.2" '
                        f'fill="{series.color}" fill-opacity="0.65"/>'
                    )
        # Labels.
        if self.title:
            parts.append(
                f'<text x="{self.width / 2:.0f}" y="22" text-anchor="middle" '
                f'font-size="15" font-weight="bold">{self.title}</text>'
            )
        if self.x_label:
            parts.append(
                f'<text x="{(x0 + x1) / 2:.0f}" y="{self.height - 12}" '
                f'text-anchor="middle">{self.x_label}</text>'
            )
        if self.y_label:
            cx, cy = 18, (y0 + y1) / 2
            parts.append(
                f'<text x="{cx}" y="{cy:.0f}" text-anchor="middle" '
                f'transform="rotate(-90 {cx} {cy:.0f})">{self.y_label}</text>'
            )
        # Legend (only labelled series).
        labelled = [s for s in self._series if s.label]
        for index, series in enumerate(labelled):
            ly = y0 + 14 + index * 16
            parts.append(
                f'<rect x="{x1 - 150}" y="{ly - 9}" width="10" height="10" '
                f'fill="{series.color}"/>'
            )
            parts.append(
                f'<text x="{x1 - 135}" y="{ly}">{series.label}</text>'
            )
        parts.append("</svg>")
        return "\n".join(parts)

    def save(self, path) -> None:
        """Write the SVG document to a file."""
        from pathlib import Path
        Path(path).write_text(self.render(), encoding="utf-8")
