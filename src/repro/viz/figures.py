"""Regenerate the paper's figures as SVG from a reproduction report.

One function per figure; :func:`render_all_figures` writes the whole set
into a directory.  Axes and series mirror the paper's presentation
(Figure 2's time-vs-ID scatter, Figure 3's dual CDF, Figures 4/7/8b as
score CDFs, Figure 5's vote scatter, Figure 6's ratio CDF, Figure 9a's
log-log degree scatter, Figures 9b/9c as degree-vs-toxicity curves).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.core.pipeline import ReproductionReport
from repro.viz.svg import SvgPlot

__all__ = [
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure8b",
    "figure9a",
    "figure9bc",
    "render_all_figures",
]


def _cdf_xy(samples) -> tuple[np.ndarray, np.ndarray]:
    data = np.sort(np.asarray(list(samples), dtype=float))
    return data, np.arange(1, data.size + 1) / data.size


def figure2(report: ReproductionReport) -> SvgPlot:
    """Fig. 2 — Gab user IDs assigned to new accounts over time."""
    growth = report.growth
    plot = SvgPlot(
        title="Figure 2: Gab user IDs over time",
        x_label="account creation (days since first account)",
        y_label="Gab ID",
    )
    days = (growth.created_at - growth.created_at[0]) / 86_400
    plot.scatter(days, growth.gab_ids)
    return plot


def figure3(report: ReproductionReport) -> SvgPlot:
    """Fig. 3 — comments and replies per active user (Lorenz-style)."""
    counts = np.sort(report.concentration.counts)   # ascending
    user_frac = np.arange(1, counts.size + 1) / counts.size
    mass_frac = np.cumsum(counts) / counts.sum()
    plot = SvgPlot(
        title="Figure 3: comment concentration",
        x_label="CDF of users",
        y_label="CDF of total comments",
    )
    plot.line(user_frac, mass_frac, label="measured")
    plot.line([0, 1], [0, 1], label="equality", color="#aaaaaa")
    return plot


def figure4(report: ReproductionReport) -> SvgPlot:
    """Fig. 4 — NSFW / offensive / aggregate LIKELY_TO_REJECT CDFs."""
    shadow = report.shadow
    plot = SvgPlot(
        title="Figure 4: shadow-overlay scores (LIKELY_TO_REJECT)",
        x_label="Perspective score",
        y_label="CDF of comments",
    )
    for cls in ("all", "nsfw", "offensive"):
        samples = shadow.scores["LIKELY_TO_REJECT"][cls]
        if samples.size:
            xs, ys = _cdf_xy(samples)
            plot.line(xs, ys, label=cls)
    return plot


def figure5(report: ReproductionReport) -> SvgPlot:
    """Fig. 5 — SEVERE_TOXICITY vs URL net vote score."""
    votes = report.votes
    plot = SvgPlot(
        title="Figure 5: toxicity vs net vote score",
        x_label="net vote score",
        y_label="SEVERE_TOXICITY",
    )
    plot.scatter(votes.net_scores, votes.mean_toxicity, label="per-URL mean")
    nets = sorted(votes.bucket_means)
    plot.line(nets, [votes.bucket_means[n] for n in nets],
              label="bucket mean")
    return plot


def figure6(report: ReproductionReport) -> SvgPlot:
    """Fig. 6 — Dissenter-to-Reddit comment-ratio CDF."""
    if report.ratios is None:
        raise ValueError("report has no comment-ratio analysis")
    xs, ys = _cdf_xy(report.ratios.ratios)
    plot = SvgPlot(
        title="Figure 6: Dissenter/Reddit comment ratio",
        x_label="d / (d + r)",
        y_label="CDF of users",
    )
    plot.line(xs, ys)
    return plot


def figure7(report: ReproductionReport, attribute: str = "LIKELY_TO_REJECT") -> SvgPlot:
    """Figs. 7a/7b/7c — cross-platform score CDFs for one attribute."""
    relative = report.relative
    plot = SvgPlot(
        title=f"Figure 7: {attribute} across platforms",
        x_label=f"{attribute} score",
        y_label="CDF",
    )
    for dataset in ("dissenter", "reddit", "nytimes", "dailymail"):
        samples = relative.scores[attribute].get(dataset)
        if samples is not None and samples.size:
            xs, ys = _cdf_xy(samples)
            plot.line(xs, ys, label=dataset)
    return plot


def figure8b(report: ReproductionReport) -> SvgPlot:
    """Fig. 8b — ATTACK_ON_AUTHOR CDFs by Allsides bias."""
    bias = report.bias
    plot = SvgPlot(
        title="Figure 8b: ATTACK_ON_AUTHOR by bias",
        x_label="ATTACK_ON_AUTHOR score",
        y_label="CDF of comments",
    )
    for category, samples in bias.attack.items():
        if samples.size >= 5:
            xs, ys = _cdf_xy(samples)
            plot.line(xs, ys, label=category)
    return plot


def figure9a(report: ReproductionReport) -> SvgPlot:
    """Fig. 9a — following vs followers (log-log scatter)."""
    social = report.social
    plot = SvgPlot(
        title="Figure 9a: following vs followers",
        x_label="in-degree (followers)",
        y_label="out-degree (following)",
        x_log=True,
        y_log=True,
    )
    # Shift by 1 so isolated users are representable on the log axes.
    plot.scatter(social.in_degrees + 1, social.out_degrees + 1)
    return plot


def figure9bc(report: ReproductionReport, direction: str = "in") -> SvgPlot:
    """Figs. 9b/9c — toxicity vs follower/following count."""
    social = report.social
    buckets = (
        social.toxicity_by_in_degree
        if direction == "in"
        else social.toxicity_by_out_degree
    )
    label = "followers" if direction == "in" else "following"
    plot = SvgPlot(
        title=f"Figure 9{'b' if direction == 'in' else 'c'}: "
              f"toxicity vs # of {label}",
        x_label=f"# of {label} (bucket lower bound + 1)",
        y_label="toxicity",
        x_log=True,
    )
    keys = sorted(buckets)
    xs = [1 if k == 0 else 2 ** (k - 1) + 1 for k in keys]
    plot.line(xs, [buckets[k][0] for k in keys], label="mean")
    plot.line(xs, [buckets[k][1] for k in keys], label="median")
    return plot


def render_all_figures(
    report: ReproductionReport, out_dir: str | Path
) -> list[Path]:
    """Write every renderable figure as SVG; returns the written paths."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    jobs: list[tuple[str, SvgPlot]] = [
        ("fig2_gab_growth.svg", figure2(report)),
        ("fig3_comment_concentration.svg", figure3(report)),
        ("fig4_shadow_reject.svg", figure4(report)),
        ("fig5_votes_toxicity.svg", figure5(report)),
        ("fig7a_likely_to_reject.svg", figure7(report, "LIKELY_TO_REJECT")),
        ("fig7b_severe_toxicity.svg", figure7(report, "SEVERE_TOXICITY")),
        ("fig7c_attack_on_author.svg", figure7(report, "ATTACK_ON_AUTHOR")),
        ("fig8b_attack_by_bias.svg", figure8b(report)),
        ("fig9a_degrees.svg", figure9a(report)),
        ("fig9b_toxicity_followers.svg", figure9bc(report, "in")),
        ("fig9c_toxicity_following.svg", figure9bc(report, "out")),
    ]
    if report.ratios is not None:
        jobs.insert(5, ("fig6_comment_ratio.svg", figure6(report)))
    written = []
    for name, plot in jobs:
        path = out / name
        plot.save(path)
        written.append(path)
    return written
