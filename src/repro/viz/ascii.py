"""Terminal ASCII charts for quick inspection.

Good enough to see a CDF's shape or a scatter's trend inside a test log or
an example's stdout; the SVG renderer is the publication path.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

__all__ = ["ascii_cdf", "ascii_scatter"]

_MARKS = "*o+x#@%&"


def ascii_cdf(
    samples_by_label: Mapping[str, Sequence[float]],
    width: int = 60,
    height: int = 16,
    lo: float = 0.0,
    hi: float = 1.0,
) -> str:
    """Render overlaid empirical CDFs of several samples.

    Args:
        samples_by_label: {legend label: raw sample}.
        width/height: character grid size.
        lo/hi: x-axis range (scores default to [0, 1]).
    """
    if not samples_by_label:
        raise ValueError("no samples to plot")
    grid = [[" "] * width for _ in range(height)]
    legend = []
    for index, (label, samples) in enumerate(samples_by_label.items()):
        data = np.sort(np.asarray(list(samples), dtype=float))
        if data.size == 0:
            continue
        mark = _MARKS[index % len(_MARKS)]
        legend.append(f"{mark} {label} (n={data.size})")
        for col in range(width):
            x = lo + (hi - lo) * col / (width - 1)
            cdf = np.searchsorted(data, x, side="right") / data.size
            row = height - 1 - int(round(cdf * (height - 1)))
            grid[row][col] = mark
    lines = ["1.0 |" + "".join(grid[0])]
    for row in range(1, height - 1):
        prefix = "    |"
        if row == height // 2:
            prefix = "0.5 |"
        lines.append(prefix + "".join(grid[row]))
    lines.append("0.0 +" + "-" * width)
    lines.append(f"    {lo:<8g}{' ' * (width - 16)}{hi:>8g}")
    lines.extend("    " + entry for entry in legend)
    return "\n".join(lines)


def ascii_scatter(
    xs: Sequence[float],
    ys: Sequence[float],
    width: int = 60,
    height: int = 16,
    x_label: str = "",
    y_label: str = "",
    log_x: bool = False,
) -> str:
    """Render a scatter plot."""
    x = np.asarray(list(xs), dtype=float)
    y = np.asarray(list(ys), dtype=float)
    if x.size == 0 or x.size != y.size:
        raise ValueError("xs and ys must be equal-length and non-empty")
    if log_x:
        mask = x > 0
        x, y = np.log10(x[mask]), y[mask]
        if x.size == 0:
            raise ValueError("no positive x values for log scale")
    lo_x, hi_x = float(x.min()), float(x.max())
    lo_y, hi_y = float(y.min()), float(y.max())
    if lo_x == hi_x:
        hi_x = lo_x + 1
    if lo_y == hi_y:
        hi_y = lo_y + 1
    grid = [[" "] * width for _ in range(height)]
    for xi, yi in zip(x, y):
        col = int(round((xi - lo_x) / (hi_x - lo_x) * (width - 1)))
        row = height - 1 - int(round((yi - lo_y) / (hi_y - lo_y) * (height - 1)))
        grid[row][col] = "*"
    lines = [f"{hi_y:8.3g} |" + "".join(grid[0])]
    for row in range(1, height - 1):
        lines.append("         |" + "".join(grid[row]))
    lines.append(f"{lo_y:8.3g} +" + "-" * width)
    x_lo = f"10^{lo_x:.1f}" if log_x else f"{lo_x:g}"
    x_hi = f"10^{hi_x:.1f}" if log_x else f"{hi_x:g}"
    lines.append(f"          {x_lo:<12s}{' ' * (width - 26)}{x_hi:>12s}")
    if x_label or y_label:
        lines.append(f"          x: {x_label}   y: {y_label}")
    return "\n".join(lines)
