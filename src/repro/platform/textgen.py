"""Latent-conditioned comment text generation.

Every synthetic comment carries a hidden :class:`CommentLatent` vector
(toxicity, obscenity, attack-on-author, reject-worthiness).  This module
turns that vector into text by mixing vocabulary classes at rates that are
monotone in the latents: hate terms appear above a toxicity threshold,
offensive/obscene vocabulary scales with obscenity, ad-hominem phrases fire
on high attack scores, dismissive "rude" vocabulary and SHOUTING scale with
reject-worthiness.  The simulated Perspective models and the dictionary
scorer then face the same inference problem the paper's classifiers faced:
recover the nature of a comment from its words.

Non-English comments (German, French, Spanish, Italian) are generated from
the langid seed corpora vocabulary so that language identification is a
real classification task.
"""

from __future__ import annotations

import numpy as np

from repro.nlp.langid import SEED_CORPORA
from repro.nlp.lexicons import (
    ATTACK_PHRASES,
    BENIGN_VOCAB,
    OBSCENE_VOCAB,
    OFFENSIVE_VOCAB,
    RUDE_VOCAB,
    hate_vocab,
)
from repro.platform.entities import CommentLatent

__all__ = ["CommentTextGenerator", "EMISSION"]


class EmissionModel:
    """Latent -> vocabulary-rate mapping (the generator's code book).

    Kept as a named object so the Perspective simulator's docstrings can
    point at the exact rates it is inverting.
    """

    # Token-class rates as functions of the latent vector.
    BASE_OFFENSIVE = 0.01
    OFFENSIVE_GAIN = 0.50        # * obscene
    BASE_OBSCENE = 0.005
    OBSCENE_GAIN = 0.35          # * obscene
    HATE_THRESHOLD = 0.35        # hate terms only above this toxicity
    HATE_GAIN = 0.55             # * (toxicity - threshold) / (1 - threshold)
    RUDE_GAIN = 0.40             # * reject
    ATTACK_FIRE = 0.55           # attack phrase emitted above this
    CAPS_GAIN = 0.45             # fraction of words upper-cased ~ toxicity

    def offensive_rate(self, latent: CommentLatent) -> float:
        return self.BASE_OFFENSIVE + self.OFFENSIVE_GAIN * latent.obscene

    def obscene_rate(self, latent: CommentLatent) -> float:
        return self.BASE_OBSCENE + self.OBSCENE_GAIN * latent.obscene

    def hate_rate(self, latent: CommentLatent) -> float:
        if latent.toxicity <= self.HATE_THRESHOLD:
            return 0.0
        span = (latent.toxicity - self.HATE_THRESHOLD) / (1.0 - self.HATE_THRESHOLD)
        return self.HATE_GAIN * span

    def rude_rate(self, latent: CommentLatent) -> float:
        return self.RUDE_GAIN * latent.reject

    def caps_fraction(self, latent: CommentLatent) -> float:
        return self.CAPS_GAIN * max(latent.toxicity, latent.reject - 0.3)

    def fires_attack(self, latent: CommentLatent) -> bool:
        return latent.attack >= self.ATTACK_FIRE


EMISSION = EmissionModel()

_FOREIGN_VOCABS: dict[str, tuple[str, ...]] = {
    lang: tuple(sorted(set(text.split())))
    for lang, text in SEED_CORPORA.items()
    if lang != "en"
}


class CommentTextGenerator:
    """Generates comment text from latent vectors.

    Args:
        rng: the world's RNG stream.
        mean_tokens: mean comment length (token count is Poisson around
            this, floored at 3).
    """

    def __init__(self, rng: np.random.Generator, mean_tokens: float = 16.0):
        self._rng = rng
        self._mean_tokens = mean_tokens
        self._benign = np.asarray(BENIGN_VOCAB)
        # Zipfian benign-word frequencies: BENIGN_VOCAB is ordered
        # function-words-first, so rank weighting makes "the"/"is"/"and"
        # dominate — real English character statistics, which is what
        # lets the language identifier work on short comments.
        ranks = np.arange(1, len(self._benign) + 1, dtype=float)
        self._benign_probs = (1.0 / (ranks + 4.0))
        self._benign_probs /= self._benign_probs.sum()
        self._offensive = np.asarray(OFFENSIVE_VOCAB)
        self._obscene = np.asarray(OBSCENE_VOCAB)
        self._rude = np.asarray(RUDE_VOCAB)
        self._hate = np.asarray(hate_vocab())

    def generate(self, latent: CommentLatent, language: str = "en") -> str:
        """Emit one comment's text."""
        if language != "en":
            return self._generate_foreign(language)
        rng = self._rng
        length = max(3, int(rng.poisson(self._mean_tokens)))

        rates = np.asarray([
            EMISSION.offensive_rate(latent),
            EMISSION.obscene_rate(latent),
            EMISSION.hate_rate(latent),
            EMISSION.rude_rate(latent),
        ])
        benign_rate = max(0.05, 1.0 - rates.sum())
        probs = np.concatenate([rates, [benign_rate]])
        probs = probs / probs.sum()

        pools = (self._offensive, self._obscene, self._hate, self._rude, self._benign)
        choices = rng.choice(len(pools), size=length, p=probs)
        words = [
            str(rng.choice(self._benign, p=self._benign_probs))
            if c == 4
            else str(rng.choice(pools[c]))
            for c in choices
        ]

        caps = EMISSION.caps_fraction(latent)
        if caps > 0:
            mask = rng.random(length) < caps
            words = [w.upper() if up else w for w, up in zip(words, mask)]

        text = " ".join(words)
        if EMISSION.fires_attack(latent):
            phrase = str(rng.choice(np.asarray(ATTACK_PHRASES)))
            insult = str(rng.choice(self._offensive))
            text = f"{phrase} {insult}. {text}"
        if latent.reject > 0.75:
            # Exclamation run length grows with rejection-worthiness: a
            # graded surface channel the reject model can read back.
            bangs = 3 + int(round(8 * (latent.reject - 0.75) / 0.25))
            text += "!" * bangs
        return text

    def _generate_foreign(self, language: str) -> str:
        vocab = _FOREIGN_VOCABS.get(language)
        if vocab is None:
            raise ValueError(f"no vocabulary for language {language!r}")
        rng = self._rng
        length = max(4, int(rng.poisson(self._mean_tokens)))
        words = rng.choice(np.asarray(vocab), size=length)
        return " ".join(str(w) for w in words)

    def generate_bio(self, mentions_censorship: bool) -> str:
        """A short profile biography.

        §2: "A full 25% of Dissenter users we examine in this study refer
        to 'censorship' in their profile's biography."
        """
        rng = self._rng
        words = [str(w) for w in rng.choice(self._benign, size=int(rng.integers(4, 12)))]
        if mentions_censorship:
            position = int(rng.integers(0, len(words) + 1))
            words.insert(position, "censorship")
        return " ".join(words)

    def generate_title(self, topic_words: int = 6) -> str:
        """A news-article-style title."""
        rng = self._rng
        words = [str(w) for w in rng.choice(self._benign, size=topic_words)]
        return " ".join(words).capitalize()
