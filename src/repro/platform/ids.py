"""Dissenter's undocumented 12-byte object identifiers.

Section 2.2 of the paper reverse-engineers the author-id, commenturl-id and
comment-id formats: 24 hexadecimal digits whose **first 4 bytes are a Unix
creation timestamp in seconds** ("an account created on February 28, 2019
at 16:23:53 UTC will have an author-id beginning with 5c780b19"), with
additional structure in the remaining 16 hex digits that the authors could
not decode.

This module implements the generator and the decoder.  The remaining 8
bytes follow the MongoDB ObjectId convention the real system almost
certainly used (5-byte machine/process random value + 3-byte counter) —
which *is* additional structure, decodable here but opaque to a crawler,
matching the paper's observation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ObjectId", "ObjectIdFactory"]


@dataclass(frozen=True, order=True)
class ObjectId:
    """A 12-byte identifier rendered as 24 lowercase hex digits."""

    hex: str

    def __post_init__(self) -> None:
        if len(self.hex) != 24:
            raise ValueError(f"ObjectId must be 24 hex digits, got {self.hex!r}")
        int(self.hex, 16)  # raises ValueError on non-hex input

    def __str__(self) -> str:
        return self.hex

    @property
    def timestamp(self) -> int:
        """Creation time (Unix seconds) encoded in the first 4 bytes."""
        return int(self.hex[:8], 16)

    @property
    def machine(self) -> int:
        """The 5-byte machine/process field (bytes 4-8)."""
        return int(self.hex[8:18], 16)

    @property
    def counter(self) -> int:
        """The 3-byte monotone counter (bytes 9-11)."""
        return int(self.hex[18:24], 16)

    @classmethod
    def from_parts(cls, timestamp: int, machine: int, counter: int) -> "ObjectId":
        if not 0 <= timestamp < 2**32:
            raise ValueError("timestamp must fit in 4 bytes")
        if not 0 <= machine < 2**40:
            raise ValueError("machine must fit in 5 bytes")
        counter %= 2**24
        return cls(hex=f"{timestamp:08x}{machine:010x}{counter:06x}")


class ObjectIdFactory:
    """Deterministic ObjectId mint.

    A single factory represents one backend process: a fixed machine field
    and a monotone counter, as MongoDB drivers do.  Worlds built from the
    same seed mint identical IDs.
    """

    def __init__(self, seed: int):
        rng = np.random.default_rng(seed)
        self._machine = int(rng.integers(0, 2**40))
        self._counter = int(rng.integers(0, 2**24))

    def mint(self, timestamp: float) -> ObjectId:
        """Mint an ID creation-stamped at ``timestamp`` (Unix seconds)."""
        self._counter = (self._counter + 1) % 2**24
        return ObjectId.from_parts(int(timestamp), self._machine, self._counter)
