"""The synthetic YouTube origin (§3.3, §4.2.2).

Dissenter's own comment pages show "/watch" titles and empty descriptions
for YouTube URLs, so the paper crawled YouTube itself with Selenium.  This
module generates the underlying YouTube content for every YouTube URL in
the world, calibrated to §4.2.2:

* ~97.7% of YouTube URLs are videos, ~1.6% channels, ~0.8% user pages,
* ~12.5% of videos are gone: generic "Video Unavailable", private,
  account-terminated, or removed for hate-speech policy (≈ 400 of 16k
  unavailable at full scale),
* Fox News produces 2.4% of commented videos vs CNN's 0.6%,
* slightly over 10% of active videos have their YouTube comment section
  disabled (Dissenter's raison d'être).

The page markup buries the metadata inside a JavaScript ``ytInitialData``
blob, so a plain HTML-title crawler recovers nothing — the crawler must use
its render mode, mirroring the paper's Selenium requirement.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.platform.entities import YouTubeItem
from repro.platform.textgen import CommentTextGenerator
from repro.platform.urlgen import UrlUniverse

__all__ = ["YouTubeUniverse", "build_youtube_universe"]

# (owner, share of videos).  Fox News / CNN shares per §4.2.2.
_OWNER_MIX: tuple[tuple[str, float], ...] = (
    ("Fox News", 0.024),
    ("CNN", 0.006),
    ("Sky News", 0.010),
    ("BBC News", 0.008),
    ("Tucker Highlights", 0.015),
    ("Liberty Stream", 0.012),
    ("TruthWatch", 0.010),
)

# §4.2.2: of 125k videos, 109k active; the 16k missing split into ~9.6k
# generic "Video Unavailable", ~3k private, ~3k terminated accounts, and
# ~400 hate-speech removals.
_STATUS_MIX: tuple[tuple[str, float], ...] = (
    ("active", 0.872),
    ("unavailable", 0.0768),
    ("private", 0.024),
    ("terminated", 0.024),
    ("hate_removed", 0.0032),
)

COMMENTS_DISABLED_RATE = 0.104


@dataclass
class YouTubeUniverse:
    """All YouTube content addressed by Dissenter URLs."""

    items: dict[str, YouTubeItem]    # keyed by full URL

    def videos(self) -> list[YouTubeItem]:
        return [i for i in self.items.values() if i.kind == "video"]

    def active_videos(self) -> list[YouTubeItem]:
        return [i for i in self.videos() if i.is_active]


def _kind_for_url(url: str) -> str:
    if "/channel/" in url:
        return "channel"
    if "/user/" in url:
        return "user"
    return "video"


def _draw_owner(rng: np.random.Generator, textgen: CommentTextGenerator) -> str:
    roll = rng.random()
    cumulative = 0.0
    for owner, share in _OWNER_MIX:
        cumulative += share
        if roll < cumulative:
            return owner
    return textgen.generate_title(2)


def _draw_status(rng: np.random.Generator) -> str:
    roll = rng.random()
    cumulative = 0.0
    for status, share in _STATUS_MIX:
        cumulative += share
        if roll < cumulative:
            return status
    return "active"


def build_youtube_universe(
    urls: UrlUniverse,
    rng: np.random.Generator,
    textgen: CommentTextGenerator,
) -> YouTubeUniverse:
    """Generate YouTube content for every YouTube URL in the world."""
    items: dict[str, YouTubeItem] = {}
    for record in urls.urls:
        if record.category != "youtube":
            continue
        kind = _kind_for_url(record.url)
        if kind == "video":
            status = _draw_status(rng)
            owner = _draw_owner(rng, textgen)
        else:
            status = "active"
            owner = textgen.generate_title(2)
        items[record.url] = YouTubeItem(
            url=record.url,
            kind=kind,
            title=textgen.generate_title(5) if status == "active" else "",
            owner=owner if status == "active" else "",
            status=status,
            comments_disabled=(
                status == "active" and rng.random() < COMMENTS_DISABLED_RATE
            ),
        )
    return YouTubeUniverse(items=items)
