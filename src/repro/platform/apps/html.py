"""HTML rendering helpers for the synthetic origins.

The paper's crawler infers Dissenter-account existence from response
*size* (user pages are >10 kB because of bundled CSS/JS; missing-user
responses are ~150 bytes), so page weight is part of the contract here:
:func:`page` pads every real page past the 10 kB threshold with a
deterministic style block, and :func:`tiny_error` renders the ~150-byte
negative response.
"""

from __future__ import annotations

import html as _html

__all__ = ["PAGE_SIZE_THRESHOLD", "escape", "page", "tiny_error"]

PAGE_SIZE_THRESHOLD = 10_240   # bytes; the paper's ">= 10 kB" detector

# A deterministic CSS filler emulating the bundled stylesheet weight of the
# real application.  Generated once at import; content is irrelevant, bytes
# are not.
_FILLER_RULES = "\n".join(
    f".c{i:04d} {{ margin: {i % 7}px; padding: {i % 5}px; "
    f"color: #{(i * 2654435761) % 0xFFFFFF:06x}; }}"
    for i in range(200)
)
_STYLE_BLOCK = f"<style>\n{_FILLER_RULES}\n</style>"


def escape(text: str) -> str:
    """HTML-escape text content."""
    return _html.escape(text, quote=True)


def page(title: str, body: str, pad: bool = True) -> str:
    """Assemble a full HTML page.

    Args:
        title: the <title> content (already plain text; escaped here).
        body: inner HTML (caller escapes its own dynamic content).
        pad: include the stylesheet filler that keeps real pages heavy.
    """
    style = _STYLE_BLOCK if pad else ""
    return (
        "<!DOCTYPE html>\n"
        f"<html><head><title>{escape(title)}</title>{style}</head>\n"
        f"<body>\n{body}\n</body></html>\n"
    )


def tiny_error(message: str = "Not Found") -> str:
    """The ~150-byte negative response body."""
    return (
        "<!DOCTYPE html><html><head><title>Error</title></head>"
        f"<body><p>{escape(message)}</p></body></html>"
    )
