"""The gab.com origin.

Implements the two Gab interfaces the paper used:

* ``/api/v1/accounts/{id}`` (§3.1) — JSON account records addressed by the
  integer counter ID; unallocated and deleted IDs return a JSON error.
  Every API response carries ``X-RateLimit-Remaining`` and
  ``X-RateLimit-Reset`` headers, and exceeding the window yields 429 —
  the paper's crawler paced itself off exactly these headers (§3.4).
* ``/api/v1/accounts/{id}/followers`` and ``…/following`` (§3.4) —
  paginated follower lists (``?page=N``, fixed page size), complete
  enumeration guaranteed by pagination.
* ``/users/{username}`` — the profile page; deleted accounts render the
  distinctive "deleted" appearance the paper matched against a
  test-deleted account (§4.1.1).
"""

from __future__ import annotations

import datetime
import json

from repro.net.clock import Clock
from repro.net.http import Request, Response
from repro.net.router import App
from repro.platform.apps.html import page, tiny_error
from repro.platform.entities import GabAccount
from repro.platform.gab import GabUniverse
from repro.platform.socialgraph import SocialGraph

__all__ = ["GabApp", "PAGE_SIZE", "RATE_LIMIT_WINDOW", "RATE_LIMIT_REQUESTS"]

PAGE_SIZE = 80
RATE_LIMIT_WINDOW = 300.0        # seconds
RATE_LIMIT_REQUESTS = 300        # per window


class GabApp(App):
    """HTTP application over the Gab universe and follow graph."""

    def __init__(self, gab: GabUniverse, social: SocialGraph, clock: Clock):
        super().__init__("gab.com")
        self._gab = gab
        self._social = social
        self._clock = clock
        self._window_start = clock.now()
        self._window_used = 0
        self.use(self._rate_limit)
        self.get("/api/v1/accounts/{gab_id}")(self._account)
        self.get("/api/v1/accounts/{gab_id}/followers")(self._followers)
        self.get("/api/v1/accounts/{gab_id}/following")(self._following)
        self.get("/users/{username}")(self._profile_page)

    # ------------------------------------------------------------------
    # Rate limiting: fixed window with header exposure.
    # ------------------------------------------------------------------

    def _rate_limit(self, request: Request) -> Response | None:
        now = self._clock.now()
        if now - self._window_start >= RATE_LIMIT_WINDOW:
            self._window_start = now
            self._window_used = 0
        if self._window_used >= RATE_LIMIT_REQUESTS:
            response = Response(status=429, body=b'{"error":"Throttled"}')
            self._attach_headers(response)
            return response
        self._window_used += 1
        return None

    def _attach_headers(self, response: Response) -> None:
        remaining = max(0, RATE_LIMIT_REQUESTS - self._window_used)
        reset_at = self._window_start + RATE_LIMIT_WINDOW
        response.headers.set("X-RateLimit-Remaining", str(remaining))
        response.headers.set("X-RateLimit-Reset", f"{reset_at:.0f}")

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _lookup(self, gab_id_raw: str) -> GabAccount | None:
        try:
            gab_id = int(gab_id_raw)
        except ValueError:
            return None
        account = self._gab.by_id.get(gab_id)
        if account is None or account.is_deleted:
            # Deleted accounts disappear from the API just like unallocated
            # IDs — this is what creates the paper's 1,300 orphaned
            # Dissenter users.
            return None
        return account

    def _account_json(self, account: GabAccount) -> dict:
        created = datetime.datetime.fromtimestamp(
            account.created_at, tz=datetime.timezone.utc
        )
        return {
            "id": str(account.gab_id),
            "username": account.username,
            "acct": account.username,
            "display_name": account.display_name,
            "note": account.bio,
            "created_at": created.strftime("%Y-%m-%dT%H:%M:%S.000Z"),
            "followers_count": self._social.in_degree(account.gab_id),
            "following_count": self._social.out_degree(account.gab_id),
        }

    def _json_error(self, message: str, status: int = 404) -> Response:
        response = Response.json_response({"error": message}, status=status)
        self._attach_headers(response)
        return response

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------

    def _account(self, request: Request, params: dict[str, str]) -> Response:
        account = self._lookup(params["gab_id"])
        if account is None:
            return self._json_error("Record not found")
        response = Response.json_response(self._account_json(account))
        self._attach_headers(response)
        return response

    def _paginated_accounts(
        self, request: Request, gab_ids: list[int]
    ) -> Response:
        try:
            page_number = max(1, int(request.query.get("page", "1")))
        except ValueError:
            page_number = 1
        start = (page_number - 1) * PAGE_SIZE
        window = gab_ids[start : start + PAGE_SIZE]
        payload = [
            self._account_json(self._gab.by_id[g])
            for g in window
            if g in self._gab.by_id and not self._gab.by_id[g].is_deleted
        ]
        response = Response.json_response(payload)
        self._attach_headers(response)
        return response

    def _followers(self, request: Request, params: dict[str, str]) -> Response:
        account = self._lookup(params["gab_id"])
        if account is None:
            return self._json_error("Record not found")
        ids = sorted(self._social.followers_of(account.gab_id))
        return self._paginated_accounts(request, ids)

    def _following(self, request: Request, params: dict[str, str]) -> Response:
        account = self._lookup(params["gab_id"])
        if account is None:
            return self._json_error("Record not found")
        ids = sorted(self._social.following_of(account.gab_id))
        return self._paginated_accounts(request, ids)

    def _profile_page(self, request: Request, params: dict[str, str]) -> Response:
        account = self._gab.by_username.get(params["username"])
        if account is None:
            return Response.html(tiny_error("No such user"), status=404)
        if account.is_deleted:
            body = '<div class="account-deleted">This account is deleted.</div>'
            return Response.html(page("Gab", body, pad=False))
        body = (
            f'<h1 class="display-name">{account.display_name}</h1>'
            f'<span class="username">@{account.username}</span>'
        )
        return Response.html(page(f"@{account.username}", body))
