"""HTTP origins for the synthetic world.

:func:`build_origins` stands up every site the paper's crawl touched on a
single loopback transport: dissenter.com, gab.com, trends.gab.com,
youtube.com, youtu.be, api.pushshift.io, and reddit.com.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.clock import Clock, VirtualClock
from repro.net.transport import FaultPlan, LoopbackTransport
from repro.platform.apps.dissenter_app import DissenterApp
from repro.platform.apps.gab_app import GabApp
from repro.platform.apps.pushshift_app import PushshiftApp, RedditApp
from repro.platform.apps.trends_app import TrendsApp
from repro.platform.apps.youtube_app import YouTubeApp, YouTuBeApp
from repro.platform.world import World

__all__ = [
    "DissenterApp",
    "GabApp",
    "Origins",
    "PushshiftApp",
    "RedditApp",
    "TrendsApp",
    "YouTubeApp",
    "YouTuBeApp",
    "build_origins",
]


@dataclass
class Origins:
    """Everything needed to crawl the world over HTTP."""

    transport: LoopbackTransport
    clock: Clock
    dissenter: DissenterApp
    gab: GabApp
    trends: TrendsApp
    youtube: YouTubeApp
    youtu_be: YouTuBeApp
    pushshift: PushshiftApp
    reddit: RedditApp


def build_origins(
    world: World,
    clock: Clock | None = None,
    latency: float = 0.05,
    with_faults: bool = False,
    seed: int = 0,
) -> Origins:
    """Stand up all synthetic origins on one loopback transport.

    Args:
        world: the generated world to serve.
        clock: shared simulation clock (fresh VirtualClock if omitted).
        latency: per-request simulated round-trip seconds.
        with_faults: inject timeouts/5xx per the world config's fault
            rates (exercises the crawler's §3.2 re-request logic).
        seed: fault-injection RNG seed.
    """
    clock = clock if clock is not None else VirtualClock()
    faults = None
    if with_faults:
        faults = FaultPlan(
            timeout_rate=world.config.fault_timeout_rate,
            error_rate=world.config.fault_error_rate,
        )
    transport = LoopbackTransport(
        clock=clock, latency=latency, faults=faults, seed=seed
    )

    dissenter = DissenterApp(world.dissenter, clock)
    gab = GabApp(world.gab, world.social, clock)
    trends = TrendsApp(world.dissenter)
    youtube = YouTubeApp(world.youtube)
    youtu_be = YouTuBeApp(world.youtube)
    pushshift = PushshiftApp(world.reddit, gab=world.gab)
    reddit = RedditApp(world.reddit)

    for app in (dissenter, gab, trends, youtube, youtu_be, pushshift, reddit):
        transport.register(app)

    return Origins(
        transport=transport,
        clock=clock,
        dissenter=dissenter,
        gab=gab,
        trends=trends,
        youtube=youtube,
        youtu_be=youtu_be,
        pushshift=pushshift,
        reddit=reddit,
    )
