"""The dissenter.com origin.

Serves everything the paper's crawler consumed (§3.2):

* ``/user/{username}`` — a user's home page: display name, bio, author-id,
  and the list of commented-upon URLs (as /discussion links).  Existing
  users render a >10 kB page; unknown users a ~150 B error — the response
  size *is* the account-existence signal.
* ``/discussion/{commenturl_id}`` — a URL's comment page: title,
  description, vote counts, and every visible comment/reply with its
  comment-id, author-id and parent-id.
* ``/comment/{comment_id}`` — a single comment's page, including the
  commented-out ``commentAuthor`` JavaScript variable that leaks the
  author's language / permissions / view-filter metadata.
* ``/discussion/begin?url=…`` — URL-submission flow, redirecting to the
  existing comment page for known URLs.

Visibility: NSFW and "offensive" comments appear only to authenticated
sessions whose account enabled the corresponding view filter (§2.2's
shadow overlay).  Sessions are cookie-based (``session=<token>``).

A per-URL rate limit of 10 requests/minute is enforced exactly as the
paper observed — which a breadth-first crawl never trips.
"""

from __future__ import annotations

import json
import secrets

from repro.net.clock import Clock
from repro.net.http import Request, Response
from repro.net.ratelimit import KeyedRateLimiter
from repro.net.router import App
from repro.platform.apps.html import escape, page, tiny_error
from repro.platform.dissenter import DissenterState
from repro.platform.entities import Comment

__all__ = ["DissenterApp"]

RATE_LIMIT_PER_URL = 10 / 60.0    # 10 requests/minute, per URL (§3.2)


class DissenterApp(App):
    """HTTP application over a :class:`DissenterState`."""

    def __init__(self, state: DissenterState, clock: Clock):
        # Route handlers read immutable state; sessions enter the render
        # only through the request's Cookie header (part of the memo key)
        # and no handler emits Set-Cookie — so renders are memoisable.
        # The per-URL rate limiter stays in prepare() and always runs.
        super().__init__("dissenter.com", deterministic_render=True)
        self._state = state
        self._clock = clock
        self._sessions: dict[str, tuple[bool, bool]] = {}
        self._urls_by_id = state.urls.by_id()
        self._comment_index = {c.comment_id.hex: c for c in state.comments}
        # Per-URL "does any comment carry this flag" index, so the
        # render-memo key can drop view filters that cannot change the
        # page (see render_cookie_key).
        self._url_flags: dict[str, tuple[bool, bool]] = {}
        for comment in state.comments:
            url_id = comment.commenturl_id.hex
            has_nsfw, has_off = self._url_flags.get(url_id, (False, False))
            self._url_flags[url_id] = (
                has_nsfw or comment.nsfw, has_off or comment.offensive
            )
        self._limiter = KeyedRateLimiter(
            rate=RATE_LIMIT_PER_URL, capacity=10, clock=clock
        )
        self.use(self._rate_limit)
        self.get("/user/{username}")(self._user_page)
        self.get("/discussion/begin")(self._begin_discussion)
        self.get("/discussion/{commenturl_id}")(self._comment_page)
        self.get("/comment/{comment_id}")(self._single_comment_page)

    # ------------------------------------------------------------------
    # Sessions (the paper created authenticated accounts with the NSFW and
    # offensive view preferences enabled to uncover the shadow overlay).
    # ------------------------------------------------------------------

    def create_session(self, nsfw: bool = False, offensive: bool = False) -> str:
        """Provision an authenticated session; returns the cookie token."""
        token = secrets.token_hex(8)
        self._sessions[token] = (nsfw, offensive)
        return token

    def _view_prefs(self, request: Request) -> tuple[bool, bool]:
        cookie = request.cookie_header() or ""
        for part in cookie.split(";"):
            name, _, value = part.strip().partition("=")
            if name == "session" and value in self._sessions:
                return self._sessions[value]
        return (False, False)

    def render_cookie_key(self, request: Request) -> tuple[bool, bool]:
        """What a render actually reads from the cookie: view filters,
        restricted to the flags the requested page contains.

        Visibility filters act purely per-comment, so a filter a page has
        no flagged comments for cannot change its bytes — the §2.2 shadow
        passes (baseline / NSFW / offensive sessions over the same pages)
        then share one memo entry for every page without hidden content.
        """
        nsfw, offensive = self._view_prefs(request)
        if not (nsfw or offensive):
            return (False, False)
        path = request.path
        url_id = None
        if path.startswith("/discussion/") and path != "/discussion/begin":
            url_id = path.rsplit("/", 1)[-1]
        elif path.startswith("/comment/"):
            comment = self._comment_index.get(path.rsplit("/", 1)[-1])
            if comment is None:
                return (False, False)   # 404 is filter-independent
            url_id = comment.commenturl_id.hex
        elif path.startswith("/user/") or path == "/discussion/begin":
            return (False, False)       # handlers never read the filters
        if url_id is None:
            return (nsfw, offensive)
        has_nsfw, has_offensive = self._url_flags.get(url_id, (False, False))
        return (nsfw and has_nsfw, offensive and has_offensive)

    # ------------------------------------------------------------------
    # Middleware
    # ------------------------------------------------------------------

    def _rate_limit(self, request: Request) -> Response | None:
        if not self._limiter.try_acquire(request.url):
            retry = self._limiter.wait_time(request.url)
            response = Response(status=429, body=b"rate limited")
            response.headers.set("Retry-After", f"{retry:.0f}")
            return response
        return None

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------

    def _user_page(self, request: Request, params: dict[str, str]) -> Response:
        user = self._state.users_by_username.get(params["username"])
        if user is None:
            return Response.html(tiny_error("No such user"), status=404)
        comments = self._state.comments_by_author.get(user.author_id.hex, [])
        seen: set[str] = set()
        url_items: list[str] = []
        for comment in comments:
            url_id = comment.commenturl_id.hex
            if url_id in seen:
                continue
            seen.add(url_id)
            record = self._urls_by_id.get(url_id)
            label = escape(record.url if record else url_id)
            url_items.append(
                f'<li class="commented-url">'
                f'<a href="/discussion/{url_id}">{label}</a></li>'
            )
        body = (
            f'<h1 class="display-name">{escape(user.display_name)}</h1>\n'
            f'<span class="username">@{escape(user.username)}</span>\n'
            f'<meta name="author-id" content="{user.author_id.hex}">\n'
            f'<p class="bio">{escape(user.bio)}</p>\n'
            f'<ul class="commented-urls">\n' + "\n".join(url_items) + "\n</ul>"
        )
        return Response.html(page(f"@{user.username} on Dissenter", body))

    def _render_comment(self, comment: Comment) -> str:
        parent = (
            comment.parent_comment_id.hex if comment.parent_comment_id else ""
        )
        return (
            f'<div class="comment" data-comment-id="{comment.comment_id.hex}" '
            f'data-author-id="{comment.author_id.hex}" '
            f'data-parent-id="{parent}" '
            f'data-created="{int(comment.created_at)}">\n'
            f'<p class="comment-text">{escape(comment.text)}</p>\n'
            f"</div>"
        )

    def _comment_page(self, request: Request, params: dict[str, str]) -> Response:
        record = self._urls_by_id.get(params["commenturl_id"])
        if record is None:
            return Response.html(tiny_error("No such discussion"), status=404)
        nsfw, offensive = self._view_prefs(request)
        visible = self._state.visible_comments(
            record.commenturl_id.hex, nsfw=nsfw, offensive=offensive
        )
        rendered = "\n".join(self._render_comment(c) for c in visible)
        body = (
            f'<h1 class="page-title">{escape(record.title)}</h1>\n'
            f'<p class="page-description">{escape(record.description)}</p>\n'
            f'<meta name="commenturl-id" content="{record.commenturl_id.hex}">\n'
            f'<meta name="target-url" content="{escape(record.url)}">\n'
            f'<span class="votes" data-up="{record.upvotes}" '
            f'data-down="{record.downvotes}"></span>\n'
            f'<span class="comment-count" data-count="{len(visible)}"></span>\n'
            f'<div class="comments">\n{rendered}\n</div>'
        )
        return Response.html(page(record.title or "/watch", body))

    def _single_comment_page(
        self, request: Request, params: dict[str, str]
    ) -> Response:
        comment = self._comment_index.get(params["comment_id"])
        if comment is None:
            return Response.html(tiny_error("No such comment"), status=404)
        nsfw, offensive = self._view_prefs(request)
        if (comment.nsfw and not nsfw) or (comment.offensive and not offensive):
            return Response.html(tiny_error("No such comment"), status=404)
        author = self._state.users_by_author_id.get(comment.author_id.hex)
        replies = [
            c
            for c in self._state.comments_by_url.get(comment.commenturl_id.hex, [])
            if c.parent_comment_id == comment.comment_id
            and (not c.nsfw or nsfw)
            and (not c.offensive or offensive)
        ]
        rendered = "\n".join(
            self._render_comment(c) for c in [comment] + replies
        )
        author_blob = ""
        if author is not None:
            payload = json.dumps([
                {
                    "author_id": author.author_id.hex,
                    "username": author.username,
                    "display_name": author.display_name,
                    "language": author.language,
                    "permissions": author.flags,
                    "filters": author.view_filters,
                }
            ])
            # The real pages carry this as a commented-out JS variable the
            # paper mined for hidden per-user metadata (§3.2).
            author_blob = f"<script>\n// var commentAuthor = {payload};\n</script>"
        body = (
            f'<div class="comments">\n{rendered}\n</div>\n{author_blob}'
        )
        return Response.html(page("Dissenter comment", body))

    def _begin_discussion(self, request: Request, params: dict[str, str]) -> Response:
        target = request.query.get("url", "")
        if not target:
            return Response.html(tiny_error("missing url"), status=400)
        for record in self._state.urls.urls:
            if record.url == target:
                return Response.redirect(
                    f"/discussion/{record.commenturl_id.hex}"
                )
        # Unknown URL: an empty comment page inviting the first comment.
        body = (
            '<h1 class="page-title">New discussion</h1>\n'
            f'<meta name="target-url" content="{escape(target)}">\n'
            '<div class="comments"></div>'
        )
        return Response.html(page("New discussion", body))

