"""The trends.gab.com origin (§2.1).

Gab Trends is the web portal onto Dissenter threads: a news-aggregation
homepage whose articles link to the same comment pages the browser shows,
plus the URL-submission flow.  The comment thread visible through Trends
is identical to the browser's, so this app simply fronts the Dissenter
state.
"""

from __future__ import annotations

from repro.net.http import Request, Response
from repro.net.router import App
from repro.platform.apps.html import escape, page, tiny_error
from repro.platform.dissenter import DissenterState

__all__ = ["TrendsApp"]

HOMEPAGE_ARTICLES = 25


class TrendsApp(App):
    """The trends.gab.com origin."""

    def __init__(self, state: DissenterState):
        super().__init__("trends.gab.com", deterministic_render=True)
        self._state = state
        # Homepage shows the most-commented news URLs.
        news = [
            u for u in state.urls.urls
            if u.category == "news"
        ]
        news.sort(
            key=lambda u: -len(state.visible_comments(u.commenturl_id.hex))
        )
        self._front_page = news[:HOMEPAGE_ARTICLES]
        self.get("/")(self._home)
        self.get("/submit")(self._submit)

    def _home(self, request: Request, params: dict[str, str]) -> Response:
        items = []
        for record in self._front_page:
            # Advertise the publicly visible thread size (shadow content
            # is invisible through Trends exactly as through the overlay).
            count = len(self._state.visible_comments(record.commenturl_id.hex))
            items.append(
                f'<li class="article">'
                f'<a href="https://dissenter.com/discussion/'
                f'{record.commenturl_id.hex}">{escape(record.title)}</a>'
                f'<span class="comment-count">{count}</span></li>'
            )
        body = '<ul class="articles">\n' + "\n".join(items) + "\n</ul>"
        return Response.html(page("Gab Trends", body))

    def _submit(self, request: Request, params: dict[str, str]) -> Response:
        target = request.query.get("url", "")
        if not target:
            return Response.html(tiny_error("missing url"), status=400)
        return Response.redirect(
            "https://dissenter.com/discussion/begin?url=" + target
        )
