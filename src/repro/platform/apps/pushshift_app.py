"""The Pushshift / Reddit origins (§4.4.1).

Two small services back the Reddit-baseline methodology:

* ``api.pushshift.io`` — ``/reddit/search/comment/?author=<name>&size=<n>``
  returns the account's comments (JSON ``data`` array) plus a metadata
  block with the total count, as the real Pushshift API did.
* ``reddit.com`` — ``/user/{name}/about.json`` existence probe used for
  the username-matching step.
"""

from __future__ import annotations

from repro.net.http import Request, Response
from repro.net.router import App
from repro.platform.reddit import RedditUniverse

__all__ = ["PushshiftApp", "RedditApp"]

MAX_PAGE_SIZE = 100


class PushshiftApp(App):
    """The api.pushshift.io origin.

    Besides the Reddit comment search, the app optionally serves the Gab
    author archive the paper's *first* username-harvesting attempt mined
    (§3.1) — a paginated listing of accounts that have posted on Gab.
    Silent accounts are, by construction, absent from it.
    """

    def __init__(self, reddit: RedditUniverse, gab=None):
        super().__init__("api.pushshift.io", deterministic_render=True)
        self._reddit = reddit
        self._gab_authors: list[str] = []
        if gab is not None:
            self._gab_authors = sorted(
                a.username for a in gab.accounts if a.has_posted
            )
        self.get("/reddit/search/comment/")(self._search_comments)
        self.get("/reddit/search/comment")(self._search_comments)
        self.get("/gab/search/submission/")(self._gab_authors_page)
        self.get("/gab/search/submission")(self._gab_authors_page)

    def _gab_authors_page(
        self, request: Request, params: dict[str, str]
    ) -> Response:
        if request.query.get("agg") != "author":
            return Response.json_response(
                {"error": "only agg=author is archived"}, status=400
            )
        try:
            page = max(1, int(request.query.get("page", "1")))
        except ValueError:
            page = 1
        start = (page - 1) * MAX_PAGE_SIZE
        window = self._gab_authors[start:start + MAX_PAGE_SIZE]
        return Response.json_response({
            "aggs": {"author": [{"key": name} for name in window]},
            "metadata": {"total_results": len(self._gab_authors)},
        })

    def _search_comments(
        self, request: Request, params: dict[str, str]
    ) -> Response:
        author = request.query.get("author", "")
        if not author:
            return Response.json_response(
                {"error": "author parameter required"}, status=400
            )
        account = self._reddit.accounts.get(author)
        if account is None:
            return Response.json_response({"data": [], "metadata": {"total_results": 0}})
        try:
            size = min(MAX_PAGE_SIZE, max(1, int(request.query.get("size", "25"))))
        except ValueError:
            size = 25
        data = [
            {"author": account.username, "body": text, "subreddit": "news"}
            for text in account.comments[:size]
        ]
        return Response.json_response(
            {"data": data, "metadata": {"total_results": account.n_comments}}
        )


class RedditApp(App):
    """The reddit.com origin (existence probes only)."""

    def __init__(self, reddit: RedditUniverse):
        super().__init__("reddit.com", deterministic_render=True)
        self._reddit = reddit
        self.get("/user/{username}/about.json")(self._about)

    def _about(self, request: Request, params: dict[str, str]) -> Response:
        account = self._reddit.accounts.get(params["username"])
        if account is None:
            return Response.json_response(
                {"message": "Not Found", "error": 404}, status=404
            )
        return Response.json_response(
            {
                "kind": "t2",
                "data": {
                    "name": account.username,
                    "comment_karma": account.n_comments,
                },
            }
        )
