"""The youtube.com / youtu.be origins (§3.3).

The metadata the paper needed (video title, uploader, availability,
comment-section status) "resides in large blocks of JavaScript", which is
why the authors used Selenium.  These origins reproduce that structure:

* the static ``<title>`` is just "YouTube" — an HTML-title scraper learns
  nothing (exactly the "/watch" + empty-description failure Dissenter's
  own parser exhibits);
* the real metadata sits in a ``var ytInitialData = {...};`` script blob
  that only a JS-executing (render-mode) client extracts;
* ``youtu.be`` short links redirect to the canonical watch URL.
"""

from __future__ import annotations

import json
from urllib.parse import urlsplit

from repro.net.http import Request, Response
from repro.net.router import App
from repro.platform.apps.html import page, tiny_error
from repro.platform.entities import YouTubeItem
from repro.platform.youtube_site import YouTubeUniverse

__all__ = ["YouTubeApp", "YouTuBeApp"]

_UNAVAILABLE_MESSAGES = {
    "unavailable": "Video unavailable",
    "private": "This video is private.",
    "terminated": (
        "This video is no longer available because the YouTube account "
        "associated with this video has been terminated."
    ),
    "hate_removed": (
        "This video has been removed for violating YouTube's policy on "
        "hate speech."
    ),
}


def _blob_for(item: YouTubeItem) -> dict:
    if item.is_active:
        return {
            "status": "OK",
            "kind": item.kind,
            "videoDetails": {
                "title": item.title,
                "author": item.owner,
                "commentsDisabled": item.comments_disabled,
            },
        }
    return {
        "status": "ERROR",
        "kind": item.kind,
        "reason": item.status,
        "message": _UNAVAILABLE_MESSAGES.get(item.status, "Video unavailable"),
    }


class YouTubeApp(App):
    """The youtube.com origin."""

    def __init__(self, youtube: YouTubeUniverse):
        super().__init__("youtube.com", deterministic_render=True)
        self._items = youtube.items
        # Index by path+query so lookups ignore the scheme variants the
        # URL universe contains.
        self._by_path: dict[str, YouTubeItem] = {}
        for url, item in youtube.items.items():
            parts = urlsplit(url)
            host = parts.netloc.lower()
            if host in ("youtube.com", "www.youtube.com"):
                key = parts.path + ("?" + parts.query if parts.query else "")
                self._by_path[key] = item
            elif host == "youtu.be":
                # Short links redirect here; serve them at the canonical
                # watch path.
                self._by_path[f"/watch?v={parts.path.lstrip('/')}"] = item
        self.get("/{rest...}")(self._serve)

    def _serve(self, request: Request, params: dict[str, str]) -> Response:
        parts = urlsplit(request.url)
        key = parts.path + ("?" + parts.query if parts.query else "")
        item = self._by_path.get(key)
        if item is None:
            return Response.html(tiny_error("Not found"), status=404)
        blob = json.dumps(_blob_for(item))
        body = (
            '<div id="player"></div>\n'
            f"<script>var ytInitialData = {blob};</script>"
        )
        # The static title is deliberately generic: the useful data is in
        # the JS blob only.
        return Response.html(page("YouTube", body))


class YouTuBeApp(App):
    """The youtu.be short-link origin: redirects to youtube.com."""

    def __init__(self, youtube: YouTubeUniverse):
        super().__init__("youtu.be", deterministic_render=True)
        self._by_code: dict[str, str] = {}
        for url in youtube.items:
            parts = urlsplit(url)
            if parts.netloc.lower() == "youtu.be":
                code = parts.path.lstrip("/")
                self._by_code[code] = url
        self.get("/{code}")(self._redirect)

    def _redirect(self, request: Request, params: dict[str, str]) -> Response:
        code = params["code"]
        if code not in self._by_code:
            return Response.html(tiny_error("Not found"), status=404)
        return Response.redirect(
            f"https://youtube.com/watch?v={code}", permanent=True
        )
