"""The Gab account universe (§3.1, Figure 2).

Gab user IDs are a counter starting at 1 ("@e", the former CTO) and are
generally assigned monotonically with account-creation time.  The paper's
Figure 2 shows two anomalous periods in which previously unallocated
lower-valued IDs were handed to new accounts.  This generator reproduces
all of it:

* a growth curve with the bursts visible in Fig. 2 (launch, the late-2018
  influx after the Twitter purges, the 2019 Dissenter launch),
* two reserved ID blocks that are later assigned out of order,
* ~8% of accounts also holding Dissenter accounts,
* "silent and friendless" accounts that no Gab-side crawl of posts or
  followers would ever discover (the motivation for exhaustive ID
  enumeration), and
* a small population of deleted accounts whose Dissenter users live on as
  orphans (§4.1.1 found ~1,300 of them).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.platform.config import WorldConfig
from repro.platform.entities import GabAccount

__all__ = ["GabUniverse", "build_gab_universe"]

_ADJECTIVES = (
    "free", "true", "real", "brave", "liberty", "eagle", "patriot", "iron",
    "silent", "golden", "red", "blue", "gray", "dark", "bright", "wild",
    "lone", "proud", "swift", "solid", "prime", "alpha", "delta", "omega",
)
_NOUNS = (
    "wolf", "hawk", "lion", "bear", "viper", "falcon", "raven", "tiger",
    "rider", "walker", "hunter", "watcher", "smith", "miller", "baker",
    "mason", "carter", "parker", "ranger", "pilot", "sailor", "knight",
    "voice", "pen", "mind", "spirit", "truth", "witness",
)

# Founder/staff accounts the paper names.  "@e" holds Gab ID 1; "@a"
# (Andrew Torba) is an early account that new users auto-follow;
# "@shadowknight412" is the Gab CTO's account (the second isAdmin flag).
SPECIAL_USERNAMES: tuple[tuple[int, str, str], ...] = (
    (1, "e", "Ekrem B."),
    (2, "a", "Andrew Torba"),
    (3, "shadowknight412", "Rob Colbert"),
)

# Growth phases: (fraction of accounts, start fraction, end fraction of the
# Gab->crawl time span).  Steeper segments = Fig. 2's bursts.
_GROWTH_PHASES: tuple[tuple[float, float, float], ...] = (
    (0.18, 0.00, 0.10),   # launch surge
    (0.12, 0.10, 0.45),   # slow 2017-2018
    (0.25, 0.45, 0.58),   # late-2018 influx
    (0.30, 0.58, 0.72),   # 2019 Dissenter-era burst
    (0.15, 0.72, 1.00),   # tail through Apr 2020
)


@dataclass
class GabUniverse:
    """All Gab accounts plus lookup structure."""

    accounts: list[GabAccount]
    by_id: dict[int, GabAccount] = field(default_factory=dict)
    by_username: dict[str, GabAccount] = field(default_factory=dict)
    max_id: int = 0
    anomalous_ids: list[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.by_id:
            self.by_id = {a.gab_id: a for a in self.accounts}
        if not self.by_username:
            self.by_username = {a.username: a for a in self.accounts}
        if not self.max_id:
            self.max_id = max(self.by_id) if self.by_id else 0

    def dissenter_accounts(self) -> list[GabAccount]:
        return [a for a in self.accounts if a.has_dissenter]


def _make_username(rng: np.random.Generator, used: set[str]) -> str:
    while True:
        name = (
            str(rng.choice(np.asarray(_ADJECTIVES)))
            + str(rng.choice(np.asarray(_NOUNS)))
        )
        if rng.random() < 0.7:
            name += str(int(rng.integers(1, 10_000)))
        if name not in used:
            used.add(name)
            return name


def _creation_times(
    config: WorldConfig, rng: np.random.Generator, count: int
) -> np.ndarray:
    """Draw sorted creation timestamps following the phased growth curve."""
    span = config.crawl_time - config.epoch_gab
    fractions, starts, ends = zip(*_GROWTH_PHASES)
    weights = np.asarray(fractions) / np.sum(fractions)
    phases = rng.choice(len(_GROWTH_PHASES), size=count, p=weights)
    u = rng.random(count)
    lo = np.asarray(starts)[phases]
    hi = np.asarray(ends)[phases]
    times = config.epoch_gab + (lo + u * (hi - lo)) * span
    return np.sort(times)


def build_gab_universe(
    config: WorldConfig, rng: np.random.Generator
) -> GabUniverse:
    """Generate the Gab account population."""
    count = config.n_gab_accounts
    times = _creation_times(config, rng, count)
    paper = config.paper

    # Two reserved blocks whose IDs are assigned late (Fig. 2 anomalies).
    block_size = max(2, count // 80)
    block1_start = max(4, count // 6)
    block2_start = max(block1_start + block_size + 1, count // 2)
    reserved = list(range(block1_start, block1_start + block_size)) + list(
        range(block2_start, block2_start + block_size)
    )
    reserved_set = set(reserved)

    # Dissenter adoption skews toward accounts that predate the launch
    # (the early-2019 spike drew existing Gab users): pre-launch accounts
    # adopt at 1.3x the base rate, later ones at 0.45x.  The base rate is
    # normalised so the overall share stays at the paper's ~7.8%.
    dissenter_fraction = paper.dissenter_users / paper.gab_accounts / 1.10
    # The paper's ~1,300 orphaned users are *commenters* whose Gab account
    # vanished; with ~47% of users active, the per-user deletion rate that
    # yields 1,300 active orphans at full scale is ~2.8%.
    deleted_dissenter_fraction = paper.orphaned_dissenter_users / (
        paper.dissenter_users * paper.active_user_fraction
    )

    used_names: set[str] = {name for _, name, _ in SPECIAL_USERNAMES}
    accounts: list[GabAccount] = []

    next_id = 1
    sequential_ids: list[int] = []
    while len(sequential_ids) < count:
        if next_id not in reserved_set:
            sequential_ids.append(next_id)
        next_id += 1

    # The last `block` accounts (latest creation times) receive the
    # reserved low IDs instead of fresh high ones.
    n_anomalous = len(reserved)
    assigned_ids = sequential_ids[: count - n_anomalous] + reserved

    for index, (gab_id, created_at) in enumerate(zip(assigned_ids, times)):
        special = next(
            ((sid, name, display) for sid, name, display in SPECIAL_USERNAMES
             if sid == gab_id),
            None,
        )
        if special is not None:
            _, username, display_name = special
        else:
            username = _make_username(rng, used_names)
            display_name = username.capitalize()

        adoption_multiplier = (
            1.3 if created_at < config.epoch_dissenter else 0.45
        )
        has_dissenter = (
            created_at < config.crawl_time
            and rng.random() < dissenter_fraction * adoption_multiplier
        )
        # Founder accounts are Dissenter users (they hold the admin flags).
        if special is not None and gab_id in (2, 3):
            has_dissenter = True

        is_deleted = False
        if has_dissenter and special is None:
            is_deleted = rng.random() < deleted_dissenter_fraction
        elif not has_dissenter and special is None:
            is_deleted = rng.random() < 0.005

        # Roughly a third of accounts ever post on Gab proper — the gap
        # between prior work's 336k posted-user census and the 1.3M the
        # exhaustive ID enumeration uncovers (§3.1).
        has_posted = bool(rng.random() < 0.35) and not is_deleted
        accounts.append(
            GabAccount(
                gab_id=gab_id,
                username=username,
                display_name=display_name,
                created_at=float(created_at),
                bio="",
                is_deleted=is_deleted,
                has_dissenter=has_dissenter,
                has_posted=has_posted,
            )
        )

    return GabUniverse(accounts=accounts, anomalous_ids=reserved)
