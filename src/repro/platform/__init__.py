"""Synthetic Gab + Dissenter world.

The studied platform is defunct, so this package generates a complete,
deterministic stand-in calibrated to every population statistic the paper
reports: the Gab account base and its ID-counter anomalies (Fig. 2), the
Dissenter user subset with attribute flags and view filters (Table 1), the
commented-URL universe with its TLD/domain mix (Table 2), power-law comment
activity (Fig. 3), NSFW/offensive shadow content, votes, the follower
graph, the YouTube video universe, and the Reddit / NY Times / Daily Mail
baseline corpora (Table 3).

The world is exposed two ways: directly as Python objects (ground truth for
tests), and as synthetic HTTP origins (`repro.platform.apps`) that the
crawler package must scrape exactly the way the paper's authors scraped the
real thing.
"""

from repro.platform.config import WorldConfig
from repro.platform.entities import (
    Comment,
    CommentUrl,
    DissenterUser,
    GabAccount,
    RedditAccount,
    YouTubeItem,
)
from repro.platform.ids import ObjectId
from repro.platform.world import World, build_world

__all__ = [
    "Comment",
    "CommentUrl",
    "DissenterUser",
    "GabAccount",
    "ObjectId",
    "RedditAccount",
    "World",
    "WorldConfig",
    "YouTubeItem",
    "build_world",
]
