"""Ground-truth entities of the synthetic world.

These dataclasses are what the generators in this package produce and what
the synthetic HTTP origins render into HTML/JSON.  The crawler never sees
them directly — it must re-derive everything from the rendered pages, and
the test suite checks the round trip.

Latent fields (``CommentLatent``, ``DissenterUser.toxicity_mean``) are the
generator's hidden state; they exist so tests can verify that measured
quantities track ground truth, and are never exposed over HTTP.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.platform.ids import ObjectId

__all__ = [
    "Comment",
    "CommentLatent",
    "CommentUrl",
    "DissenterUser",
    "GabAccount",
    "NewsComment",
    "RedditAccount",
    "USER_FLAG_NAMES",
    "VIEW_FILTER_NAMES",
    "YouTubeItem",
]

# Flag and filter names exactly as Table 1 lists them.
USER_FLAG_NAMES: tuple[str, ...] = (
    "canLogin", "canPost", "canReport", "canChat", "canVote",
    "isBanned", "isAdmin", "isModerator",
    "is_pro", "is_donor", "is_investor", "is_premium", "is_tippable",
    "is_private", "verified",
)

VIEW_FILTER_NAMES: tuple[str, ...] = ("pro", "verified", "standard", "nsfw", "offensive")


@dataclass
class GabAccount:
    """A Gab account, addressable by its integer API ID.

    Gab IDs are a counter starting at 1 (§3.1), generally monotone in
    creation time with documented anomalies.
    """

    gab_id: int
    username: str
    display_name: str
    created_at: float
    bio: str = ""
    is_deleted: bool = False
    has_dissenter: bool = False
    # Whether the account ever posted on Gab proper.  The paper's first
    # username-harvesting attempt (mining Pushshift) could only discover
    # accounts that posted; "silent" users were invisible to it (§3.1).
    has_posted: bool = False

    @property
    def profile_path(self) -> str:
        return f"/api/v1/accounts/{self.gab_id}"


@dataclass
class DissenterUser:
    """A Dissenter user (necessarily also a Gab account holder).

    ``flags`` and ``view_filters`` are the §4.1.2 attribute sets surfaced
    through the hidden ``commentAuthor`` JavaScript blob.
    """

    author_id: ObjectId
    gab_id: int
    username: str
    display_name: str
    created_at: float
    bio: str = ""
    language: str = "en"
    flags: dict[str, bool] = field(default_factory=dict)
    view_filters: dict[str, bool] = field(default_factory=dict)
    toxicity_mean: float = 0.1       # latent; never rendered
    activity_weight: float = 1.0     # latent; drives comment allocation
    gab_deleted: bool = False        # true for the ~1,300 orphaned users
    in_planted_core: bool = False    # latent; hateful-core ground truth
    became_active: bool = False      # set once the user posts a comment

    @property
    def home_path(self) -> str:
        return f"/user/{self.username}"


@dataclass
class CommentLatent:
    """Hidden per-comment attribute vector the text generator encodes.

    All values in [0, 1].  The simulated Perspective models try to recover
    these from the emitted text alone.
    """

    toxicity: float
    obscene: float
    attack: float
    reject: float

    def __post_init__(self) -> None:
        for name in ("toxicity", "obscene", "attack", "reject"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")


@dataclass
class CommentUrl:
    """A URL with a Dissenter comment page.

    ``url`` preserves the paper's messiness: protocol-only duplicates,
    trailing slashes, multi-parameter GET queries, ``file://`` and browser
    scheme URLs all occur.
    """

    commenturl_id: ObjectId
    url: str
    title: str
    description: str
    category: str               # youtube | twitter | news | social | video | other | file | browser
    bias: str                   # left | left-center | center | right-center | right | not-ranked
    first_seen: float
    upvotes: int = 0
    downvotes: int = 0
    controversy: float = 0.0    # latent; drives comment toxicity at net ~ 0

    @property
    def net_votes(self) -> int:
        return self.upvotes - self.downvotes

    @property
    def comment_page_path(self) -> str:
        return f"/discussion/{self.commenturl_id.hex}"


@dataclass
class Comment:
    """A Dissenter comment or reply."""

    comment_id: ObjectId
    author_id: ObjectId
    commenturl_id: ObjectId
    created_at: float
    text: str
    parent_comment_id: ObjectId | None = None   # None => top-level comment
    nsfw: bool = False          # labelled by the submitting user
    offensive: bool = False     # labelled by the platform
    language: str = "en"
    latent: CommentLatent | None = None

    @property
    def is_reply(self) -> bool:
        return self.parent_comment_id is not None

    @property
    def hidden(self) -> bool:
        """Hidden from unauthenticated / non-opted-in viewers (§2.2)."""
        return self.nsfw or self.offensive

    @property
    def comment_page_path(self) -> str:
        return f"/comment/{self.comment_id.hex}"


@dataclass
class YouTubeItem:
    """A YouTube URL's underlying content (§3.3 / §4.2.2)."""

    url: str
    kind: str                   # video | user | channel
    title: str
    owner: str
    status: str                 # active | unavailable | private | terminated | hate_removed
    comments_disabled: bool = False

    @property
    def is_active(self) -> bool:
        return self.status == "active"


@dataclass
class RedditAccount:
    """A Reddit account (§4.4.1 username-matching baseline)."""

    username: str
    n_comments: int
    is_dissenter_person: bool   # latent: truly the same person, or a collision
    comments: list[str] = field(default_factory=list)


@dataclass
class NewsComment:
    """A comment from the NY Times / Daily Mail baseline corpora."""

    site: str                   # nytimes | dailymail
    text: str
    latent: CommentLatent | None = None
