"""The follower graph (§3.4, §4.5).

Dissenter has no visible social network of its own; the paper uses Gab
follows as a proxy.  This generator builds a directed follow graph over
Gab accounts with the properties §4.5 reports:

* power-law in- and out-degree distributions,
* roughly a third of active Dissenter users completely isolated (15,702 of
  45,524 have no followers and follow no one),
* follow lists that include non-Dissenter Gab accounts (the analysis must
  filter these out to induce the Dissenter-only graph), and
* an optionally planted "hateful core": a set of users wired with *mutual*
  follows into one giant component plus pair components, matching the
  paper's 42-user / 6-component / 32-giant structure when enabled.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.platform.gab import GabUniverse

__all__ = ["SocialGraph", "build_social_graph"]

ISOLATED_FRACTION = 15_702 / 45_524   # §4.5.1

# §3.1: new Gab accounts auto-follow @a — but only from some point in the
# platform's history onward ("our results suggested a period of time
# before the @a handle was automatically followed by new users"), and
# some users later unfollow.  Expressed as a fraction of the Gab->crawl
# time span before which no auto-follow happened, and a keep rate after.
AUTO_FOLLOW_A_START_FRACTION = 0.22
AUTO_FOLLOW_A_KEEP_RATE = 0.82


@dataclass
class SocialGraph:
    """Directed follow graph keyed by Gab ID."""

    following: dict[int, set[int]] = field(default_factory=dict)
    followers: dict[int, set[int]] = field(default_factory=dict)

    def add_edge(self, source: int, target: int) -> None:
        """``source`` follows ``target``."""
        if source == target:
            return
        self.following.setdefault(source, set()).add(target)
        self.followers.setdefault(target, set()).add(source)

    def add_mutual(self, a: int, b: int) -> None:
        self.add_edge(a, b)
        self.add_edge(b, a)

    def following_of(self, gab_id: int) -> set[int]:
        return self.following.get(gab_id, set())

    def followers_of(self, gab_id: int) -> set[int]:
        return self.followers.get(gab_id, set())

    def out_degree(self, gab_id: int) -> int:
        return len(self.following.get(gab_id, ()))

    def in_degree(self, gab_id: int) -> int:
        return len(self.followers.get(gab_id, ()))

    def is_mutual(self, a: int, b: int) -> bool:
        return b in self.following.get(a, ()) and a in self.following.get(b, ())


def _spanning_connected_mutual(
    graph: SocialGraph, members: list[int], rng: np.random.Generator
) -> None:
    """Wire members into one connected component of mutual edges."""
    shuffled = list(members)
    rng.shuffle(shuffled)
    for i in range(1, len(shuffled)):
        attach_to = shuffled[int(rng.integers(0, i))]
        graph.add_mutual(shuffled[i], attach_to)
    # Densify: extra chords make the component clique-ish, as a clustered
    # community would be.
    extra = len(members)
    for _ in range(extra):
        a, b = rng.choice(len(members), size=2, replace=False)
        graph.add_mutual(members[int(a)], members[int(b)])


def build_social_graph(
    gab: GabUniverse,
    rng: np.random.Generator,
    planted_core: list[list[int]] | None = None,
) -> SocialGraph:
    """Build the follow graph.

    Args:
        gab: the account universe.
        rng: world RNG stream.
        planted_core: optional list of Gab-ID groups; each group is wired
            into one mutual-follow component (the hateful core plan).

    Returns:
        The directed :class:`SocialGraph`.
    """
    graph = SocialGraph()
    dissenter_ids = [a.gab_id for a in gab.accounts if a.has_dissenter]
    non_dissenter_ids = [a.gab_id for a in gab.accounts if not a.has_dissenter]
    core_members = {m for group in (planted_core or []) for m in group}

    # Partition: isolated users never appear in the graph at all.
    participants: list[int] = []
    for gab_id in dissenter_ids:
        if gab_id in core_members:
            participants.append(gab_id)
        elif rng.random() >= ISOLATED_FRACTION:
            participants.append(gab_id)

    # Auto-follow of @a across the Gab population — what the paper's
    # abandoned seed-discovery methodology crawled.  Isolated Dissenter
    # users are exactly the ones this misses: they predate the auto-follow
    # era or manually unfollowed @a (both behaviours the paper observed),
    # which is why only exhaustive ID enumeration finds them.
    torba_account = gab.by_username.get("a")
    if torba_account is not None:
        participant_set = set(participants)
        creation_times = [a.created_at for a in gab.accounts]
        span = max(creation_times) - min(creation_times)
        start = min(creation_times) + AUTO_FOLLOW_A_START_FRACTION * span
        for account in gab.accounts:
            if account.gab_id == torba_account.gab_id or account.is_deleted:
                continue
            if account.has_dissenter and account.gab_id not in participant_set:
                continue   # isolated users stay isolated
            if (
                account.created_at >= start
                and rng.random() < AUTO_FOLLOW_A_KEEP_RATE
            ):
                graph.add_edge(account.gab_id, torba_account.gab_id)

    if len(participants) >= 3:
        participants_arr = np.asarray(participants)
        # Preferential attachment: attractiveness grows with in-degree.
        attractiveness = np.ones(len(participants))
        # "@a" is auto-followed by many users; give it a head start when
        # present.
        torba = next((i for i, g in enumerate(participants) if g == 2), None)
        if torba is not None:
            attractiveness[torba] = len(participants) * 0.5

        # Heavy-tailed out-degree: most follow a handful, a few follow
        # thousands (§4.5.1's 15,790-following outlier at full scale).
        raw = rng.pareto(1.1, size=len(participants)) * 3.0 + 1.0
        out_degrees = np.minimum(raw.astype(int), len(participants) - 1)

        for index, gab_id in enumerate(participants):
            k = int(out_degrees[index])
            if k <= 0:
                continue
            probs = attractiveness / attractiveness.sum()
            targets = rng.choice(
                len(participants), size=min(k, len(participants) - 1),
                replace=False, p=probs,
            )
            for target in targets:
                if int(target) == index:
                    continue
                graph.add_edge(gab_id, int(participants_arr[target]))
                attractiveness[int(target)] += 1.0

    # Sprinkle in non-Dissenter Gab accounts so the induced-subgraph
    # filtering step of the analysis is real work.
    if non_dissenter_ids:
        non_dissenter_arr = np.asarray(non_dissenter_ids)
        for gab_id in participants:
            n_outside = int(rng.integers(0, 4))
            for target in rng.choice(non_dissenter_arr, size=n_outside):
                graph.add_edge(gab_id, int(target))
            if rng.random() < 0.3:
                follower = int(rng.choice(non_dissenter_arr))
                graph.add_edge(follower, gab_id)

    # Plant the hateful-core component structure.
    for group in planted_core or []:
        if len(group) == 1:
            continue
        if len(group) == 2:
            graph.add_mutual(group[0], group[1])
        else:
            _spanning_connected_mutual(graph, list(group), rng)

    return graph
