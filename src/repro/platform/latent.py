"""Latent toxicity model: who says how-toxic things, where.

This module is the single calibration point for every toxicity-shaped
figure in the paper.  It defines:

* the per-user latent toxicity mixture (most Dissenter users are mild, a
  minority are mid-toxic, a small cluster is highly toxic — §4.5's
  "hateful core" at the extreme),
* how a comment's latent attribute vector is sampled given its author and
  the URL it lands on (URL controversy, vote score and Allsides bias all
  shift the distribution — Figures 5 and 8), and
* dataset-level profiles for the NY Times / Daily Mail / Reddit baselines
  (Figure 7's cross-platform orderings).

All constants live here so the calibration benches have one place to
check against the paper's reported quantiles.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.platform.entities import CommentLatent, CommentUrl

__all__ = [
    "BIAS_ATTACK_SHIFT",
    "BIAS_TOXICITY_SHIFT",
    "DATASET_PROFILES",
    "DatasetProfile",
    "sample_baseline_latent",
    "sample_comment_latent",
    "sample_nsfw_latent",
    "sample_offensive_latent",
    "sample_user_toxicity_mean",
]


def _clip01(value: float) -> float:
    return float(min(1.0, max(0.0, value)))


# ---------------------------------------------------------------------------
# Per-user latent toxicity (drives Fig. 3 x Fig. 9 interactions).
# ---------------------------------------------------------------------------

# (probability, sampler) mixture.  Means roughly 0.06 / 0.36 / 0.78.
# Calibrated (with the activity-toxicity correlation in the dissenter
# generator) so that ~20% of comments exceed 0.5 SEVERE_TOXICITY and ~10%
# exceed 0.75, per Fig. 7b.
_USER_MIX = (
    (0.76, lambda rng: 0.5 * rng.beta(1.3, 10.0)),
    (0.16, lambda rng: 0.05 + 0.8 * rng.beta(2.5, 4.0)),
    (0.08, lambda rng: 0.35 + 0.60 * rng.beta(5.0, 2.0)),
)


def sample_user_toxicity_mean(rng: np.random.Generator) -> float:
    """Draw one Dissenter user's latent toxicity mean."""
    roll = rng.random()
    cumulative = 0.0
    for probability, sampler in _USER_MIX:
        cumulative += probability
        if roll < cumulative:
            return _clip01(sampler(rng))
    return _clip01(_USER_MIX[-1][1](rng))


# ---------------------------------------------------------------------------
# URL conditioning (Figures 5 and 8).
# ---------------------------------------------------------------------------

# SEVERE_TOXICITY is higher on centre-leaning URLs and lowest on
# right-leaning ones (Fig. 8a).
BIAS_TOXICITY_SHIFT: dict[str, float] = {
    "left": 0.02,
    "left-center": 0.045,
    "center": 0.07,
    "right-center": 0.03,
    "right": -0.05,
    "not-ranked": 0.0,
}

# ATTACK_ON_AUTHOR is highest on left-leaning URLs and decreases rightward
# (Fig. 8b).
BIAS_ATTACK_SHIFT: dict[str, float] = {
    "left": 0.22,
    "left-center": 0.15,
    "center": 0.09,
    "right-center": 0.04,
    "right": 0.0,
    "not-ranked": 0.06,
}


def _vote_damping(net_votes: int) -> float:
    """Controversy-to-toxicity transfer, damped by decisive vote scores.

    Fig. 5: zero-net-vote URLs show the highest mean/median toxicity;
    toxicity decreases as |net| grows.
    """
    if net_votes == 0:
        # Unvoted URLs are where unmoderated controversy festers; the
        # transfer is strongest there (the Fig. 5 peak).
        return 1.2
    return max(0.05, 1.0 - min(abs(net_votes), 10) / 6.0)


def sample_comment_latent(
    rng: np.random.Generator,
    user_toxicity_mean: float,
    url: CommentUrl,
) -> CommentLatent:
    """Sample a regular Dissenter comment's latent vector.

    Toxicity is a two-component mixture: a comment is either "toxic mode"
    (Beta(4, 1.6) — clearly hateful) or "mild mode" (0.9 * Beta(1.15, 7)).
    The probability of toxic mode rises with the author's latent mean, the
    URL's controversy (damped by decisive vote scores — Fig. 5), and the
    URL's media-bias category (Fig. 8a).  The mixture keeps the corpus
    marginal stable across seeds while still giving individual users and
    URLs distinct toxicity profiles: calibrated to ~20% of comments above
    0.5 SEVERE_TOXICITY and ~10% above 0.75 (Fig. 7b).
    """
    damp = _vote_damping(url.net_votes)
    p_toxic = min(0.95, max(0.01, (
        0.08
        + 0.90 * user_toxicity_mean ** 1.2
        + 0.35 * url.controversy * damp
        + BIAS_TOXICITY_SHIFT.get(url.bias, 0.0)
        + (0.05 if url.net_votes < 0 else 0.0)
    )))
    if rng.random() < p_toxic:
        base = rng.beta(4.0, 1.6)
    else:
        base = 0.9 * rng.beta(1.15, 7.0)
    toxicity = _clip01(base - 0.04 + rng.normal(0.0, 0.05))
    obscene = _clip01(0.55 * toxicity + 0.8 * rng.beta(1.2, 8.0))
    attack = _clip01(rng.beta(1.3, 7.0) + BIAS_ATTACK_SHIFT.get(url.bias, 0.0))
    # Dissenter's discourse norm: even non-toxic comments are frequently
    # moderator-rejectable (Fig. 7a's headline result).
    rudeness = rng.beta(2.45, 1.2)
    reject = _clip01(max(rudeness, 0.9 * toxicity + 0.05, 0.7 * obscene))
    return CommentLatent(
        toxicity=toxicity, obscene=obscene, attack=attack, reject=reject
    )


def sample_nsfw_latent(rng: np.random.Generator) -> CommentLatent:
    """Latents for a user-labelled NSFW comment (more extreme, Fig. 4)."""
    toxicity = _clip01(rng.beta(4.5, 2.5))
    obscene = _clip01(rng.beta(5.0, 1.8))
    attack = _clip01(rng.beta(1.5, 6.0))
    reject = _clip01(max(rng.beta(5.0, 2.0), 0.9 * toxicity, 0.8 * obscene))
    return CommentLatent(
        toxicity=toxicity, obscene=obscene, attack=attack, reject=reject
    )


def sample_offensive_latent(rng: np.random.Generator) -> CommentLatent:
    """Latents for a platform-labelled "offensive" comment.

    The paper finds these the most radical content on the platform: 80%
    score > 0.95 on LIKELY_TO_REJECT.
    """
    toxicity = _clip01(0.35 + 0.65 * rng.beta(9.0, 1.3))
    obscene = _clip01(rng.beta(10.0, 1.5))
    attack = _clip01(rng.beta(2.0, 5.0))
    reject = _clip01(max(rng.beta(40.0, 1.05), 0.95 * toxicity))
    return CommentLatent(
        toxicity=toxicity, obscene=obscene, attack=attack, reject=reject
    )


# ---------------------------------------------------------------------------
# Baseline dataset profiles (Fig. 7 / Table 3).
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DatasetProfile:
    """Latent-distribution parameters for one comment corpus."""

    name: str
    # Toxicity mixture: (weight_high, low Beta params, high Beta params).
    tox_high_weight: float
    tox_low: tuple[float, float]
    tox_high: tuple[float, float]
    # Rejectability ("rudeness") Beta parameters.
    rude: tuple[float, float]
    # Attack-on-author Beta parameters (similar across datasets, Fig. 7c).
    attack: tuple[float, float]


DATASET_PROFILES: dict[str, DatasetProfile] = {
    # Dissenter's own profile is generated through users/URLs above; this
    # entry exists for scoring pipelines that want a flat sampler.
    "dissenter": DatasetProfile(
        name="dissenter",
        tox_high_weight=0.20,
        tox_low=(1.1, 6.0),
        tox_high=(4.0, 1.6),
        rude=(2.45, 1.2),
        attack=(1.35, 6.8),
    ),
    "reddit": DatasetProfile(
        name="reddit",
        tox_high_weight=0.10,
        tox_low=(1.2, 7.0),
        tox_high=(3.0, 2.0),
        rude=(1.0, 1.0),       # uniform: Fig. 7a's "mostly uniform" curve
        attack=(1.3, 7.0),
    ),
    "dailymail": DatasetProfile(
        name="dailymail",
        tox_high_weight=0.05,
        tox_low=(1.2, 8.0),
        tox_high=(3.0, 2.0),
        rude=(2.2, 1.8),
        attack=(1.3, 7.2),
    ),
    "nytimes": DatasetProfile(
        name="nytimes",
        tox_high_weight=0.015,
        tox_low=(1.2, 11.0),
        tox_high=(3.0, 2.5),
        rude=(1.5, 3.5),
        attack=(1.25, 7.5),
    ),
}


def sample_baseline_latent(
    rng: np.random.Generator, profile: DatasetProfile
) -> CommentLatent:
    """Sample a latent vector for a baseline-corpus comment."""
    if rng.random() < profile.tox_high_weight:
        toxicity = _clip01(rng.beta(*profile.tox_high))
    else:
        toxicity = _clip01(rng.beta(*profile.tox_low))
    obscene = _clip01(0.55 * toxicity + 0.8 * rng.beta(1.2, 8.0))
    attack = _clip01(rng.beta(*profile.attack))
    rudeness = rng.beta(*profile.rude)
    reject = _clip01(max(rudeness, 0.9 * toxicity + 0.05, 0.7 * obscene))
    return CommentLatent(
        toxicity=toxicity, obscene=obscene, attack=attack, reject=reject
    )
