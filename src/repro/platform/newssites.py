"""The NY Times and Daily Mail baseline comment corpora (Table 3, Fig. 7).

The paper acquires crawled comment corpora for both outlets from Zannettou
et al. (2020): ~5.0M NY Times and ~14.3M Daily Mail comments.  We generate
synthetic equivalents with the per-outlet latent-toxicity profiles from
:mod:`repro.platform.latent`: NY Times comments are moderated to the
platform's own standard (its moderator decisions *trained* the
LIKELY_TO_REJECT model), Daily Mail's are rougher.

Counts are nominal at world scale for Table 3; text is materialised up to
``baseline_sample_cap`` per outlet for Perspective scoring.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.platform.config import WorldConfig
from repro.platform.entities import NewsComment
from repro.platform.latent import DATASET_PROFILES, sample_baseline_latent
from repro.platform.textgen import CommentTextGenerator

__all__ = ["NewsCorpora", "build_news_corpora"]


@dataclass
class NewsCorpora:
    """Baseline comment corpora for both news outlets."""

    nytimes: list[NewsComment]
    dailymail: list[NewsComment]
    nominal_counts: dict[str, int]

    def sample(self, site: str) -> list[NewsComment]:
        if site == "nytimes":
            return self.nytimes
        if site == "dailymail":
            return self.dailymail
        raise KeyError(f"unknown site {site!r}")


def _build_site(
    site: str,
    count: int,
    rng: np.random.Generator,
    textgen: CommentTextGenerator,
) -> list[NewsComment]:
    profile = DATASET_PROFILES[site]
    comments: list[NewsComment] = []
    for _ in range(count):
        latent = sample_baseline_latent(rng, profile)
        comments.append(
            NewsComment(site=site, text=textgen.generate(latent), latent=latent)
        )
    return comments


def build_news_corpora(
    config: WorldConfig,
    rng: np.random.Generator,
    textgen: CommentTextGenerator,
) -> NewsCorpora:
    """Generate both outlets' comment samples and nominal counts."""
    cap = config.baseline_sample_cap
    nominal = {
        "nytimes": config.scaled(config.paper.nytimes_comments, minimum=100),
        "dailymail": config.scaled(config.paper.dailymail_comments, minimum=100),
    }
    return NewsCorpora(
        nytimes=_build_site(
            "nytimes", min(cap, nominal["nytimes"]), rng, textgen
        ),
        dailymail=_build_site(
            "dailymail", min(cap, nominal["dailymail"]), rng, textgen
        ),
        nominal_counts=nominal,
    )
