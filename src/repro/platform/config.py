"""World configuration: every calibration constant in one place.

All population sizes are the paper's, multiplied by ``scale``.  The default
scale of 0.01 builds a world of ~13k Gab accounts / ~1k Dissenter users /
~17k comments in a few seconds; `scale=1.0` reproduces the full census
sizes (1.3M Gab accounts, 101k Dissenter users, 1.68M comments).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["WorldConfig", "PAPER"]


@dataclass(frozen=True)
class PaperConstants:
    """Headline numbers reported by the paper (unscaled)."""

    gab_accounts: int = 1_300_000
    dissenter_users: int = 101_000
    comments: int = 1_680_000
    distinct_urls: int = 588_000
    active_user_fraction: float = 0.47        # §4.1.1: 47k of 101k commented
    march_2019_join_fraction: float = 0.77    # 77% joined by end of Mar 2019
    orphaned_dissenter_users: int = 1_300     # Gab account deleted
    nsfw_comments: int = 10_000               # ~0.6% of comments
    offensive_comments: int = 8_000           # ~0.5% of comments
    youtube_urls: int = 128_000
    nsfw_filter_fraction: float = 0.1504      # Table 1
    offensive_filter_fraction: float = 0.0733
    pro_user_fraction: float = 0.0267
    banned_users: int = 8
    admin_users: int = 2
    english_fraction: float = 0.94
    german_fraction: float = 0.02
    reddit_username_match_fraction: float = 0.56
    hateful_core_size: int = 42
    hateful_core_components: int = 6
    hateful_core_giant: int = 32
    nytimes_comments: int = 4_995_119
    dailymail_comments: int = 14_287_096
    reddit_comments: int = 13_051_561
    reddit_matched_commenters: int = 35_718


PAPER = PaperConstants()


@dataclass(frozen=True)
class WorldConfig:
    """Parameters controlling world generation.

    Attributes:
        scale: multiplier applied to the paper's population sizes.
        seed: master RNG seed; every sub-generator derives its stream
            from it, so equal configs build identical worlds.
        epoch_gab: Unix time Gab opened (Aug 2016).
        epoch_dissenter: Unix time Dissenter launched (late Feb 2019).
        crawl_time: Unix time the simulated crawl happens (end Apr 2020) —
            nothing in the world is created after this.
        planted_core_size: when > 0, plant a "hateful core" of exactly
            this many prolific, highly toxic, mutually following users
            (the §4.5 analysis finds 42 at full scale; 0 disables
            planting for small worlds whose marginals it would distort).
        core_components: number of mutual-follow components the planted
            core forms (paper: 6).
        core_giant_size: size of the core's giant component (paper: 32).
        baseline_sample_cap: maximum number of baseline comments to
            materialise as text per dataset; Table 3 counts are nominal,
            Perspective scoring uses this sample.
        comment_activity_alpha: Pareto shape of per-user comment counts
            (smaller = heavier tail; calibrated so ~14% of active users
            produce ~90% of comments, Fig. 3).
        follow_gamma: preferential-attachment strength of the follower
            graph (degree distributions must fit a power law, Fig. 9a).
        mean_comment_tokens: mean comment length in tokens.
        fault_timeout_rate / fault_error_rate: transport fault injection
            for crawler-resilience realism.
    """

    scale: float = 0.01
    seed: int = 2020
    planted_core_size: int = 0
    core_components: int = 6
    core_giant_size: int = 32
    baseline_sample_cap: int = 4000
    epoch_gab: float = 1_470_000_000.0        # 2016-07-31
    epoch_dissenter: float = 1_551_000_000.0  # 2019-02-24
    crawl_time: float = 1_588_200_000.0       # 2020-04-30
    comment_activity_alpha: float = 0.8
    follow_gamma: float = 1.0
    mean_comment_tokens: float = 16.0
    fault_timeout_rate: float = 0.01
    fault_error_rate: float = 0.01
    paper: PaperConstants = field(default_factory=PaperConstants)

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ValueError("scale must be positive")
        if not self.epoch_gab < self.epoch_dissenter < self.crawl_time:
            raise ValueError("epochs must be ordered gab < dissenter < crawl")

    def scaled(self, full_count: int, minimum: int = 1) -> int:
        """A paper population size at this world's scale."""
        return max(minimum, int(round(full_count * self.scale)))

    @property
    def n_gab_accounts(self) -> int:
        return self.scaled(self.paper.gab_accounts, minimum=50)

    @property
    def n_dissenter_users(self) -> int:
        return self.scaled(self.paper.dissenter_users, minimum=20)

    @property
    def n_comments(self) -> int:
        return self.scaled(self.paper.comments, minimum=100)

    @property
    def n_urls(self) -> int:
        return self.scaled(self.paper.distinct_urls, minimum=50)
