"""The Dissenter platform state: users, comments, replies, shadow content.

Builds the Dissenter side of the world from the Gab universe and the URL
universe, calibrated to the paper's §4 measurements:

* 77% of users join in the first full month (Fig. 2's Dissenter analogue),
* 47% of users are active (≥1 comment),
* per-user comment counts follow a heavy-tailed distribution in which the
  top ~14% of active users contribute ~90% of comments (Fig. 3),
* Table 1 user-flag and view-filter frequencies, including exactly two
  isAdmin accounts (@a and @shadowknight412), zero moderators, and a
  handful of bans,
* ~0.6% of comments NSFW-labelled, ~0.5% platform-labelled "offensive",
  both hidden from non-opted-in viewers (§2.2's shadow overlay),
* 94% English / 2% German comments (with the fringe German domain getting
  German threads),
* one pathological >90k-character comment ("ha" repeated 45k times, §3.2),
* comment trees with unbounded reply depth, and
* the planted hateful core's members made prolific and toxic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.platform.config import WorldConfig
from repro.platform.entities import (
    Comment,
    CommentUrl,
    DissenterUser,
    USER_FLAG_NAMES,
)
from repro.platform.gab import GabUniverse
from repro.platform.ids import ObjectIdFactory
from repro.platform.latent import (
    sample_comment_latent,
    sample_nsfw_latent,
    sample_offensive_latent,
    sample_user_toxicity_mean,
)
from repro.platform.textgen import CommentTextGenerator
from repro.platform.urlgen import UrlUniverse

__all__ = ["DissenterState", "build_dissenter_state"]

# Table 1 frequencies over active users (n = 47,165).
FLAG_FREQUENCIES: dict[str, float] = {
    "canLogin": 0.9997,
    "canPost": 0.9997,
    "canReport": 0.9999,
    "canChat": 0.9997,
    "canVote": 0.9997,
    "is_pro": 0.0267,
    "is_donor": 0.0084,
    "is_investor": 0.0029,
    "is_premium": 0.0013,
    "is_tippable": 0.0015,
    "is_private": 0.0390,
    "verified": 0.0103,
}

FILTER_FREQUENCIES: dict[str, float] = {
    "pro": 0.9985,
    "verified": 0.9987,
    "standard": 0.9989,
    "nsfw": 0.1504,
    "offensive": 0.0733,
}

NSFW_COMMENT_RATE = 10_000 / 1_680_000
OFFENSIVE_COMMENT_RATE = 8_000 / 1_680_000
REPLY_FRACTION = 0.35

# User-level language weights; the comment-level mix lands near the
# paper's 94% English / 2% German once the German fringe domain's threads
# are added (language varies hugely with seed at small scales because a
# handful of non-English users dominate their language's comment count).
LANGUAGE_MIX: tuple[tuple[str, float], ...] = (
    ("en", 0.93), ("de", 0.03), ("fr", 0.012), ("es", 0.010), ("it", 0.008),
)


@dataclass
class DissenterState:
    """Ground truth of the Dissenter platform."""

    users: list[DissenterUser]
    comments: list[Comment]
    urls: UrlUniverse
    users_by_author_id: dict[str, DissenterUser] = field(default_factory=dict)
    users_by_username: dict[str, DissenterUser] = field(default_factory=dict)
    comments_by_url: dict[str, list[Comment]] = field(default_factory=dict)
    comments_by_author: dict[str, list[Comment]] = field(default_factory=dict)
    planted_core_plan: list[list[int]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.users_by_author_id:
            self.users_by_author_id = {u.author_id.hex: u for u in self.users}
            self.users_by_username = {u.username: u for u in self.users}
            for comment in self.comments:
                self.comments_by_url.setdefault(
                    comment.commenturl_id.hex, []
                ).append(comment)
                self.comments_by_author.setdefault(
                    comment.author_id.hex, []
                ).append(comment)

    def active_users(self) -> list[DissenterUser]:
        """Users with at least one comment or reply."""
        return [
            u for u in self.users if u.author_id.hex in self.comments_by_author
        ]

    def visible_comments(self, url_id: str, nsfw: bool = False,
                         offensive: bool = False) -> list[Comment]:
        """Comments on a URL visible under the given view settings."""
        result = []
        for comment in self.comments_by_url.get(url_id, []):
            if comment.nsfw and not nsfw:
                continue
            if comment.offensive and not offensive:
                continue
            result.append(comment)
        return result


def _join_time(config: WorldConfig, rng: np.random.Generator,
               gab_created: float) -> float:
    """Dissenter account creation time: ~77% within the first full month.

    Only Gab accounts that already exist when the launch window closes can
    join it, so the in-window probability is inflated to 0.85 — combined
    with the Gab generator's pre-launch skew of Dissenter adopters, the
    user-level fraction lands on the paper's 77%.
    """
    launch = config.epoch_dissenter
    first_month_end = launch + 35 * 86_400
    if gab_created < first_month_end - 3600 and rng.random() < 0.85:
        t = launch + rng.random() * (first_month_end - launch)
    else:
        t = first_month_end + rng.random() * (
            config.crawl_time - first_month_end - 86_400
        )
    # Cannot predate the user's Gab account.
    return max(t, gab_created + 60.0)


def _assign_flags(rng: np.random.Generator, username: str) -> dict[str, bool]:
    flags = {name: False for name in USER_FLAG_NAMES}
    for name, rate in FLAG_FREQUENCIES.items():
        flags[name] = bool(rng.random() < rate)
    flags["isAdmin"] = username in ("a", "shadowknight412")
    flags["isModerator"] = False
    flags["isBanned"] = False  # assigned to a fixed count afterwards
    return flags


def _assign_filters(rng: np.random.Generator) -> dict[str, bool]:
    return {
        name: bool(rng.random() < rate)
        for name, rate in FILTER_FREQUENCIES.items()
    }


def _plan_core_components(config: WorldConfig) -> list[int]:
    """Component sizes for the planted core, e.g. 42 -> [32, 2, 2, 2, 2, 2]."""
    total = config.planted_core_size
    if total <= 0:
        return []
    giant = min(config.core_giant_size, total)
    remaining = total - giant
    n_small = max(0, config.core_components - 1)
    if n_small == 0 or remaining <= 0:
        return [giant] + ([remaining] if remaining > 0 else [])
    sizes = [giant]
    base = max(2, remaining // n_small)
    for i in range(n_small):
        size = base if i < n_small - 1 else remaining - base * (n_small - 1)
        if size > 0:
            sizes.append(size)
    return sizes


def build_dissenter_state(
    config: WorldConfig,
    rng: np.random.Generator,
    gab: GabUniverse,
    urls: UrlUniverse,
    ids: ObjectIdFactory,
    textgen: CommentTextGenerator,
) -> DissenterState:
    """Generate the complete Dissenter platform state."""
    users = _build_users(config, rng, gab, ids, textgen)
    core_plan = _plant_core(config, rng, users)
    comments = _build_comments(config, rng, users, urls, ids, textgen)
    return DissenterState(
        users=users,
        comments=comments,
        urls=urls,
        planted_core_plan=core_plan,
    )


def _build_users(
    config: WorldConfig,
    rng: np.random.Generator,
    gab: GabUniverse,
    ids: ObjectIdFactory,
    textgen: CommentTextGenerator,
) -> list[DissenterUser]:
    users: list[DissenterUser] = []
    for account in gab.dissenter_accounts():
        joined = _join_time(config, rng, account.created_at)
        mentions_censorship = rng.random() < 0.25
        language = "en"
        roll = rng.random()
        cumulative = 0.0
        for lang, weight in LANGUAGE_MIX:
            cumulative += weight / sum(w for _, w in LANGUAGE_MIX)
            if roll < cumulative:
                language = lang
                break
        users.append(
            DissenterUser(
                author_id=ids.mint(joined),
                gab_id=account.gab_id,
                username=account.username,
                display_name=account.display_name,
                created_at=joined,
                bio=textgen.generate_bio(mentions_censorship),
                language=language,
                flags=_assign_flags(rng, account.username),
                view_filters=_assign_filters(rng),
                toxicity_mean=sample_user_toxicity_mean(rng),
                # Comment count the user will produce if active.  The
                # distribution is scale-free (per-user activity does not
                # depend on world scale): mean ~36 comments per active
                # user, heavy tail capped at 4,000 ("posting thousands of
                # comments in little over a year", §4.1.1), calibrated so
                # the top ~14% of active users hold ~90% of comments.
                activity_weight=float(np.ceil(min(
                    2.2 * (rng.pareto(config.comment_activity_alpha) + 0.08),
                    4000.0,
                ))),
                gab_deleted=account.is_deleted,
            )
        )
    # Non-English users are casual participants: Dissenter is an
    # anglophone platform, and capping foreign-language activity keeps the
    # comment-level language mix near the paper's 94% English / 2% German
    # even at small scales (one hyperactive foreign user would otherwise
    # dominate their language's count).
    for user in users:
        if user.language != "en" and user.activity_weight > 20:
            user.activity_weight = float(rng.integers(3, 21))

    # Mega-posters (1,000+ comments) are spammy rather than hateful — the
    # paper's hateful core sits at the ~100-1,000 comment range and its
    # most prolific users are not its most toxic (§4.5).  Keeping the very
    # top of the activity tail out of the high-toxicity cluster also keeps
    # the corpus-level toxicity marginal stable across seeds.
    for user in users:
        if user.activity_weight >= 1000 and user.toxicity_mean > 0.40:
            user.toxicity_mean = float(0.5 * rng.beta(1.3, 10.0))

    # Fixed-count bans (paper: 8 accounts at full scale).
    n_banned = config.scaled(config.paper.banned_users, minimum=1)
    candidates = [u for u in users if not u.flags["isAdmin"]]
    for user in rng.choice(np.asarray(candidates, dtype=object),
                           size=min(n_banned, len(candidates)), replace=False):
        user.flags["isBanned"] = True
        user.flags["canLogin"] = False
        user.flags["canPost"] = False
    return users


def _plant_core(
    config: WorldConfig, rng: np.random.Generator, users: list[DissenterUser]
) -> list[list[int]]:
    """Mark core members toxic & prolific; return the component plan."""
    sizes = _plan_core_components(config)
    if not sizes:
        return []
    total = sum(sizes)
    eligible = [u for u in users if not u.gab_deleted and not u.flags["isBanned"]]
    if len(eligible) < total:
        raise ValueError(
            f"cannot plant a {total}-user core in a world with "
            f"{len(eligible)} eligible users; increase scale"
        )
    chosen = list(rng.choice(np.asarray(eligible, dtype=object),
                             size=total, replace=False))
    plan: list[list[int]] = []
    cursor = 0
    for size in sizes:
        group = chosen[cursor:cursor + size]
        cursor += size
        for user in group:
            user.in_planted_core = True
            user.toxicity_mean = float(0.45 + 0.35 * rng.beta(2.0, 2.0))
            user.activity_weight = float(110 + rng.pareto(1.5) * 40)
            # Core members write English: foreign-language comments carry
            # no toxic vocabulary, which would break the median-toxicity
            # criterion for a planted member.
            user.language = "en"
        plan.append([u.gab_id for u in group])
    return plan


def _build_comments(
    config: WorldConfig,
    rng: np.random.Generator,
    users: list[DissenterUser],
    urls: UrlUniverse,
    ids: ObjectIdFactory,
    textgen: CommentTextGenerator,
) -> list[Comment]:
    # --- choose the active users; each posts its pre-drawn count ----------
    active_fraction = config.paper.active_user_fraction
    is_active = rng.random(len(users)) < active_fraction
    # Core members are always active.
    for index, user in enumerate(users):
        if user.in_planted_core:
            is_active[index] = True
    active = [u for u, flag in zip(users, is_active) if flag]
    if not active:
        active = [users[0]]

    url_probs = urls.weights / urls.weights.sum()
    url_list = urls.urls

    comments: list[Comment] = []
    for user in active:
        user.became_active = True
        count = max(1, int(user.activity_weight))
        url_picks = rng.choice(len(url_list), size=count, p=url_probs)
        for pick in url_picks:
            url = url_list[int(pick)]
            comments.append(_make_comment(
                config, rng, user, url, urls, ids, textgen,
            ))

    # --- thread structure: convert a fraction into replies ----------------
    by_url: dict[str, list[int]] = {}
    for index, comment in enumerate(comments):
        by_url.setdefault(comment.commenturl_id.hex, []).append(index)
    for indices in by_url.values():
        if len(indices) < 2:
            continue
        ordered = sorted(indices, key=lambda i: comments[i].created_at)
        for position in range(1, len(ordered)):
            if rng.random() < REPLY_FRACTION:
                child = comments[ordered[position]]
                parent_pos = int(rng.integers(0, position))
                child.parent_comment_id = comments[ordered[parent_pos]].comment_id

    # --- the pathological mega-comment (§3.2) ------------------------------
    youtube_urls = [u for u in url_list if u.category == "youtube"]
    if youtube_urls and comments:
        target_url = youtube_urls[int(rng.integers(0, len(youtube_urls)))]
        author = active[int(rng.integers(0, len(active)))]
        mega = _make_comment(config, rng, author, target_url, urls, ids, textgen)
        mega.text = "ha " * 45_000
        mega.nsfw = False
        mega.offensive = False
        comments.append(mega)

    comments.sort(key=lambda c: c.created_at)
    return comments


def _make_comment(
    config: WorldConfig,
    rng: np.random.Generator,
    user: DissenterUser,
    url: CommentUrl,
    urls: UrlUniverse,
    ids: ObjectIdFactory,
    textgen: CommentTextGenerator,
) -> Comment:
    created = url.first_seen + rng.random() * max(
        60.0, config.crawl_time - url.first_seen - 60.0
    )
    created = max(created, user.created_at + 30.0)

    roll = rng.random()
    nsfw = roll < NSFW_COMMENT_RATE
    offensive = NSFW_COMMENT_RATE <= roll < NSFW_COMMENT_RATE + OFFENSIVE_COMMENT_RATE

    if offensive:
        latent = sample_offensive_latent(rng)
    elif nsfw:
        latent = sample_nsfw_latent(rng)
    else:
        latent = sample_comment_latent(rng, user.toxicity_mean, url)

    language = urls.language_hints.get(url.commenturl_id.hex, user.language)
    text = textgen.generate(latent, language=language)
    return Comment(
        comment_id=ids.mint(created),
        author_id=user.author_id,
        commenturl_id=url.commenturl_id,
        created_at=created,
        text=text,
        nsfw=nsfw,
        offensive=offensive,
        language=language,
        latent=latent,
    )
