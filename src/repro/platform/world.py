"""World assembly: one seed, one complete universe.

``build_world`` wires every generator together in a fixed order with
derived RNG streams, so a :class:`WorldConfig` fully determines the world.
The result bundles ground truth for all subsystems; the HTTP face of the
world is built separately by :mod:`repro.platform.apps`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.platform.config import WorldConfig
from repro.platform.dissenter import DissenterState, build_dissenter_state
from repro.platform.gab import GabUniverse, build_gab_universe
from repro.platform.ids import ObjectIdFactory
from repro.platform.newssites import NewsCorpora, build_news_corpora
from repro.platform.reddit import RedditUniverse, build_reddit_universe
from repro.platform.socialgraph import SocialGraph, build_social_graph
from repro.platform.textgen import CommentTextGenerator
from repro.platform.urlgen import UrlUniverse, build_url_universe
from repro.platform.youtube_site import YouTubeUniverse, build_youtube_universe

__all__ = ["World", "build_world"]


@dataclass
class World:
    """Everything the synthetic universe contains."""

    config: WorldConfig
    gab: GabUniverse
    urls: UrlUniverse
    dissenter: DissenterState
    youtube: YouTubeUniverse
    social: SocialGraph
    reddit: RedditUniverse
    news: NewsCorpora

    def summary(self) -> dict[str, int]:
        """Headline sizes (handy in logs and reports)."""
        return {
            "gab_accounts": len(self.gab.accounts),
            "dissenter_users": len(self.dissenter.users),
            "active_users": len(self.dissenter.active_users()),
            "comments": len(self.dissenter.comments),
            "urls": len(self.urls.urls),
            "youtube_items": len(self.youtube.items),
            "reddit_accounts": len(self.reddit.accounts),
        }


def build_world(config: WorldConfig | None = None) -> World:
    """Build a complete world from a configuration.

    Sub-generators receive independent RNG streams derived from the master
    seed, so changing one subsystem's draws never perturbs another's.
    """
    config = config or WorldConfig()
    master = np.random.SeedSequence(config.seed)
    streams = master.spawn(8)
    rng = [np.random.default_rng(s) for s in streams]

    ids = ObjectIdFactory(config.seed)
    textgen = CommentTextGenerator(rng[0], mean_tokens=config.mean_comment_tokens)

    gab = build_gab_universe(config, rng[1])
    urls = build_url_universe(config, rng[2], ids, textgen)
    dissenter = build_dissenter_state(config, rng[3], gab, urls, ids, textgen)
    youtube = build_youtube_universe(urls, rng[4], textgen)
    social = build_social_graph(
        gab, rng[5], planted_core=dissenter.planted_core_plan or None
    )
    reddit = build_reddit_universe(config, rng[6], dissenter.users, textgen)
    news = build_news_corpora(config, rng[7], textgen)

    return World(
        config=config,
        gab=gab,
        urls=urls,
        dissenter=dissenter,
        youtube=youtube,
        social=social,
        reddit=reddit,
        news=news,
    )
