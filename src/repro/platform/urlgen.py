"""The commented-URL universe (Table 2, §4.2).

Generates the population of URLs Dissenter users comment on, calibrated to
the paper's observed mix: youtube.com 20.75% of URLs, twitter.com 6.87%,
then news sites; 78% .com / 7.5% .uk TLDs; 97% HTTPS / 2% HTTP plus
browser-scheme and ``file://`` oddities; 400 protocol-only duplicate pairs
and 60 trailing-slash duplicates; multi-parameter GET query strings; and a
couple of fringe domains that attract enormous per-URL comment volume (the
paper's thewatcherfiles.com and deutschland.de examples).

Each URL also gets an Allsides-style bias label (news domains only) and a
latent popularity weight used to allocate comments.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.platform.config import WorldConfig
from repro.platform.entities import CommentUrl
from repro.platform.ids import ObjectIdFactory
from repro.platform.textgen import CommentTextGenerator

__all__ = ["ALLSIDES_BIAS", "DOMAIN_MIX", "UrlUniverse", "build_url_universe"]

# (domain, fraction of URLs, category).  Fractions follow Table 2, except
# YouTube which is deliberately over-provisioned in the *universe*: YouTube
# URLs carry low comment-allocation weights (median volume 1, §4.2.1), so
# only ~2/3 as many of them are ever discovered through comments; the
# inflation makes the *discovered* mix land on Table 2's 22%.  The
# remainder of the universe is a generated long tail.
DOMAIN_MIX: tuple[tuple[str, float, str], ...] = (
    ("youtube.com", 0.282, "youtube"),
    ("twitter.com", 0.0687, "social"),
    ("breitbart.com", 0.0403, "news"),
    ("bbc.co.uk", 0.0276, "news"),
    ("dailymail.co.uk", 0.0268, "news"),
    ("foxnews.com", 0.0208, "news"),
    ("bitchute.com", 0.0206, "video"),
    ("zerohedge.com", 0.0147, "news"),
    ("theguardian.com", 0.0136, "news"),
    ("youtu.be", 0.018, "youtube"),
    ("nytimes.com", 0.0110, "news"),
    ("facebook.com", 0.0080, "social"),
    ("washingtontimes.com", 0.0070, "news"),
    ("cnn.com", 0.0065, "news"),
    ("reuters.com", 0.0050, "news"),
    ("gab.com", 0.0045, "social"),
    ("thehill.com", 0.0040, "news"),
    ("nypost.com", 0.0040, "news"),
    ("huffpost.com", 0.0035, "news"),
    ("vox.com", 0.0030, "news"),
    ("dailycaller.com", 0.0030, "news"),
    ("apnews.com", 0.0025, "news"),
    ("washingtonexaminer.com", 0.0025, "news"),
    ("msnbc.com", 0.0020, "news"),
    ("wsj.com", 0.0020, "news"),
)

# Allsides-style media bias assignments for ranked (news) domains.
ALLSIDES_BIAS: dict[str, str] = {
    "huffpost.com": "left",
    "vox.com": "left",
    "msnbc.com": "left",
    "cnn.com": "left",
    "theguardian.com": "left-center",
    "nytimes.com": "left-center",
    "bbc.co.uk": "center",
    "reuters.com": "center",
    "apnews.com": "center",
    "thehill.com": "center",
    "wsj.com": "right-center",
    "nypost.com": "right-center",
    "dailymail.co.uk": "right-center",
    "washingtonexaminer.com": "right-center",
    "breitbart.com": "right",
    "foxnews.com": "right",
    "zerohedge.com": "right",
    "dailycaller.com": "right",
    "washingtontimes.com": "right",
}

# Fringe domains: tiny URL count, enormous per-URL comment volume (§4.2.1).
FRINGE_DOMAINS: tuple[tuple[str, str], ...] = (
    ("thewatcherfiles.com", "en"),
    ("deutschland.de", "de"),
)

# Long-tail TLD weights for generated domains, chosen so the overall TLD
# mix lands near Table 2 once the fixed domains above are accounted for.
_TAIL_TLDS: tuple[tuple[str, float], ...] = (
    (".com", 0.62), (".uk", 0.10), (".org", 0.08), (".de", 0.045),
    (".be", 0.032), (".au", 0.030), (".ca", 0.024), (".net", 0.021),
    (".nz", 0.013), (".no", 0.013), (".info", 0.01), (".ru", 0.01),
    (".fr", 0.01), (".it", 0.008), (".nl", 0.008), (".se", 0.008),
    (".us", 0.008),
)

_SYLLABLES = (
    "news", "daily", "true", "real", "patriot", "liberty", "eagle",
    "free", "press", "report", "wire", "post", "times", "herald",
    "tribune", "gazette", "journal", "watch", "alert", "insider",
    "chronicle", "observer", "dispatch", "monitor", "beacon", "ledger",
)


@dataclass
class UrlUniverse:
    """All commented URLs plus latent comment-allocation weights."""

    urls: list[CommentUrl]
    weights: np.ndarray                      # unnormalised popularity
    language_hints: dict[str, str]           # commenturl_id.hex -> language
    protocol_duplicate_pairs: int
    trailing_slash_duplicate_pairs: int

    def __post_init__(self) -> None:
        if len(self.urls) != self.weights.shape[0]:
            raise ValueError("weights must align with urls")

    def by_id(self) -> dict[str, CommentUrl]:
        return {u.commenturl_id.hex: u for u in self.urls}


def _random_slug(rng: np.random.Generator, n: int = 3) -> str:
    return "-".join(str(rng.choice(np.asarray(_SYLLABLES))) for _ in range(n))


def _random_video_id(rng: np.random.Generator) -> str:
    alphabet = np.asarray(list("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_-"))
    return "".join(str(c) for c in rng.choice(alphabet, size=11))


def _tail_domain(rng: np.random.Generator, used: set[str]) -> str:
    tlds, probs = zip(*_TAIL_TLDS)
    probs_arr = np.asarray(probs) / np.sum(probs)
    while True:
        tld = str(np.asarray(tlds)[rng.choice(len(tlds), p=probs_arr)])
        name = "".join(
            str(rng.choice(np.asarray(_SYLLABLES)))
            for _ in range(int(rng.integers(2, 4)))
        )
        domain = name + (".co.uk" if tld == ".uk" else tld)
        if domain not in used:
            used.add(domain)
            return domain


def _path_for(rng: np.random.Generator, domain: str, category: str) -> str:
    if category == "youtube":
        if domain == "youtu.be":
            return f"/{_random_video_id(rng)}"
        roll = rng.random()
        if roll < 0.976:
            return f"/watch?v={_random_video_id(rng)}"
        if roll < 0.992:
            return f"/channel/UC{_random_video_id(rng)}"
        return f"/user/{_random_slug(rng, 1)}{int(rng.integers(1, 999))}"
    if domain == "twitter.com":
        return f"/{_random_slug(rng, 1)}/status/{int(rng.integers(10**17, 10**18))}"
    year = int(rng.integers(2018, 2021))
    month = int(rng.integers(1, 13))
    path = f"/{year}/{month:02d}/{_random_slug(rng)}"
    # Many URLs carry multi-parameter GET queries (§4.2.1's over-counting
    # discussion).
    if rng.random() < 0.12:
        path += f"?utm_source={_random_slug(rng, 1)}&utm_medium=social"
    elif rng.random() < 0.05:
        path += f"?id={int(rng.integers(1, 10**6))}"
    return path


def _bias_for(domain: str, category: str) -> str:
    if category == "news":
        return ALLSIDES_BIAS.get(domain, "not-ranked")
    return "not-ranked"


def _draw_votes(rng: np.random.Generator) -> tuple[int, int]:
    """Vote counts per §4.3.2: ~71% of URLs have zero votes; 99% of net
    scores lie in (-10, 10); positive nets outnumber negative ~1.6:1."""
    roll = rng.random()
    if roll < 0.714:
        return 0, 0
    magnitude = 1 + int(rng.geometric(0.45))
    spread = int(rng.geometric(0.7)) - 1
    if roll < 0.823:  # negative-net URL (64k/588k)
        down = magnitude + max(0, spread)
        up = max(0, spread)
        return up, down
    up = magnitude + max(0, spread)
    down = max(0, spread)
    return up, down


def build_url_universe(
    config: WorldConfig,
    rng: np.random.Generator,
    ids: ObjectIdFactory,
    textgen: CommentTextGenerator,
) -> UrlUniverse:
    """Generate the full URL population for a world.

    Comment-allocation weights are Zipf-like overall, with YouTube URLs
    damped (their median comment volume is 1 in the paper) and the fringe
    domains boosted to the top of the per-URL volume ranking.
    """
    n_urls = config.n_urls
    domains, fractions, categories = zip(*DOMAIN_MIX)
    fixed_fraction = float(np.sum(fractions))

    urls: list[CommentUrl] = []
    weights: list[float] = []
    language_hints: dict[str, str] = {}
    used_domains: set[str] = set(domains)

    def first_seen() -> float:
        # Growth-weighted: most URLs enter early (the platform's burst).
        u = rng.random()
        return config.epoch_dissenter + (u ** 1.6) * (
            config.crawl_time - config.epoch_dissenter - 3600
        )

    def base_weight(category: str) -> float:
        # Heavy-tailed popularity, capped so no organic URL outranks the
        # fringe URLs' ~110-comment volume (the paper's per-URL maximum).
        if category == "youtube":
            # Most videos attract a single comment (median volume 1), a
            # minority go viral — which is how 22% of URLs carry 26% of
            # comments.
            w = 0.45
            if rng.random() < 0.15:
                w += float(min(rng.pareto(0.8) * 3.0, 60.0))
            return w
        return float(min(rng.pareto(1.1) + 0.2, 25.0))

    def add_url(
        url: str, category: str, bias: str, language: str = "en",
        weight: float | None = None,
    ) -> CommentUrl:
        record = CommentUrl(
            commenturl_id=ids.mint(first_seen()),
            url=url,
            title=textgen.generate_title() if category != "youtube" else "/watch",
            description=(
                textgen.generate_title(10) if category != "youtube" else ""
            ),
            category=category,
            bias=bias,
            first_seen=0.0,  # set below from the minted id
            controversy=float(rng.beta(1.4, 4.0)),
        )
        record.first_seen = float(record.commenturl_id.timestamp)
        record.upvotes, record.downvotes = _draw_votes(rng)
        urls.append(record)
        weights.append(weight if weight is not None else base_weight(category))
        if language != "en":
            language_hints[record.commenturl_id.hex] = language
        return record

    # --- Fixed-mix domains -------------------------------------------------
    fraction_arr = np.asarray(fractions) / fixed_fraction
    n_fixed = int(round(n_urls * fixed_fraction))
    picks = rng.choice(len(domains), size=n_fixed, p=fraction_arr)
    for pick in picks:
        domain, category = domains[pick], categories[pick]
        path = _path_for(rng, domain, category)
        scheme = "https" if rng.random() < 0.985 else "http"
        add_url(f"{scheme}://{domain}{path}", category, _bias_for(domain, category))

    # --- Fringe high-volume URLs -------------------------------------------
    # Weight placeholder 0; fixed up after the universe is complete so that
    # each fringe URL expects ~110 comments (the paper's thewatcherfiles.com
    # observation: 116 comments on a single URL), independent of scale.
    fringe_indices: list[int] = []
    for domain, language in FRINGE_DOMAINS:
        add_url(
            f"https://{domain}/{_random_slug(rng)}",
            "other",
            "not-ranked",
            language=language,
            weight=0.0,
        )
        fringe_indices.append(len(urls) - 1)

    # --- Scheme oddities (absolute counts, scaled).  Dissenter anchors a
    # thread to *any* string a user submits, so file:// and chrome:// URLs
    # exist as thread anchors even though they were never fetchable (§6).
    for _ in range(config.scaled(13, minimum=1)):
        add_url(
            f"file:///C:/Users/{_random_slug(rng, 1)}/Documents/{_random_slug(rng, 2)}.pdf",
            "file", "not-ranked", weight=0.05,
        )
    browser_pages = np.asarray(["startpage", "newtab", "settings", "extensions"])
    for _ in range(config.scaled(200, minimum=1)):
        add_url(
            f"chrome://{str(rng.choice(browser_pages))}/",
            "browser", "not-ranked", weight=0.05,
        )

    # --- Long tail -----------------------------------------------------------
    while len(urls) < n_urls:
        domain = _tail_domain(rng, used_domains)
        category = "news" if rng.random() < 0.7 else "other"
        scheme = "https" if rng.random() < 0.97 else "http"
        add_url(
            f"{scheme}://{domain}{_path_for(rng, domain, category)}",
            category,
            "not-ranked",
        )

    # --- Deliberate duplicates (§4.2.1) --------------------------------------
    protocol_dups = config.scaled(400, minimum=2)
    slash_dups = config.scaled(60, minimum=1)
    https_urls = [u for u in urls if u.url.startswith("https://")]
    dup_sources = rng.choice(
        len(https_urls), size=min(len(https_urls), protocol_dups + slash_dups),
        replace=False,
    )
    for index, source in enumerate(dup_sources):
        original = https_urls[int(source)]
        if index < protocol_dups:
            dup_url = "http://" + original.url[len("https://"):]
        else:
            dup_url = (
                original.url[:-1] if original.url.endswith("/")
                else original.url + "/"
            )
        add_url(dup_url, original.category, original.bias, weight=0.1)

    # --- Fringe weight fix-up -------------------------------------------------
    # E[comments for url i] = n_comments * w_i / W_total; solve for the
    # weight that puts ~110 expected comments on each fringe URL.
    weights_arr = np.asarray(weights, dtype=float)
    target_comments = 110.0
    n_comments = config.n_comments
    other_weight = float(weights_arr.sum())
    denom = n_comments - target_comments * len(fringe_indices)
    if denom > 0:
        fringe_weight = target_comments * other_weight / denom
        for index in fringe_indices:
            weights_arr[index] = fringe_weight

    return UrlUniverse(
        urls=urls,
        weights=weights_arr,
        language_hints=language_hints,
        protocol_duplicate_pairs=protocol_dups,
        trailing_slash_duplicate_pairs=slash_dups,
    )
