"""The synthetic Reddit / Pushshift baseline (§4.4.1, Table 3, Fig. 6).

The paper matches Dissenter usernames against Reddit accounts (56% match,
with acknowledged false positives at a prior-work precision floor of 0.6)
and pulls the matched accounts' full comment histories from Pushshift.

This generator creates that population: for each Dissenter username, a
Reddit account exists with probability 0.56; each such account is *truly*
the same person with probability ~0.7 (the rest are username collisions —
latent ground truth the analysis never sees, matching the paper's caveat).
Per-account comment counts are heavy-tailed, and the Dissenter-vs-Reddit
usage split is calibrated to Fig. 6: among users who commented on at least
one platform, over a third are Dissenter-exclusive and about 20% are
Reddit-exclusive.

Comment *text* is materialised lazily up to ``baseline_sample_cap`` so the
Perspective pipeline has a scoring sample, while Table 3 reports nominal
counts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.platform.config import WorldConfig
from repro.platform.entities import DissenterUser, RedditAccount
from repro.platform.latent import DATASET_PROFILES, sample_baseline_latent
from repro.platform.textgen import CommentTextGenerator

__all__ = ["RedditUniverse", "build_reddit_universe"]

MATCH_RATE = 0.56          # §4.4.1
TRUE_PERSON_RATE = 0.7     # above the 0.6 precision lower bound of [23]
# P(matched Reddit account has >= 1 comment), conditioned on whether the
# Dissenter side of the user ever commented.  Calibrated so that, among
# ratio-defined users (Fig. 6), >1/3 are Dissenter-exclusive and ~20%
# Reddit-exclusive: active Dissenter users usually abandoned Reddit.
REDDIT_COMMENTER_RATE_ACTIVE = 0.475
REDDIT_COMMENTER_RATE_INACTIVE = 0.222


@dataclass
class RedditUniverse:
    """Reddit accounts matching Dissenter usernames."""

    accounts: dict[str, RedditAccount]       # keyed by username
    nominal_total_comments: int              # Table 3 headline count

    def matched_usernames(self) -> list[str]:
        return sorted(self.accounts)

    def commenters(self) -> list[RedditAccount]:
        return [a for a in self.accounts.values() if a.n_comments > 0]


def build_reddit_universe(
    config: WorldConfig,
    rng: np.random.Generator,
    users: list[DissenterUser],
    textgen: CommentTextGenerator,
) -> RedditUniverse:
    """Generate Reddit accounts for the username-matching analysis."""
    profile = DATASET_PROFILES["reddit"]
    accounts: dict[str, RedditAccount] = {}
    text_budget = config.baseline_sample_cap

    for user in users:
        if rng.random() >= MATCH_RATE:
            continue
        commenter_rate = (
            REDDIT_COMMENTER_RATE_ACTIVE
            if user.became_active
            else REDDIT_COMMENTER_RATE_INACTIVE
        )
        if rng.random() >= commenter_rate:
            n_comments = 0   # parked / lurker account
        else:
            n_comments = int(rng.pareto(0.8) * 20) + 1
        comments: list[str] = []
        n_texts = min(n_comments, 5)
        if text_budget > 0 and n_texts > 0:
            n_texts = min(n_texts, text_budget)
            text_budget -= n_texts
            for _ in range(n_texts):
                latent = sample_baseline_latent(rng, profile)
                comments.append(textgen.generate(latent))
        accounts[user.username] = RedditAccount(
            username=user.username,
            n_comments=n_comments,
            is_dissenter_person=bool(rng.random() < TRUE_PERSON_RATE),
            comments=comments,
        )

    nominal = config.scaled(config.paper.reddit_comments, minimum=100)
    return RedditUniverse(accounts=accounts, nominal_total_comments=nominal)
