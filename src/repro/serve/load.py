"""Deterministic load generator for the serve API.

Simulates N users hammering the read API with the same calibrated
power-law shapes the platform generator uses: per-user activity follows
``pareto(comment_activity_alpha) + 0.08`` (the §4 comment-concentration
calibration) and per-URL popularity follows ``pareto(1.1) + 0.2`` (the
URL generator's popularity draw).  Everything — which user issues which
request against which resource, the think-time gaps between requests,
the 404-probing misses — is pre-sampled from one seeded generator, so
two runs with the same seed produce byte-identical request logs, latency
histograms, and cache counters.

Latency is virtual: the transport charges wire latency and the app
charges render costs against the shared :class:`~repro.net.clock.
VirtualClock`, so ``requests/sec`` and the p50/p99 below are simulation
metrics, reproducible bit-for-bit on any host.  Wall-clock throughput is
a property of the machine and is reported separately by the benchmark.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.net.http import Request, url_with_params
from repro.net.transport import LoopbackTransport
from repro.serve.api import ServeApp

__all__ = ["LoadGenerator", "LoadReport"]

#: Endpoint mix: (tag, weight).  Tags drive URL construction below.
ENDPOINT_MIX = (
    ("thread", 0.45),
    ("user", 0.20),
    ("summary_url", 0.15),
    ("summary_user", 0.10),
    ("url_lookup", 0.05),
    ("core", 0.03),
    ("core_member", 0.02),
)

#: Fraction of requests aimed at identifiers that do not exist, so the
#: 404 path (and its cacheability) is always exercised.
MISS_PROBABILITY = 0.01

#: Virtual-latency histogram bin edges (seconds); the last bin is open.
HISTOGRAM_EDGES = (0.05, 0.06, 0.08, 0.10, 0.15, 0.25, 0.50, 1.00)


def _ecdf_quantile(ordered: np.ndarray, q: float) -> float:
    """ECDF quantile: sorted array indexed at ``ceil(q*n) - 1``."""
    n = ordered.size
    if n == 0:
        return 0.0
    return float(ordered[max(0, math.ceil(q * n) - 1)])


@dataclass
class LoadReport:
    """Everything one load run measured (all virtual, all deterministic)."""

    users: int
    requests: int
    status_counts: dict[int, int] = field(default_factory=dict)
    cache_dispositions: dict[str, int] = field(default_factory=dict)
    throttled_retries: int = 0
    gave_up_throttled: int = 0
    virtual_seconds: float = 0.0
    p50: float = 0.0
    p99: float = 0.0
    mean_latency: float = 0.0
    histogram: list[int] = field(default_factory=list)
    cache_stats: dict[str, int] = field(default_factory=dict)
    ratelimit_stats: dict[str, int] = field(default_factory=dict)
    request_log: list[tuple] | None = None

    @property
    def virtual_rps(self) -> float:
        if self.virtual_seconds <= 0:
            return 0.0
        return self.requests / self.virtual_seconds

    @property
    def cache_hit_rate(self) -> float:
        hits = self.cache_dispositions.get("HIT", 0)
        misses = self.cache_dispositions.get("MISS", 0)
        if hits + misses == 0:
            return 0.0
        return hits / (hits + misses)

    def summary_text(self) -> str:
        """A deterministic multi-line summary (golden-file comparable)."""
        lines = [
            f"users: {self.users}",
            f"requests: {self.requests}",
            "statuses: " + " ".join(
                f"{status}={count}"
                for status, count in sorted(self.status_counts.items())
            ),
            "cache: " + " ".join(
                f"{tag}={count}"
                for tag, count in sorted(self.cache_dispositions.items())
            ),
            f"cache_hit_rate: {self.cache_hit_rate:.4f}",
            f"throttled_retries: {self.throttled_retries}",
            f"gave_up_throttled: {self.gave_up_throttled}",
            f"virtual_seconds: {self.virtual_seconds:.6f}",
            f"virtual_rps: {self.virtual_rps:.3f}",
            f"latency_p50: {self.p50:.6f}",
            f"latency_p99: {self.p99:.6f}",
            f"latency_mean: {self.mean_latency:.6f}",
            "histogram: " + " ".join(str(n) for n in self.histogram),
            "server_cache: " + " ".join(
                f"{key}={value}"
                for key, value in sorted(self.cache_stats.items())
            ),
            "server_ratelimit: " + " ".join(
                f"{key}={value}"
                for key, value in sorted(self.ratelimit_stats.items())
            ),
        ]
        return "\n".join(lines)


class LoadGenerator:
    """Replays a seeded request schedule against a mounted ServeApp.

    Args:
        transport: the loopback wire the app is registered on.
        app: the serve app (for its host, counters, and id spaces).
        n_users: simulated client population (client ids ``u0..uN-1``).
        n_requests: total requests to issue.
        seed: RNG seed; same seed => bit-identical run.
        mean_gap: mean virtual think time between requests (seconds);
            drawn from an exponential, so arrivals are Poisson-ish but
            fully deterministic given the seed.
        keep_log: record one (client, url, status, disposition, elapsed)
            tuple per request — the determinism tests compare these;
            benchmarks at 10^6 users switch it off.
    """

    def __init__(
        self,
        transport: LoopbackTransport,
        app: ServeApp,
        n_users: int,
        n_requests: int,
        seed: int = 0,
        mean_gap: float = 0.01,
        keep_log: bool = False,
    ) -> None:
        if n_users < 1:
            raise ValueError("n_users must be >= 1")
        if n_requests < 0:
            raise ValueError("n_requests must be >= 0")
        self._transport = transport
        self._app = app
        self._clock = transport.clock
        self.n_users = int(n_users)
        self.n_requests = int(n_requests)
        self.seed = int(seed)
        self.mean_gap = float(mean_gap)
        self.keep_log = bool(keep_log)
        corpus = app._corpus
        self._url_ids = list(corpus.urls)
        self._usernames = list(corpus.users)
        self._url_strings = [u.url for u in corpus.urls.values()]
        if not self._url_ids or not self._usernames:
            raise ValueError("corpus has no urls or no users to serve")

    # ------------------------------------------------------------------
    # Schedule pre-sampling.
    # ------------------------------------------------------------------

    def _schedule(self) -> dict[str, np.ndarray]:
        """Pre-sample every random choice the run will make, in order."""
        rng = np.random.default_rng(self.seed)
        n = self.n_requests
        # Power-law user activity: same family as the platform's
        # comment-activity calibration (pareto(alpha=0.8) + 0.08).
        user_w = rng.pareto(0.8, self.n_users) + 0.08
        user_cdf = np.cumsum(user_w)
        user_cdf /= user_cdf[-1]
        users = np.searchsorted(user_cdf, rng.random(n), side="right")
        # Power-law URL popularity: the urlgen popularity draw
        # (pareto(1.1) + 0.2), over the corpus's real URL id space.
        url_w = rng.pareto(1.1, len(self._url_ids)) + 0.2
        url_cdf = np.cumsum(url_w)
        url_cdf /= url_cdf[-1]
        urls = np.searchsorted(url_cdf, rng.random(n), side="right")
        # Uniform username picks (user pages are long-tail by nature).
        names = rng.integers(0, len(self._usernames), n)
        # Endpoint mix.
        mix_cdf = np.cumsum([w for _, w in ENDPOINT_MIX])
        mix_cdf /= mix_cdf[-1]
        endpoints = np.searchsorted(mix_cdf, rng.random(n), side="right")
        # Deliberate 404 probes.
        misses = rng.random(n) < MISS_PROBABILITY
        # Think time between requests.
        gaps = rng.exponential(self.mean_gap, n)
        return {
            "users": users,
            "urls": urls,
            "names": names,
            "endpoints": endpoints,
            "misses": misses,
            "gaps": gaps,
        }

    def _request_url(
        self, tag: str, url_pick: int, name_pick: int, miss: bool, index: int
    ) -> str:
        base = f"https://{self._app.host}"
        cid = (
            f"missing-{index}" if miss
            else self._url_ids[url_pick % len(self._url_ids)]
        )
        name = (
            f"ghost-{index}" if miss
            else self._usernames[name_pick % len(self._usernames)]
        )
        if tag == "thread":
            return f"{base}/api/thread/{cid}"
        if tag == "user":
            return f"{base}/api/user/{name}"
        if tag == "summary_url":
            return f"{base}/api/summary/url/{cid}"
        if tag == "summary_user":
            return f"{base}/api/summary/user/{name}"
        if tag == "url_lookup":
            target = (
                f"https://nowhere.example/{index}" if miss
                else self._url_strings[url_pick % len(self._url_strings)]
            )
            return url_with_params(f"{base}/api/url", {"url": target})
        if tag == "core":
            return f"{base}/api/core"
        return f"{base}/api/core/{name}"

    # ------------------------------------------------------------------
    # The run.
    # ------------------------------------------------------------------

    def run(self) -> LoadReport:
        """Issue the full schedule; returns the deterministic report."""
        schedule = self._schedule()
        report = LoadReport(users=self.n_users, requests=self.n_requests)
        log: list[tuple] | None = [] if self.keep_log else None
        latencies: list[float] = []
        edges = HISTOGRAM_EDGES
        histogram = [0] * (len(edges) + 1)
        start = self._clock.now()
        tags = [tag for tag, _ in ENDPOINT_MIX]
        for i in range(self.n_requests):
            gap = float(schedule["gaps"][i])
            if gap > 0:
                self._clock.sleep(gap)
            tag = tags[min(int(schedule["endpoints"][i]), len(tags) - 1)]
            url = self._request_url(
                tag,
                int(schedule["urls"][i]),
                int(schedule["names"][i]),
                bool(schedule["misses"][i]),
                i,
            )
            client = f"u{int(schedule['users'][i])}"
            response = self._send(url, client)
            if response.status == 429:
                # Honour the advertised wait once; the ulp-safe
                # wait_time contract makes this retry sufficient.
                report.throttled_retries += 1
                retry_after = response.headers.get("Retry-After")
                wait = float(retry_after) if retry_after else self.mean_gap
                self._clock.sleep(wait)
                response = self._send(url, client)
                if response.status == 429:
                    report.gave_up_throttled += 1
            report.status_counts[response.status] = (
                report.status_counts.get(response.status, 0) + 1
            )
            disposition = response.headers.get("X-Cache", "NONE")
            report.cache_dispositions[disposition] = (
                report.cache_dispositions.get(disposition, 0) + 1
            )
            latencies.append(response.elapsed)
            bin_index = 0
            while bin_index < len(edges) and response.elapsed > edges[bin_index]:
                bin_index += 1
            histogram[bin_index] += 1
            if log is not None:
                log.append(
                    (client, url, response.status, disposition,
                     response.elapsed)
                )
        report.virtual_seconds = self._clock.now() - start
        ordered = np.sort(np.asarray(latencies, dtype=float), kind="stable")
        report.p50 = _ecdf_quantile(ordered, 0.5)
        report.p99 = _ecdf_quantile(ordered, 0.99)
        report.mean_latency = float(ordered.mean()) if ordered.size else 0.0
        report.histogram = histogram
        report.cache_stats = self._app.cache.stats()
        report.ratelimit_stats = {
            "clients": len(self._app.limiter),
            "created": self._app.limiter.created,
            "evictions": self._app.limiter.evictions,
            "throttled": self._app.throttled,
        }
        report.request_log = log
        return report

    def _send(self, url: str, client: str):
        request = Request(method="GET", url=url)
        request.headers.set("X-Client-Id", client)
        request.headers.set("Accept", "application/json")
        return self._transport.send(request)
