"""Bounded LRU cache for rendered API responses.

The serve app caches rendered response bodies keyed on (endpoint, params,
corpus manifest hash): a sealed corpus never changes, so a rendered read
is valid for the lifetime of the corpus and the manifest-hash component
only exists to invalidate entries if an app is ever rebound to a
different corpus.  The cache is deliberately not the transport's render
memo — the serve app owns its counters (hit rate is a headline benchmark
number) and charges different virtual costs for hits and misses.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.net.http import Response

__all__ = ["RenderCache"]


class RenderCache:
    """LRU map from request key to a rendered master :class:`Response`.

    Entries store the *master* response; callers hand out per-request
    shells around the shared body (the transport mutates ``.elapsed`` on
    whatever it returns).  Counters are plain ints so a load report can
    cite them and a determinism test can compare them across runs.
    """

    def __init__(self, max_entries: int = 4096) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = int(max_entries)
        self._entries: OrderedDict[tuple, Response] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: tuple) -> Response | None:
        """The cached master response, or None (counted as a miss)."""
        cached = self._entries.get(key)
        if cached is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return cached

    def put(self, key: tuple, response: Response) -> None:
        """Insert a freshly rendered master response, evicting LRU."""
        self._entries[key] = response
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1

    def stats(self) -> dict[str, int]:
        """Counters for the status endpoint and load reports."""
        return {
            "entries": len(self._entries),
            "max_entries": self.max_entries,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }
