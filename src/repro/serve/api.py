"""The Dissenter read API over a sealed corpus.

:class:`ServeApp` flips the repo's direction of travel: instead of
*crawling* the simulated platform, it serves the crawled corpus back out
as a live read API — comment thread by URL, user page, per-URL and
per-user toxicity summaries, hateful-core membership — mounted as an
:class:`~repro.net.router.App` on the existing loopback transport so
every request runs on the virtual clock.

Three properties matter:

* **Determinism.**  Handlers are pure functions of the sealed corpus and
  the request; virtual render costs are charged per response byte, so a
  seeded load run reproduces latency distributions bit-identically.
* **Caching.**  Rendered responses live in an app-owned LRU
  (:class:`~repro.serve.cache.RenderCache`) keyed on (method, path,
  params, corpus manifest hash).  A sealed corpus never changes, so
  entries never go stale; the manifest-hash component invalidates the
  key space wholesale if an app is ever rebuilt over a different corpus.
* **Rate limiting.**  A per-client :class:`~repro.net.ratelimit.
  KeyedRateLimiter` answers over-budget requests with 429 and a
  ``Retry-After`` whose value is *sufficient* (the ulp-safe
  ``wait_time`` guarantee) and serialized with ``repr`` so it round-
  trips through the header exactly.

Toxicity summaries dispatch through :func:`~repro.store.columns.
columns_of`: on a sealed columnar store the scores column is sliced via
the memoised URL/author group indexes; legacy or ``--no-columns``
corpora fall back to the record-dict path.  Both paths produce the same
float64 sequence in the same order, so the JSON bodies are byte-
identical — the same oracle contract the §4 analyses follow.
"""

from __future__ import annotations

import hashlib
import json
import math

import numpy as np

from repro.net.clock import Clock
from repro.net.http import Request, Response
from repro.net.ratelimit import KeyedRateLimiter
from repro.net.router import App
from repro.serve.cache import RenderCache
from repro.store import Corpus
from repro.store.columns import columns_of

__all__ = ["ServeApp", "corpus_manifest_hash"]

#: Default Perspective attribute for the summary endpoints (§4.5.1's
#: hateful-core criterion scores SEVERE_TOXICITY medians).
DEFAULT_ATTRIBUTE = "SEVERE_TOXICITY"


def corpus_manifest_hash(corpus: Corpus) -> str:
    """A stable identity hash for a corpus's contents.

    Segmented stores hash their snapshot payload — sealed segment
    references (name, count, sha256, columns hash) plus the unsealed
    tail — with the host-specific spill directory excluded, so the same
    corpus hashes identically wherever its segments live.  Legacy
    ``CrawlResult`` corpora hash a cheap structural fingerprint.
    """
    snapshot = getattr(corpus, "snapshot", None)
    if snapshot is not None:
        payload = dict(snapshot())
        payload.pop("dir", None)   # host path, not corpus identity
    else:
        payload = {
            "kind": "legacy",
            "users": len(corpus.users),
            "urls": len(corpus.urls),
            "comments": len(corpus.comments),
            "first_comment": next(iter(corpus.comments), ""),
            "last_comment": (
                next(reversed(corpus.comments)) if corpus.comments else ""
            ),
        }
    data = json.dumps(payload, sort_keys=True).encode("utf-8")
    return hashlib.sha256(data).hexdigest()


def _score_summary(scores: np.ndarray) -> dict:
    """Count/mean/median/p90/max of one score column slice.

    Quantiles use the ECDF convention (sorted array indexed at
    ``ceil(q * n) - 1``) so the columnar and dict paths agree exactly.
    """
    n = int(scores.size)
    if n == 0:
        return {"count": 0, "mean": None, "median": None, "p90": None,
                "max": None}
    ordered = np.sort(scores, kind="stable")

    def quantile(q: float) -> float:
        return float(ordered[max(0, math.ceil(q * n) - 1)])

    return {
        "count": n,
        "mean": float(scores.mean()),
        "median": quantile(0.5),
        "p90": quantile(0.9),
        "max": float(ordered[-1]),
    }


class ServeApp(App):
    """Read-only Dissenter API over a sealed corpus.

    Args:
        corpus: the sealed corpus to serve (never mutated).
        clock: the serving stack's virtual clock (shared with the
            transport; render costs advance it).
        score_store: shared score store for the toxicity summary
            endpoints; ``None`` makes them answer 503.
        core_members: usernames in the §4.5.1 hateful core.
        diffusion: precomputed hate-diffusion summary payload
            (:meth:`~repro.graph.diffusion.DiffusionReport.to_payload`);
            ``None`` makes ``/api/diffusion/summary`` answer 503.  The
            cascade is a pure function of (corpus, parameters), so the
            bootstrap computes it once and the endpoint just serves the
            frozen payload.
        cache_entries: LRU render-cache capacity.
        rate: per-client token-bucket refill rate (requests/second).
        capacity: per-client burst allowance.
        max_clients: rate-limiter table bound (LRU-evicted above this).
    """

    HOST = "serve.dissenter.local"

    #: Virtual seconds charged per rendered response: a base dispatch
    #: cost plus a per-KiB serialization cost, so heavy threads are
    #: slower than tiny user pages and the latency distribution under
    #: load has real shape.  Cache hits skip rendering and pay only the
    #: (much smaller) lookup cost.
    RENDER_COST_BASE = 0.02
    RENDER_COST_PER_KB = 0.01
    CACHE_HIT_COST = 0.002

    #: Per-thread / per-page caps so no response is unbounded.
    THREAD_PAGE_SIZE = 100
    USER_URLS_LIMIT = 50

    def __init__(
        self,
        corpus: Corpus,
        clock: Clock,
        score_store=None,
        core_members: tuple[str, ...] | list[str] = (),
        diffusion: dict | None = None,
        cache_entries: int = 4096,
        rate: float = 5.0,
        capacity: float = 20.0,
        max_clients: int = KeyedRateLimiter.DEFAULT_MAX_KEYS,
    ) -> None:
        super().__init__(self.HOST, deterministic_render=False)
        if not getattr(corpus, "sealed", True):
            raise ValueError("ServeApp requires a sealed corpus")
        self._corpus = corpus
        self._clock = clock
        self._scores = score_store
        self._core_sorted = sorted(set(core_members))
        self._core = frozenset(self._core_sorted)
        self._diffusion = diffusion
        self._manifest_hash = corpus_manifest_hash(corpus)
        self._cache = RenderCache(cache_entries)
        self._limiter = KeyedRateLimiter(
            rate=rate, capacity=capacity, clock=clock, max_keys=max_clients
        )
        self._url_index: dict[str, str] | None = None
        self.throttled = 0
        self.use(self._rate_limit)
        self.get("/api/status")(self._status)
        self.get("/api/thread/{commenturl_id}")(self._thread)
        self.get("/api/url")(self._url_lookup)
        self.get("/api/user/{username}")(self._user_page)
        self.get("/api/summary/url/{commenturl_id}")(self._summary_url)
        self.get("/api/summary/user/{username}")(self._summary_user)
        self.get("/api/core")(self._core_listing)
        self.get("/api/core/{username}")(self._core_membership)
        self.get("/api/diffusion/summary")(self._diffusion_summary)

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------

    @property
    def manifest_hash(self) -> str:
        return self._manifest_hash

    @property
    def cache(self) -> RenderCache:
        return self._cache

    @property
    def limiter(self) -> KeyedRateLimiter:
        return self._limiter

    # ------------------------------------------------------------------
    # Rate limiting (middleware: always runs, never cached).
    # ------------------------------------------------------------------

    def _client_key(self, request: Request) -> str:
        return request.headers.get("X-Client-Id") or "anonymous"

    def _rate_limit(self, request: Request) -> Response | None:
        key = self._client_key(request)
        if self._limiter.try_acquire(key):
            return None
        self.throttled += 1
        retry = self._limiter.wait_time(key)
        response = Response(status=429, body=b"rate limited")
        # repr round-trips the float exactly, so a client that sleeps
        # float(header) gets the full ulp-safe wait_time guarantee.
        response.headers.set("Retry-After", repr(retry))
        return response

    # ------------------------------------------------------------------
    # Render caching (the routing half of dispatch).
    # ------------------------------------------------------------------

    def render(self, request: Request) -> Response:
        if request.path == "/api/status":
            # Live counters: caching would freeze them.
            return super().render(request)
        key = (
            request.method,
            request.path,
            tuple(sorted(request.query.items())),
            self._manifest_hash,
        )
        master = self._cache.get(key)
        if master is not None:
            self._clock.advance(self.CACHE_HIT_COST)
            return self._shell(master, "HIT", request)
        master = super().render(request)
        self._clock.advance(
            self.RENDER_COST_BASE
            + self.RENDER_COST_PER_KB * len(master.body) / 1024.0
        )
        self._cache.put(key, master)
        return self._shell(master, "MISS", request)

    def _shell(
        self, master: Response, disposition: str, request: Request
    ) -> Response:
        """A per-request response around the shared cached body.

        The transport mutates ``.elapsed``/``.url`` on what it returns,
        so cache entries must never be handed out directly.
        """
        headers = master.headers.copy()
        headers.set("X-Cache", disposition)
        return Response(
            status=master.status,
            headers=headers,
            body=master.body,
            url=request.url,
        )

    # ------------------------------------------------------------------
    # Handlers.
    # ------------------------------------------------------------------

    def _status(self, request: Request, params: dict[str, str]) -> Response:
        corpus = self._corpus
        payload = {
            "manifest_hash": self._manifest_hash,
            "corpus": {
                "users": len(corpus.users),
                "urls": len(corpus.urls),
                "comments": len(corpus.comments),
            },
            "columns": columns_of(corpus) is not None,
            "scores": self._scores is not None,
            "core_size": len(self._core),
            "cache": self._cache.stats(),
            "ratelimit": {
                "clients": len(self._limiter),
                "created": self._limiter.created,
                "evictions": self._limiter.evictions,
                "throttled": self.throttled,
            },
        }
        return Response.json_response(payload)

    def _thread(self, request: Request, params: dict[str, str]) -> Response:
        cid = params["commenturl_id"]
        url = self._corpus.urls.get(cid)
        if url is None:
            return Response.json_response({"error": "unknown url id"}, 404)
        comments = self._corpus.comments_by_url().get(cid, [])
        page = [
            {
                "comment_id": c.comment_id,
                "author_id": c.author_id,
                "text": c.text,
                "created_at": c.created_at_epoch,
                "reply": bool(c.parent_comment_id),
            }
            for c in comments[: self.THREAD_PAGE_SIZE]
        ]
        payload = {
            "commenturl_id": cid,
            "url": url.url,
            "title": url.title,
            "upvotes": url.upvotes,
            "downvotes": url.downvotes,
            "total_comments": len(comments),
            "comments": page,
        }
        return Response.json_response(payload)

    def _url_lookup(self, request: Request, params: dict[str, str]) -> Response:
        target = request.query.get("url")
        if not target:
            return Response.json_response(
                {"error": "missing url parameter"}, 400
            )
        if self._url_index is None:
            # First-insertion order: later re-appends of the same URL
            # string keep the original id, like every other store index.
            index: dict[str, str] = {}
            for record in self._corpus.urls.values():
                index.setdefault(record.url, record.commenturl_id)
            self._url_index = index
        cid = self._url_index.get(target)
        if cid is None:
            return Response.json_response({"error": "unknown url"}, 404)
        return Response.json_response(
            {"url": target, "commenturl_id": cid}
        )

    def _user_page(self, request: Request, params: dict[str, str]) -> Response:
        username = params["username"]
        user = self._corpus.users.get(username)
        if user is None:
            return Response.json_response({"error": "unknown user"}, 404)
        comments = self._corpus.comments_by_author().get(user.author_id, [])
        commented: list[str] = []
        seen: set[str] = set()
        for comment in comments:
            if comment.commenturl_id not in seen:
                seen.add(comment.commenturl_id)
                commented.append(comment.commenturl_id)
                if len(commented) >= self.USER_URLS_LIMIT:
                    break
        payload = {
            "username": user.username,
            "display_name": user.display_name,
            "author_id": user.author_id,
            "comment_count": len(comments),
            "commented_urls": commented,
            "first_comment_at": (
                min(c.created_at_epoch for c in comments) if comments else None
            ),
            "last_comment_at": (
                max(c.created_at_epoch for c in comments) if comments else None
            ),
        }
        return Response.json_response(payload)

    # -- toxicity summaries --------------------------------------------

    def _summary_unavailable(self) -> Response:
        return Response.json_response(
            {"error": "no score store attached"}, 503
        )

    def _summary_url(self, request: Request, params: dict[str, str]) -> Response:
        if self._scores is None:
            return self._summary_unavailable()
        cid = params["commenturl_id"]
        if cid not in self._corpus.urls:
            return Response.json_response({"error": "unknown url id"}, 404)
        attribute = request.query.get("attribute", DEFAULT_ATTRIBUTE)
        view = columns_of(self._corpus)
        try:
            if view is not None:
                ordinal = view.tables.url_ids.lookup(cid)
                if ordinal is None:
                    scores = np.asarray([], dtype=float)
                else:
                    order, offsets = view.url_comment_order()
                    rows = order[offsets[ordinal]:offsets[ordinal + 1]]
                    scores = view.attribute_scores(self._scores, attribute)[rows]
            else:
                comments = self._corpus.comments_by_url().get(cid, [])
                scores = self._scores.attribute_values(
                    [c.text for c in comments], attribute
                )
        except KeyError:
            return Response.json_response(
                {"error": f"unknown attribute {attribute!r}"}, 400
            )
        payload = {
            "commenturl_id": cid,
            "attribute": attribute,
            **_score_summary(scores),
        }
        return Response.json_response(payload)

    def _summary_user(self, request: Request, params: dict[str, str]) -> Response:
        if self._scores is None:
            return self._summary_unavailable()
        username = params["username"]
        user = self._corpus.users.get(username)
        if user is None:
            return Response.json_response({"error": "unknown user"}, 404)
        attribute = request.query.get("attribute", DEFAULT_ATTRIBUTE)
        view = columns_of(self._corpus)
        try:
            if view is not None:
                ordinal = view.tables.authors.lookup(user.author_id)
                if ordinal is None:
                    scores = np.asarray([], dtype=float)
                else:
                    order, offsets = view.author_comment_order()
                    rows = order[offsets[ordinal]:offsets[ordinal + 1]]
                    scores = view.attribute_scores(self._scores, attribute)[rows]
            else:
                comments = self._corpus.comments_by_author().get(
                    user.author_id, []
                )
                scores = self._scores.attribute_values(
                    [c.text for c in comments], attribute
                )
        except KeyError:
            return Response.json_response(
                {"error": f"unknown attribute {attribute!r}"}, 400
            )
        payload = {
            "username": username,
            "attribute": attribute,
            **_score_summary(scores),
        }
        return Response.json_response(payload)

    # -- hateful core ---------------------------------------------------

    def _core_listing(self, request: Request, params: dict[str, str]) -> Response:
        return Response.json_response(
            {"size": len(self._core_sorted), "members": self._core_sorted}
        )

    def _core_membership(
        self, request: Request, params: dict[str, str]
    ) -> Response:
        username = params["username"]
        return Response.json_response(
            {"username": username, "member": username in self._core}
        )

    # -- hate diffusion ---------------------------------------------------

    def _diffusion_summary(
        self, request: Request, params: dict[str, str]
    ) -> Response:
        if self._diffusion is None:
            return Response.json_response(
                {"error": "no diffusion summary attached"}, 503
            )
        return Response.json_response(self._diffusion)
