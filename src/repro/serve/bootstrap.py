"""Build a ready-to-serve stack from a simulated world.

The serve API reads a *sealed* corpus: the natural way to obtain one is
to run the §3 pipeline against a generated world, score it, and extract
the §4.5.1 hateful core — exactly what `repro run` does, minus the
analyses the read API does not expose.  :func:`build_serve_stack` does
that once and mounts a :class:`~repro.serve.api.ServeApp` over the
result on a *fresh* virtual clock, so the serve timeline starts at the
epoch regardless of how long the crawl took.

The hate-diffusion summary served at ``/api/diffusion/summary`` is also
precomputed here: one seeded independent-cascade run over the induced
follow graph (core-seeded, top-degree-seeded and random-seeded), frozen
into a payload dict.  Deterministic inputs, fixed seed — the endpoint
body is a pure function of (scale, seed).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.pipeline import CrawlArtifacts, ReproductionPipeline
from repro.core.scoring import ScoreStore
from repro.core.socialnet import (
    HatefulCore,
    extract_hateful_core,
    per_user_activity_toxicity,
)
from repro.graph import run_diffusion
from repro.graph.csr import CSRGraph
from repro.net.clock import VirtualClock
from repro.net.transport import LoopbackTransport
from repro.platform.config import WorldConfig
from repro.serve.api import ServeApp
from repro.store import CorpusStore

__all__ = ["ServeStack", "build_serve_stack", "core_usernames"]

#: Fixed seed for the precomputed serve-side diffusion summary.
DIFFUSION_SEED = 11


def _usernames_for(core: HatefulCore, artifacts: CrawlArtifacts) -> list[str]:
    by_id = {gab_id: name for name, gab_id in artifacts.gab_ids.items()}
    return sorted(
        by_id[member] for member in core.members if member in by_id
    )


def core_usernames(artifacts: CrawlArtifacts, score_store: ScoreStore) -> list[str]:
    """Usernames of the §4.5.1 hateful core, in sorted order.

    The core extractor works in Gab-id space; the serve API keys users
    by username, so the ``gab_ids`` mapping is inverted here.
    """
    counts, toxicity = per_user_activity_toxicity(
        artifacts.corpus, artifacts.gab_ids, score_store
    )
    core = extract_hateful_core(artifacts.graph, counts, toxicity)
    return _usernames_for(core, artifacts)


@dataclass
class ServeStack:
    """A mounted serve deployment plus the artefacts behind it."""

    app: ServeApp
    transport: LoopbackTransport
    clock: VirtualClock
    corpus: CorpusStore
    score_store: ScoreStore
    core_members: list[str]
    core: HatefulCore | None = None
    diffusion: dict | None = None


def build_serve_stack(
    scale: float = 0.002,
    seed: int = 42,
    store_dir: str | None = None,
    columns: bool = True,
    latency: float = 0.05,
    cache_entries: int = 4096,
    rate: float = 5.0,
    capacity: float = 20.0,
) -> ServeStack:
    """Crawl + score a world at ``scale``/``seed`` and mount the API.

    Args:
        scale: world scale factor (0.002 is the tier-1 test scale).
        seed: world seed; the corpus, scores, core and diffusion summary
            are all deterministic functions of (scale, seed).
        store_dir: spill directory for sealed segments (refs-only
            snapshots make the manifest hash cheap); None keeps
            segments inline.
        columns: project columns at seal time so summary endpoints use
            the vectorized path.
        latency: serve-side wire latency (seconds, virtual).
        cache_entries: render-cache capacity.
        rate: per-client sustained requests/second budget.
        capacity: per-client burst allowance.
    """
    pipeline = ReproductionPipeline(
        WorldConfig(scale=scale, seed=seed),
        store_dir=store_dir,
        columns=columns,
    )
    artifacts = pipeline.stage_crawl()
    score_store = pipeline.stage_score(artifacts)
    counts, toxicity = per_user_activity_toxicity(
        artifacts.corpus, artifacts.gab_ids, score_store
    )
    core = extract_hateful_core(artifacts.graph, counts, toxicity)
    members = _usernames_for(core, artifacts)
    graph = artifacts.graph
    diffusion = None
    if isinstance(graph, CSRGraph):
        diffusion = run_diffusion(
            graph, toxicity, core_members=core.members, seed=DIFFUSION_SEED
        ).to_payload()
    corpus = artifacts.corpus
    if not isinstance(corpus, CorpusStore):
        raise TypeError("pipeline produced a legacy corpus; expected CorpusStore")
    clock = VirtualClock()
    transport = LoopbackTransport(clock=clock, latency=latency)
    app = ServeApp(
        corpus,
        clock,
        score_store=score_store,
        core_members=members,
        diffusion=diffusion,
        cache_entries=cache_entries,
        rate=rate,
        capacity=capacity,
    )
    transport.register(app)
    return ServeStack(
        app=app,
        transport=transport,
        clock=clock,
        corpus=corpus,
        score_store=score_store,
        core_members=members,
        core=core,
        diffusion=diffusion,
    )
