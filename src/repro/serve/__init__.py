"""repro.serve — the deterministic read API over a sealed corpus.

Serves the Dissenter read surface (threads, user pages, toxicity
summaries, hateful-core membership) from a sealed
:class:`~repro.store.CorpusStore` as an origin app on the simulated
network, with an LRU render cache and per-client rate limiting, plus a
seeded load generator for million-user benchmarks.
"""

from repro.serve.api import ServeApp, corpus_manifest_hash
from repro.serve.bootstrap import ServeStack, build_serve_stack, core_usernames
from repro.serve.cache import RenderCache
from repro.serve.load import LoadGenerator, LoadReport

__all__ = [
    "LoadGenerator",
    "LoadReport",
    "RenderCache",
    "ServeApp",
    "ServeStack",
    "build_serve_stack",
    "core_usernames",
    "corpus_manifest_hash",
]
