"""Columnar projection of sealed segments (§4 analytics layer).

Every sealed segment gets a derived, typed column file: at seal time the
:class:`ColumnProjector` — which has observed every log line exactly once
— drains its row buffer into fixed-order numpy arrays that are written
next to the segment JSONL as ``<name>.columns.npz``.  The file's SHA-256
joins the segment's manifest entry (``columns_sha256``), so column bytes
are covered by the same determinism contract as the log itself: byte-
identical across PYTHONHASHSEED values and kill→resume chains.

Strings never ride in the hot columns.  Identifiers (comment ids, author
ids, URL ids, URL strings, usernames) are interned into append-only
:class:`StringTable`\\ s whose ordinals *are* the column values; the
small derived vocabularies (TLDs, domains, schemes, permission-flag and
view-filter names, shadow labels) additionally spill per-segment deltas
into the ``.npz`` so the ordinal space is reconstructable from column
files alone.  Interning order is first log appearance, which makes
ordinals a pure function of the log — the property every bit-identity
guarantee below leans on.

Reads go through :class:`ColumnView`: per-segment arrays are loaded with
zero-copy memory maps into the npz members (falling back to an eager
``np.load`` if the zip layout is surprising), verified against the
manifested hash first, and concatenated lazily per column.  A column
file that is missing or fails verification is *re-projected* from the
hash-verified segment JSONL — lookup-only interning reproduces the
original ordinals — and healed back to disk when the recomputed bytes
match the manifest.

The dict path remains the oracle: analyses dispatch through
:func:`columns_of`, which returns ``None`` for legacy corpora, unsealed
stores, or ``--no-columns`` runs, and every columnar analysis is
asserted bit-identical against the dict implementation in tests.
"""

from __future__ import annotations

import hashlib
import io
import os
import zipfile
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.crawler.records import CrawledComment, CrawledUrl, CrawledUser
from repro.store.codecs import decode_line
from repro.store.segments import SegmentRef, columns_path

if TYPE_CHECKING:
    from repro.store.corpus import CorpusStore

__all__ = [
    "COLUMN_KEYS",
    "PROJECTION_SPEC",
    "ColumnProjector",
    "ColumnView",
    "StringTable",
    "adopt_columns",
    "columns_of",
    "heal_columns",
    "load_columns",
    "serialize_columns",
]

#: Which codec fields each record kind projects into columns.  Every
#: name listed here must appear in the matching ``encode_*``/``decode_*``
#: pair in :mod:`repro.store.codecs` — the CHK003 project checker in
#: :mod:`repro.analysis` enforces that at lint time, exactly as CHK002
#: ties record dataclasses to their codecs.
PROJECTION_SPEC = {
    "CrawledComment": (
        "comment_id",
        "author_id",
        "commenturl_id",
        "parent_comment_id",
        "created_at_epoch",
        "shadow_label",
    ),
    "CrawledUrl": ("commenturl_id", "url", "upvotes", "downvotes"),
    "CrawledUser": ("username", "author_id", "permissions", "view_filters"),
}

# Per-log-row column dtypes, in canonical npz member order.  Ordinal and
# count columns are int64; booleans are uint8; flag/filter bitmasks are
# uint64 (at most 64 distinct names each, enforced at intern time).
_RECORD_DTYPES = {
    "comment_key": np.int64,        # ordinal into comment_ids
    "comment_author": np.int64,     # ordinal into authors
    "comment_url": np.int64,        # ordinal into url_ids
    "comment_epoch": np.int64,      # created_at_epoch
    "comment_reply": np.uint8,      # has a parent_comment_id
    "comment_shadow": np.int64,     # ordinal into shadow_labels ("" = none)
    "url_key": np.int64,            # ordinal into url_ids
    "url_str": np.int64,            # ordinal into url_strings
    "url_up": np.int64,
    "url_down": np.int64,
    "url_tld": np.int64,            # ordinal into tlds, -1 = none
    "url_domain": np.int64,         # ordinal into domains, -1 = none
    "url_scheme": np.int64,         # ordinal into schemes
    "url_multi": np.uint8,          # has >= 2 GET parameters
    "user_key": np.int64,           # ordinal into usernames
    "user_author": np.int64,        # ordinal into authors
    "user_has_perms": np.uint8,     # permissions dict is non-empty
    "user_perm_mask": np.uint64,    # truthy permission flags, bit = ordinal
    "user_filter_mask": np.uint64,  # truthy view filters, bit = ordinal
}

# Small derived vocabularies whose per-segment deltas spill into the npz
# (the big identifier tables are recoverable from the JSONL directly).
_DELTA_TABLES = ("tlds", "domains", "schemes", "flags", "filters", "shadow_labels")

#: Canonical npz member order; savez preserves kwargs order, so this
#: tuple *is* the byte layout contract of a column file.
COLUMN_KEYS = tuple(_RECORD_DTYPES) + tuple(
    "delta_" + table for table in _DELTA_TABLES
)

_MASK_BITS = 64


class StringTable:
    """Append-only intern table; first-appearance order defines ordinals."""

    __slots__ = ("_index", "values")

    def __init__(self) -> None:
        self._index: dict[str, int] = {}
        self.values: list[str] = []

    def __len__(self) -> int:
        return len(self.values)

    def intern(self, value: str) -> int:
        ordinal = self._index.get(value)
        if ordinal is None:
            ordinal = len(self.values)
            self._index[value] = ordinal
            self.values.append(value)
        return ordinal

    def lookup(self, value: str) -> int | None:
        """The ordinal of ``value``, or None — never interns.

        The read-only counterpart of :meth:`intern` for serving-side
        lookups: resolving a request's identifier must not grow the
        table (ordinals are a pure function of the corpus log).
        """
        return self._index.get(value)


def _empty_buffers() -> dict[str, list]:
    return {key: [] for key in _RECORD_DTYPES}


class ColumnProjector:
    """Observes every log line once and emits per-segment column arrays.

    The projector's buffer mirrors the store's unsealed tail: the store
    calls :meth:`observe` for each appended line and :meth:`take_segment`
    when the tail seals, so rows land in exactly one segment.  Per-
    segment watermarks into the delta vocabularies are recorded at every
    seal, which is what lets :meth:`project_lines` re-project a sealed
    segment byte-for-byte long after later segments grew the tables.
    """

    def __init__(self) -> None:
        self.comment_ids = StringTable()
        self.authors = StringTable()
        self.url_ids = StringTable()
        self.url_strings = StringTable()
        self.usernames = StringTable()
        self.tlds = StringTable()
        self.domains = StringTable()
        self.schemes = StringTable()
        self.flags = StringTable()
        self.filters = StringTable()
        self.shadow_labels = StringTable()
        # Derived per-url-string metadata, indexed by url_strings ordinal:
        # (tld, domain, scheme, multi_param) — computed once per distinct
        # URL string, never per record.
        self._url_meta: list[tuple[int, int, int, int]] = []
        self._buffers = _empty_buffers()
        self._pending = 0
        self._marks = {table: 0 for table in _DELTA_TABLES}
        #: per-segment (start, end) vocabulary watermarks, in seal order
        self.segment_marks: list[dict[str, tuple[int, int]]] = []

    # ------------------------------------------------------------------
    # Observation (write path).
    # ------------------------------------------------------------------

    def observe(self, kind: str, record: object) -> None:
        """Project one decoded log line into the row buffer."""
        if isinstance(record, CrawledUser):
            self.observe_user(record)
        elif isinstance(record, CrawledUrl):
            self.observe_url(record)
        elif isinstance(record, CrawledComment):
            self.observe_comment(record)
        else:
            raise TypeError(
                f"no column projection for {kind!r} record "
                f"{type(record).__name__}"
            )

    def observe_user(self, user: CrawledUser) -> None:
        perm_mask = 0
        for name, value in user.permissions.items():
            bit = self.flags.intern(name)
            if value:
                perm_mask |= 1 << bit
        filter_mask = 0
        for name, value in user.view_filters.items():
            bit = self.filters.intern(name)
            if value:
                filter_mask |= 1 << bit
        if len(self.flags) > _MASK_BITS or len(self.filters) > _MASK_BITS:
            raise ValueError(
                "column bitmasks support at most 64 distinct flag names"
            )
        buffers = self._buffers
        buffers["user_key"].append(self.usernames.intern(user.username))
        buffers["user_author"].append(self.authors.intern(user.author_id))
        buffers["user_has_perms"].append(1 if user.permissions else 0)
        buffers["user_perm_mask"].append(perm_mask)
        buffers["user_filter_mask"].append(filter_mask)
        self._pending += 1

    def observe_url(self, url: CrawledUrl) -> None:
        str_ord = self.url_strings.intern(url.url)
        if str_ord == len(self._url_meta):
            self._url_meta.append(self._derive_url_meta(url.url))
        tld, domain, scheme, multi = self._url_meta[str_ord]
        buffers = self._buffers
        buffers["url_key"].append(self.url_ids.intern(url.commenturl_id))
        buffers["url_str"].append(str_ord)
        buffers["url_up"].append(url.upvotes)
        buffers["url_down"].append(url.downvotes)
        buffers["url_tld"].append(tld)
        buffers["url_domain"].append(domain)
        buffers["url_scheme"].append(scheme)
        buffers["url_multi"].append(multi)
        self._pending += 1

    def observe_comment(self, comment: CrawledComment) -> None:
        buffers = self._buffers
        buffers["comment_key"].append(
            self.comment_ids.intern(comment.comment_id)
        )
        buffers["comment_author"].append(self.authors.intern(comment.author_id))
        buffers["comment_url"].append(self.url_ids.intern(comment.commenturl_id))
        buffers["comment_epoch"].append(comment.created_at_epoch)
        buffers["comment_reply"].append(1 if comment.parent_comment_id else 0)
        buffers["comment_shadow"].append(
            self.shadow_labels.intern(comment.shadow_label or "")
        )
        self._pending += 1

    def _derive_url_meta(self, url: str) -> tuple[int, int, int, int]:
        # Function-level import: repro.core.urls imports the store
        # package for the Corpus union, so a module-level import here
        # would cycle during package init.
        from urllib.parse import urlsplit

        from repro.core.urls import second_level_domain, tld_of

        tld = tld_of(url)
        domain = second_level_domain(url)
        scheme = url.split(":", 1)[0].lower() if ":" in url else "unknown"
        query = urlsplit(url).query if "://" in url else ""
        return (
            self.tlds.intern(tld) if tld is not None else -1,
            self.domains.intern(domain) if domain is not None else -1,
            self.schemes.intern(scheme),
            1 if query.count("&") >= 1 else 0,
        )

    # ------------------------------------------------------------------
    # Segment boundaries.
    # ------------------------------------------------------------------

    def take_segment(self, expected: int) -> dict[str, np.ndarray]:
        """Drain the row buffer into one sealed segment's arrays."""
        if self._pending != expected:
            raise RuntimeError(
                f"column projector buffered {self._pending} rows but the "
                f"sealing segment holds {expected} records"
            )
        arrays = self._record_arrays(self._buffers)
        marks: dict[str, tuple[int, int]] = {}
        for table in _DELTA_TABLES:
            start = self._marks[table]
            end = len(getattr(self, table))
            marks[table] = (start, end)
            self._marks[table] = end
        self.segment_marks.append(marks)
        arrays.update(self._delta_arrays(marks))
        self._buffers = _empty_buffers()
        self._pending = 0
        return arrays

    def peek_tail(self) -> dict[str, np.ndarray]:
        """Arrays for the unsealed tail (buffer is left untouched)."""
        arrays = self._record_arrays(self._buffers)
        marks = {
            table: (self._marks[table], len(getattr(self, table)))
            for table in _DELTA_TABLES
        }
        arrays.update(self._delta_arrays(marks))
        return arrays

    def project_lines(
        self, lines: list[str], segment_index: int
    ) -> dict[str, np.ndarray]:
        """Re-project one sealed segment from its verified JSONL.

        Every string in a sealed segment is already interned (the
        projector replayed the whole log), so observation here is
        lookup-only and reproduces the original ordinals — and the
        recorded watermarks reproduce the original vocabulary deltas —
        byte-for-byte.
        """
        saved_buffers, saved_pending = self._buffers, self._pending
        self._buffers, self._pending = _empty_buffers(), 0
        try:
            for line in lines:
                kind, record = decode_line(line)
                self.observe(kind, record)
            arrays = self._record_arrays(self._buffers)
        finally:
            self._buffers, self._pending = saved_buffers, saved_pending
        arrays.update(self._delta_arrays(self.segment_marks[segment_index]))
        return arrays

    def _record_arrays(self, buffers: dict[str, list]) -> dict[str, np.ndarray]:
        return {
            key: np.asarray(buffers[key], dtype=dtype)
            for key, dtype in _RECORD_DTYPES.items()
        }

    def _delta_arrays(
        self, marks: dict[str, tuple[int, int]]
    ) -> dict[str, np.ndarray]:
        out: dict[str, np.ndarray] = {}
        for table, (start, end) in marks.items():
            values = getattr(self, table).values[start:end]
            out["delta_" + table] = np.asarray(values, dtype=np.str_)
        return out


# ---------------------------------------------------------------------------
# On-disk column files.
# ---------------------------------------------------------------------------


def serialize_columns(arrays: dict[str, np.ndarray]) -> bytes:
    """Canonical npz bytes for one segment's arrays.

    ``np.savez`` stores members uncompressed with a fixed zip timestamp
    and preserves kwargs order, so these bytes are a pure function of
    the arrays — the property the sha256 manifest entry relies on.
    """
    buffer = io.BytesIO()
    np.savez(buffer, **{key: arrays[key] for key in COLUMN_KEYS})
    return buffer.getvalue()


def _atomic_write_bytes(path: Path, data: bytes) -> None:
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_bytes(data)
    os.replace(tmp, path)


def write_columns(store_dir: Path, name: str, arrays: dict[str, np.ndarray]) -> str:
    """Write one segment's column file atomically; returns its sha256."""
    store_dir = Path(store_dir)
    store_dir.mkdir(parents=True, exist_ok=True)
    data = serialize_columns(arrays)
    _atomic_write_bytes(columns_path(store_dir, name), data)
    return hashlib.sha256(data).hexdigest()


def adopt_columns(
    store_dir: Path, name: str, arrays: dict[str, np.ndarray]
) -> tuple[str, bool]:
    """Write a column file unless identical bytes already exist.

    Returns ``(sha256, reused)`` — ``reused`` is the cache hit a resume
    leg scores when the killed leg already spilled the same projection.
    """
    store_dir = Path(store_dir)
    data = serialize_columns(arrays)
    digest = hashlib.sha256(data).hexdigest()
    path = columns_path(store_dir, name)
    try:
        existing = path.read_bytes()
    except OSError:
        existing = None
    if existing == data:
        return digest, True
    store_dir.mkdir(parents=True, exist_ok=True)
    _atomic_write_bytes(path, data)
    return digest, False


def heal_columns(
    store_dir: Path,
    name: str,
    arrays: dict[str, np.ndarray],
    expected_sha: str,
) -> bool:
    """Rewrite a failed column file from re-projected arrays.

    Returns True when the recomputed bytes match the manifested hash
    (the heal is then durable); False leaves the bad file untouched so
    the mismatch stays visible.
    """
    data = serialize_columns(arrays)
    if hashlib.sha256(data).hexdigest() != expected_sha:
        return False
    _atomic_write_bytes(columns_path(Path(store_dir), name), data)
    return True


def load_columns(
    store_dir: Path, ref: SegmentRef
) -> dict[str, np.ndarray] | None:
    """Load one segment's verified column arrays, or None.

    The file's bytes are hashed against ``ref.columns_sha256`` before
    anything is parsed; a missing, unmanifested, or corrupt file returns
    None so the caller can fall back to re-projection from the JSONL.
    Members are memory-mapped in place when the zip layout allows it.
    """
    if ref.columns_sha256 is None:
        return None
    path = columns_path(Path(store_dir), ref.name)
    digest = hashlib.sha256()
    try:
        with open(path, "rb") as handle:
            while chunk := handle.read(1 << 20):
                digest.update(chunk)
    except OSError:
        return None
    if digest.hexdigest() != ref.columns_sha256:
        return None
    try:
        arrays = _mmap_members(path)
    except Exception:
        # Unexpected zip layout (compressed members, fortran order, …):
        # the bytes are verified, so an eager load is still correct.
        try:
            with np.load(path) as bundle:
                arrays = {key: bundle[key] for key in bundle.files}
        except Exception:
            return None
    if any(key not in arrays for key in COLUMN_KEYS):
        return None
    return arrays


def _mmap_members(path: Path) -> dict[str, np.ndarray]:
    """Zero-copy views into an uncompressed npz's members."""
    from numpy.lib import format as npformat

    out: dict[str, np.ndarray] = {}
    with zipfile.ZipFile(path) as bundle, open(path, "rb") as raw:
        for info in bundle.infolist():
            if info.compress_type != zipfile.ZIP_STORED:
                raise ValueError("compressed npz member")
            with bundle.open(info) as member:
                version = npformat.read_magic(member)
                if version == (1, 0):
                    shape, fortran, dtype = npformat.read_array_header_1_0(member)
                elif version == (2, 0):
                    shape, fortran, dtype = npformat.read_array_header_2_0(member)
                else:
                    raise ValueError(f"unsupported npy version {version}")
                consumed = member.tell()
            if fortran or len(shape) != 1:
                raise ValueError("unexpected member layout")
            # The zip local header precedes the member payload; its name
            # and extra-field lengths live at fixed offsets 26 and 28.
            raw.seek(info.header_offset)
            local = raw.read(30)
            if local[:4] != b"PK\x03\x04":
                raise ValueError("bad local file header")
            name_len = int.from_bytes(local[26:28], "little")
            extra_len = int.from_bytes(local[28:30], "little")
            offset = info.header_offset + 30 + name_len + extra_len + consumed
            key = info.filename.removesuffix(".npy")
            if shape[0] == 0:
                out[key] = np.empty(shape, dtype=dtype)
            else:
                out[key] = np.memmap(
                    path, dtype=dtype, mode="r", offset=offset, shape=shape
                )
    return out


# ---------------------------------------------------------------------------
# Read surface.
# ---------------------------------------------------------------------------


@dataclass
class CommentColumns:
    """Deduplicated per-comment columns, in corpus (dict) order."""

    key: np.ndarray        # ordinal into comment_ids
    author: np.ndarray     # ordinal into authors
    url: np.ndarray        # ordinal into url_ids
    epoch: np.ndarray
    reply: np.ndarray
    shadow: np.ndarray     # ordinal into shadow_labels

    @property
    def n(self) -> int:
        return int(self.key.size)


@dataclass
class UrlColumns:
    """Deduplicated per-URL columns, in corpus (dict) order."""

    key: np.ndarray        # ordinal into url_ids
    str_ord: np.ndarray    # ordinal into url_strings
    up: np.ndarray
    down: np.ndarray
    net: np.ndarray        # up - down
    tld: np.ndarray        # ordinal into tlds, -1 = none
    domain: np.ndarray     # ordinal into domains, -1 = none
    scheme: np.ndarray     # ordinal into schemes
    multi: np.ndarray

    @property
    def n(self) -> int:
        return int(self.key.size)


@dataclass
class UserColumns:
    """Deduplicated per-user columns, in corpus (dict) order."""

    key: np.ndarray          # ordinal into usernames
    author: np.ndarray       # ordinal into authors
    has_perms: np.ndarray
    perm_mask: np.ndarray
    filter_mask: np.ndarray

    @property
    def n(self) -> int:
        return int(self.key.size)


class ColumnView:
    """Lazy, memoised columnar read surface over a sealed store.

    Log-level columns concatenate per-segment (memory-mapped) arrays
    plus the unsealed tail on first touch, per column.  Record-level
    views (:attr:`comments` / :attr:`urls` / :attr:`users`) deduplicate
    revision re-appends: for each key ordinal the *last* log row wins
    (final field values) while rows are ordered by *first* appearance,
    reproducing the store dicts' first-insertion order exactly.
    """

    def __init__(self, store: "CorpusStore") -> None:
        self._store = store
        self._chunks: list[dict] | None = None
        self._columns: dict[str, np.ndarray] = {}
        self._memo_comments: CommentColumns | None = None
        self._memo_urls: UrlColumns | None = None
        self._memo_users: UserColumns | None = None
        self._memo_per_author: np.ndarray | None = None
        self._memo_per_url: np.ndarray | None = None
        self._memo_url_groups: tuple[np.ndarray, np.ndarray] | None = None
        self._memo_author_groups: tuple[np.ndarray, np.ndarray] | None = None
        self._memo_score_rows: list | None = None
        self._memo_scores: dict[str, np.ndarray] = {}

    @property
    def tables(self) -> ColumnProjector:
        """The projector owning every intern table (read-only use)."""
        projector = self._store.projector
        if projector is None:
            raise RuntimeError("store was built with columns=False")
        return projector

    # -- log-level columns ---------------------------------------------

    def column(self, key: str) -> np.ndarray:
        """One concatenated log-order column (memoised)."""
        arr = self._columns.get(key)
        if arr is None:
            if self._chunks is None:
                self._chunks = self._store.column_chunks()
            parts = [chunk[key] for chunk in self._chunks if chunk[key].size]
            if not parts:
                arr = np.asarray([], dtype=_RECORD_DTYPES.get(key, np.str_))
            elif len(parts) == 1:
                arr = np.asarray(parts[0])
            else:
                arr = np.concatenate(parts)
            self._columns[key] = arr
        return arr

    # -- deduplicated record views -------------------------------------

    def _dedup(
        self, key_column: str, table_size: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """(ordinals in first-appearance order, last log row per ordinal)."""
        key = self.column(key_column)
        if key.size == 0:
            empty = np.asarray([], dtype=np.int64)
            return empty, empty
        rows = np.arange(key.size, dtype=np.int64)
        last = np.zeros(table_size, dtype=np.int64)
        last[key] = rows
        first = np.zeros(table_size, dtype=np.int64)
        first[key[::-1]] = rows[::-1]
        present = np.zeros(table_size, dtype=bool)
        present[key] = True
        ordinals = np.nonzero(present)[0]
        order = ordinals[np.argsort(first[ordinals], kind="stable")]
        return order, last[order]

    @property
    def comments(self) -> CommentColumns:
        memo = self._memo_comments
        if memo is None:
            order, rows = self._dedup(
                "comment_key", len(self.tables.comment_ids)
            )
            memo = CommentColumns(
                key=order,
                author=self.column("comment_author")[rows],
                url=self.column("comment_url")[rows],
                epoch=self.column("comment_epoch")[rows],
                reply=self.column("comment_reply")[rows],
                shadow=self.column("comment_shadow")[rows],
            )
            self._memo_comments = memo
        return memo

    @property
    def urls(self) -> UrlColumns:
        memo = self._memo_urls
        if memo is None:
            order, rows = self._dedup("url_key", len(self.tables.url_ids))
            up = self.column("url_up")[rows]
            down = self.column("url_down")[rows]
            memo = UrlColumns(
                key=order,
                str_ord=self.column("url_str")[rows],
                up=up,
                down=down,
                net=up - down,
                tld=self.column("url_tld")[rows],
                domain=self.column("url_domain")[rows],
                scheme=self.column("url_scheme")[rows],
                multi=self.column("url_multi")[rows],
            )
            self._memo_urls = memo
        return memo

    @property
    def users(self) -> UserColumns:
        memo = self._memo_users
        if memo is None:
            order, rows = self._dedup("user_key", len(self.tables.usernames))
            memo = UserColumns(
                key=order,
                author=self.column("user_author")[rows],
                has_perms=self.column("user_has_perms")[rows],
                perm_mask=self.column("user_perm_mask")[rows],
                filter_mask=self.column("user_filter_mask")[rows],
            )
            self._memo_users = memo
        return memo

    # -- shared reductions ---------------------------------------------

    def comments_per_author(self) -> np.ndarray:
        """Comment count per author ordinal (deduplicated comments)."""
        memo = self._memo_per_author
        if memo is None:
            memo = np.bincount(
                self.comments.author, minlength=len(self.tables.authors)
            )
            self._memo_per_author = memo
        return memo

    def comments_per_url_id(self) -> np.ndarray:
        """Comment count per url-id ordinal (deduplicated comments)."""
        memo = self._memo_per_url
        if memo is None:
            memo = np.bincount(
                self.comments.url, minlength=len(self.tables.url_ids)
            )
            self._memo_per_url = memo
        return memo

    def active_author_mask(self) -> np.ndarray:
        """Author ordinals with at least one crawled comment."""
        return self.comments_per_author() > 0

    def url_comment_order(self) -> tuple[np.ndarray, np.ndarray]:
        """(stable comment order grouped by url ordinal, group offsets).

        ``order[offsets[u]:offsets[u + 1]]`` indexes this view's
        deduplicated comments for url ordinal ``u``, preserving corpus
        order within the group.
        """
        memo = self._memo_url_groups
        if memo is None:
            order = np.argsort(self.comments.url, kind="stable")
            counts = self.comments_per_url_id()
            offsets = np.concatenate(
                [[0], np.cumsum(counts, dtype=np.int64)]
            )
            memo = (order, offsets)
            self._memo_url_groups = memo
        return memo

    def author_comment_order(self) -> tuple[np.ndarray, np.ndarray]:
        """(stable comment order grouped by author ordinal, group offsets).

        ``order[offsets[a]:offsets[a + 1]]`` indexes this view's
        deduplicated comments for author ordinal ``a``, preserving
        corpus order within the group — the author-side mirror of
        :meth:`url_comment_order`.
        """
        memo = self._memo_author_groups
        if memo is None:
            order = np.argsort(self.comments.author, kind="stable")
            counts = self.comments_per_author()
            offsets = np.concatenate(
                [[0], np.cumsum(counts, dtype=np.int64)]
            )
            memo = (order, offsets)
            self._memo_author_groups = memo
        return memo

    # -- score columns -------------------------------------------------

    def score_rows(self, score_store: Any) -> list:
        """Perspective score rows for every comment, in corpus order.

        The rows are the score store's own cached dicts (scoring is a
        pure function of the text), memoised once per view so repeated
        analyses share one pass.
        """
        rows = self._memo_score_rows
        if rows is None:
            rows = list(score_store.score_many(list(self._store.texts())))
            self._memo_score_rows = rows
        return rows

    def attribute_scores(self, score_store: Any, attribute: str) -> np.ndarray:
        """One attribute's scores as a float64 column, in corpus order."""
        arr = self._memo_scores.get(attribute)
        if arr is None:
            rows = self.score_rows(score_store)
            arr = np.asarray([row[attribute] for row in rows], dtype=float)
            self._memo_scores[attribute] = arr
        return arr


def columns_of(corpus: object) -> ColumnView | None:
    """The corpus's column view, or None when the dict path must serve.

    Returns None for legacy ``CrawlResult`` corpora, stores built with
    ``columns=False`` (the ``--no-columns`` oracle path), and stores
    that have not sealed yet.
    """
    getter = getattr(corpus, "column_view", None)
    if getter is None:
        return None
    view = getter()
    return view if isinstance(view, ColumnView) else None
