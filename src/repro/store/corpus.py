"""The segmented corpus store.

:class:`CorpusStore` replaces the in-memory :class:`~repro.crawler.
records.CrawlResult` monolith as the interface between the crawl, score,
and analyze stages.  It keeps the exact same access surface (``users`` /
``urls`` / ``comments`` dicts in first-insertion order, the same
secondary-index methods) while adding:

* an **append-only record log**: every ``add_*``/``touch_user`` call
  appends one canonical JSONL line (:mod:`repro.store.codecs`); replaying
  the log rebuilds the dicts bit-identically, because a dict upsert keeps
  the key's original position — exactly the semantics the crawl relies
  on.  Mutations (stage-4 author metadata, shadow labels) are revision
  re-appends, never in-place log edits.
* **size-bounded segments**: every ``segment_records`` lines the write
  buffer seals into an immutable segment.  With a ``store_dir`` the
  segment spills to disk (atomic write + manifest entry) and only its
  (name, count, sha256) reference travels in checkpoints — checkpoint
  cost becomes proportional to progress since the last tick.  Without a
  directory, sealed lines ride inline in the checkpoint payload (same
  format, same determinism, v2-era cost).
* **memoised secondary indexes** (``comments_by_url`` / ``by_author`` /
  the active-author set), built once after :meth:`seal` and shared by
  every §4 analysis; before sealing they are computed fresh per call, as
  ``CrawlResult`` always did.
* **streaming read views** (:meth:`iter_comments`, :meth:`texts`) so
  scoring no longer materializes every comment text into a list.
* a **columnar projection** (:mod:`repro.store.columns`): unless built
  with ``columns=False``, every sealed segment also spills typed numpy
  column arrays (``<name>.columns.npz``, sha256-manifested) and the
  sealed store exposes a :meth:`column_view` that the vectorized §4
  analyses consume.  The dict path stays authoritative — column files
  are derived data, re-projected from the verified JSONL when missing
  or corrupt.

The store deliberately does *not* import :mod:`repro.crawler.checkpoint`
payload helpers at class level — checkpoint v3 stores the snapshot as a
plain dict, and :meth:`restore_payload` dispatches on shape, so legacy
v2 "result" payloads load transparently.
"""

from __future__ import annotations

from dataclasses import replace
from pathlib import Path
from typing import Iterator

from repro.crawler.records import (
    CrawlResult,
    CrawledComment,
    CrawledUrl,
    CrawledUser,
)
from repro.store.codecs import (
    decode_line,
    encode_comment,
    encode_url,
    encode_user,
)
from repro.store.columns import (
    ColumnProjector,
    ColumnView,
    adopt_columns,
    heal_columns,
    load_columns,
)
from repro.store.segments import (
    SegmentRef,
    hash_lines,
    read_segment,
    segment_name,
    write_manifest,
    write_segment,
)

__all__ = [
    "Corpus",
    "CorpusStore",
    "SealedCorpusError",
    "STORE_FORMAT_VERSION",
    "iter_snapshot_lines",
]

#: Version tag of the store snapshot payload (checkpoint format v3).
STORE_FORMAT_VERSION = 3

#: Default records per sealed segment.
DEFAULT_SEGMENT_RECORDS = 4096


class SealedCorpusError(RuntimeError):
    """A write reached a store that has been sealed for analysis."""


class CorpusStore:
    """Append-only, segmented corpus store (see module docstring).

    Args:
        store_dir: spill directory for sealed segments; ``None`` keeps
            sealed segments inline (in memory and in checkpoints).
        segment_records: records per sealed segment (>= 1).
        columns: project sealed segments into columnar ``.npz`` arrays
            (``False`` is the ``--no-columns`` oracle mode: analyses
            fall back to the dict path, bit-identically).
    """

    def __init__(
        self,
        store_dir: str | Path | None = None,
        segment_records: int = DEFAULT_SEGMENT_RECORDS,
        columns: bool = True,
    ) -> None:
        if segment_records < 1:
            raise ValueError("segment_records must be >= 1")
        self.users: dict[str, CrawledUser] = {}
        self.urls: dict[str, CrawledUrl] = {}
        self.comments: dict[str, CrawledComment] = {}
        self.store_dir = Path(store_dir) if store_dir is not None else None
        self.segment_records = int(segment_records)
        self.columns = bool(columns)
        self._projector = ColumnProjector() if self.columns else None
        self._inline_columns: dict[str, dict] = {}
        #: columnar projection diagnostics (surfaced on report extras)
        self.column_counters = {
            "projected": 0,          # segments projected at seal
            "reused": 0,             # identical file already on disk
            "loads": 0,              # verified .npz loads into a view
            "fallbacks": 0,          # missing/corrupt file re-projected
            "hash_mismatches": 0,    # re-projection disagreed with manifest
            "view_cache_hits": 0,    # memoised view/chunks served again
        }
        self._refs: list[SegmentRef] = []
        self._inline_segments: dict[str, list[str]] = {}
        self._tail: list[str] = []
        self._sealed = False
        #: memoised post-seal index builds (tests assert == once per view)
        self.index_builds = 0
        self._memo_users_by_author: dict[str, CrawledUser] | None = None
        self._memo_by_url: dict[str, list[CrawledComment]] | None = None
        self._memo_by_author: dict[str, list[CrawledComment]] | None = None
        self._memo_active_ids: set[str] | None = None
        self._memo_active_users: list[CrawledUser] | None = None
        self._memo_chunks: list[dict] | None = None
        self._memo_view: ColumnView | None = None

    # ------------------------------------------------------------------
    # Write path.
    # ------------------------------------------------------------------

    def _guard(self) -> None:
        # Raised BEFORE any dict mutation: a rejected write must not
        # leak a record into the corpus the log never saw.
        if self._sealed:
            raise SealedCorpusError(
                "corpus store is sealed; mutation after the crawl stage "
                "would invalidate the shared analysis indexes"
            )

    def _append(self, line: str) -> None:
        self._tail.append(line)
        if len(self._tail) >= self.segment_records:
            self._seal_segment()

    def add_user(self, user: CrawledUser) -> None:
        """Record (or upsert) one user; appends a log line."""
        self._guard()
        self.users[user.username] = user
        if self._projector is not None:
            self._projector.observe_user(user)
        self._append(encode_user(user))

    def add_url(self, url: CrawledUrl) -> None:
        """Record (or upsert) one URL; appends a log line."""
        self._guard()
        self.urls[url.commenturl_id] = url
        if self._projector is not None:
            self._projector.observe_url(url)
        self._append(encode_url(url))

    def add_comment(self, comment: CrawledComment) -> None:
        """Record (or upsert) one comment; appends a log line."""
        self._guard()
        self.comments[comment.comment_id] = comment
        if self._projector is not None:
            self._projector.observe_comment(comment)
        self._append(encode_comment(comment))

    def touch_user(self, user: CrawledUser) -> None:
        """Re-append a user whose fields were mutated in place.

        The stage-4 metadata crawl fills ``language``/``permissions``/
        ``view_filters`` on already-recorded users; the revision line
        makes the log self-contained so replay reproduces the mutation.
        """
        self.add_user(user)

    def replay_line(self, line: str) -> None:
        """Append one already-encoded log line, upserting its record.

        The sharded crawl engine's deterministic merge streams worker
        log lines (in global record order) into the final store through
        this: the original bytes pass through untouched, so the merged
        segments hash identically to an unsharded run's, and the dict
        upsert keeps first-insertion positions exactly as ``add_*``
        would have.
        """
        self._guard()
        self._apply_line(line)
        self._append(line)

    def _seal_segment(self) -> None:
        lines, self._tail = self._tail, []
        name = segment_name(len(self._refs) + 1)
        arrays = None
        if self._projector is not None:
            arrays = self._projector.take_segment(len(lines))
        if self.store_dir is not None:
            ref = write_segment(self.store_dir, name, lines)
            if arrays is not None:
                sha, reused = adopt_columns(self.store_dir, name, arrays)
                ref = replace(ref, columns_sha256=sha)
                self.column_counters["reused" if reused else "projected"] += 1
        else:
            ref = SegmentRef(name=name, count=len(lines), sha256=hash_lines(lines))
            self._inline_segments[name] = lines
            if arrays is not None:
                self._inline_columns[name] = arrays
                self.column_counters["projected"] += 1
        self._refs.append(ref)
        if self.store_dir is not None:
            write_manifest(self.store_dir, self.segment_records, self._refs)

    def seal(self) -> "CorpusStore":
        """Freeze the store: no further writes; indexes become memoised."""
        self._sealed = True
        return self

    @property
    def sealed(self) -> bool:
        return self._sealed

    # ------------------------------------------------------------------
    # Log / segment accounting.
    # ------------------------------------------------------------------

    @property
    def segment_refs(self) -> list[SegmentRef]:
        """References of all sealed segments, in seal order (copy)."""
        return list(self._refs)

    @property
    def log_records(self) -> int:
        """Total log lines written (sealed + unsealed tail)."""
        return sum(ref.count for ref in self._refs) + len(self._tail)

    @property
    def tail_records(self) -> int:
        """Unsealed lines currently buffered (the per-tick checkpoint cost)."""
        return len(self._tail)

    # ------------------------------------------------------------------
    # Streaming read views.
    # ------------------------------------------------------------------

    def iter_users(self) -> Iterator[CrawledUser]:
        return iter(self.users.values())

    def iter_urls(self) -> Iterator[CrawledUrl]:
        return iter(self.urls.values())

    def iter_comments(self) -> Iterator[CrawledComment]:
        return iter(self.comments.values())

    def texts(self) -> Iterator[str]:
        """Every crawled comment text, streamed in corpus order."""
        return (c.text for c in self.comments.values())

    # ------------------------------------------------------------------
    # Secondary indexes (memoised once sealed).
    # ------------------------------------------------------------------

    def users_by_author_id(self) -> dict[str, CrawledUser]:
        if not self._sealed:
            return self._build_users_by_author()
        if self._memo_users_by_author is None:
            self.index_builds += 1
            self._memo_users_by_author = self._build_users_by_author()
        return self._memo_users_by_author

    def _build_users_by_author(self) -> dict[str, CrawledUser]:
        return {u.author_id: u for u in self.users.values()}

    def comments_by_url(self) -> dict[str, list[CrawledComment]]:
        if not self._sealed:
            return self._build_by_url()
        if self._memo_by_url is None:
            self.index_builds += 1
            self._memo_by_url = self._build_by_url()
        return self._memo_by_url

    def _build_by_url(self) -> dict[str, list[CrawledComment]]:
        grouped: dict[str, list[CrawledComment]] = {}
        for comment in self.comments.values():
            grouped.setdefault(comment.commenturl_id, []).append(comment)
        return grouped

    def comments_by_author(self) -> dict[str, list[CrawledComment]]:
        if not self._sealed:
            return self._build_by_author()
        if self._memo_by_author is None:
            self.index_builds += 1
            self._memo_by_author = self._build_by_author()
        return self._memo_by_author

    def _build_by_author(self) -> dict[str, list[CrawledComment]]:
        grouped: dict[str, list[CrawledComment]] = {}
        for comment in self.comments.values():
            grouped.setdefault(comment.author_id, []).append(comment)
        return grouped

    def active_author_ids(self) -> set[str]:
        """Author ids with at least one crawled comment (membership only)."""
        if not self._sealed:
            return {c.author_id for c in self.comments.values()}
        if self._memo_active_ids is None:
            self.index_builds += 1
            self._memo_active_ids = {
                c.author_id for c in self.comments.values()
            }
        return self._memo_active_ids

    def active_users(self) -> list[CrawledUser]:
        """Users with at least one crawled comment, in corpus order."""
        if not self._sealed:
            authors = self.active_author_ids()
            return [u for u in self.users.values() if u.author_id in authors]
        if self._memo_active_users is None:
            self.index_builds += 1
            authors = self.active_author_ids()
            self._memo_active_users = [
                u for u in self.users.values() if u.author_id in authors
            ]
        return self._memo_active_users

    def summary(self) -> dict[str, int]:
        return {
            "users": len(self.users),
            "urls": len(self.urls),
            "comments": len(self.comments),
            "active_users": len(self.active_users()),
        }

    # ------------------------------------------------------------------
    # Checkpoint snapshot / restore (format v3).
    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """The store's checkpoint-v3 payload.

        Sealed segments appear as references only when they live on
        disk; inline segments carry their lines (the data must live
        somewhere).  The unsealed tail always rides along, so the
        per-tick serialization cost with a ``store_dir`` is bounded by
        ``segment_records``, not corpus size.
        """
        sealed = []
        for ref in self._refs:
            entry = ref.to_payload()
            lines = self._inline_segments.get(ref.name)
            if lines is not None:
                entry["lines"] = lines
            sealed.append(entry)
        return {
            "version": STORE_FORMAT_VERSION,
            "segment_records": self.segment_records,
            "dir": str(self.store_dir) if self.store_dir is not None else None,
            "sealed": sealed,
            "tail": list(self._tail),
        }

    def restore_payload(self, payload: dict) -> None:
        """Load a corpus payload into this (empty, unsealed) store.

        Accepts either a v3 :meth:`snapshot` payload or a legacy
        ``result_to_payload`` document (checkpoint v1/v2) — the caller
        never needs to know which format a checkpoint carried.

        Raises:
            ValueError: malformed payload, unknown version, or a sealed
                segment that fails its count/hash verification.
        """
        if self._sealed:
            raise SealedCorpusError("cannot restore into a sealed store")
        if not isinstance(payload, dict):
            raise ValueError(
                f"store payload must be an object, got {type(payload).__name__}"
            )
        if "sealed" not in payload and "users" in payload:
            self._restore_result_payload(payload)
            return
        if payload.get("version") != STORE_FORMAT_VERSION:
            raise ValueError(
                f"unsupported store payload version {payload.get('version')!r}"
            )
        self._reset()
        # Resuming adopts the snapshot's segment size: a chain of
        # kill→resume legs must seal at the same record boundaries as
        # the uninterrupted run, whatever the current CLI flag says.
        self.segment_records = int(payload.get("segment_records", self.segment_records))
        payload_dir = payload.get("dir")
        for entry in payload.get("sealed") or []:
            if not isinstance(entry, dict):
                raise ValueError("sealed segment entry must be an object")
            ref = SegmentRef.from_payload(entry)
            raw_lines = entry.get("lines")
            if raw_lines is None:
                base = self.store_dir if self.store_dir is not None else payload_dir
                if base is None:
                    raise ValueError(
                        f"segment {ref.name} has no inline lines and the "
                        f"payload names no store directory"
                    )
                lines = read_segment(Path(base), ref)
            else:
                lines = [str(line) for line in raw_lines]
                if len(lines) != ref.count:
                    raise ValueError(
                        f"inline segment {ref.name} holds {len(lines)} "
                        f"records, reference says {ref.count}"
                    )
                digest = hash_lines(lines)
                if digest != ref.sha256:
                    raise ValueError(
                        f"inline segment {ref.name} content hash mismatch"
                    )
            for line in lines:
                self._apply_line(line)
            arrays = None
            if self._projector is not None:
                arrays = self._projector.take_segment(ref.count)
            if self.store_dir is not None:
                # Adopted by this store's directory (covers resuming an
                # inline checkpoint into a --store-dir run).
                write_segment(self.store_dir, ref.name, lines)
                if arrays is not None:
                    sha, reused = adopt_columns(self.store_dir, ref.name, arrays)
                    ref = replace(ref, columns_sha256=sha)
                    self.column_counters[
                        "reused" if reused else "projected"
                    ] += 1
            else:
                self._inline_segments[ref.name] = lines
                if arrays is not None:
                    self._inline_columns[ref.name] = arrays
                    self.column_counters["projected"] += 1
                if ref.columns_sha256 is not None:
                    # Inline stores carry no column files; the hash
                    # would dangle in re-snapshots.
                    ref = replace(ref, columns_sha256=None)
            self._refs.append(ref)
        if self.store_dir is not None and self._refs:
            write_manifest(self.store_dir, self.segment_records, self._refs)
        for raw in payload.get("tail") or []:
            line = str(raw)
            self._apply_line(line)
            self._append(line)

    def _restore_result_payload(self, payload: dict) -> None:
        """Replay a legacy ``result_to_payload`` document into the log."""
        from repro.crawler.checkpoint import result_from_payload

        legacy = result_from_payload(payload)
        self._reset()
        for user in legacy.users.values():
            self.add_user(user)
        for url in legacy.urls.values():
            self.add_url(url)
        for comment in legacy.comments.values():
            self.add_comment(comment)

    def _reset(self) -> None:
        self.users.clear()
        self.urls.clear()
        self.comments.clear()
        self._refs = []
        self._inline_segments = {}
        self._tail = []
        self._inline_columns = {}
        self._projector = ColumnProjector() if self.columns else None
        self._memo_chunks = None
        self._memo_view = None

    def _apply_line(self, line: str) -> None:
        kind, record = decode_line(line)
        if isinstance(record, CrawledUser):
            self.users[record.username] = record
        elif isinstance(record, CrawledUrl):
            self.urls[record.commenturl_id] = record
        elif isinstance(record, CrawledComment):
            self.comments[record.comment_id] = record
        if self._projector is not None:
            self._projector.observe(kind, record)

    # ------------------------------------------------------------------
    # Columnar read surface.
    # ------------------------------------------------------------------

    @property
    def projector(self) -> ColumnProjector | None:
        """The column projector (None when built with ``columns=False``)."""
        return self._projector

    def column_chunks(self) -> list[dict]:
        """Per-segment column arrays plus the unsealed tail.

        Spilled segments are hash-verified and memory-mapped; a missing
        or corrupt column file falls back to re-projection from the
        (itself hash-verified) segment JSONL, healing the file on disk
        when the recomputed bytes match the manifest.  Memoised once the
        store is sealed.
        """
        projector = self._projector
        if projector is None:
            raise RuntimeError("store was built with columns=False")
        if self._memo_chunks is not None:
            self.column_counters["view_cache_hits"] += 1
            return self._memo_chunks
        chunks: list[dict] = []
        for index, ref in enumerate(self._refs):
            arrays = self._inline_columns.get(ref.name)
            if arrays is None and self.store_dir is not None:
                arrays = load_columns(self.store_dir, ref)
                if arrays is not None:
                    self.column_counters["loads"] += 1
            if arrays is None:
                lines = self._inline_segments.get(ref.name)
                if lines is None:
                    if self.store_dir is None:
                        raise RuntimeError(
                            f"segment {ref.name} has neither inline lines "
                            f"nor a store directory to read from"
                        )
                    lines = read_segment(self.store_dir, ref)
                arrays = projector.project_lines(lines, index)
                self.column_counters["fallbacks"] += 1
                if self.store_dir is not None and ref.columns_sha256 is not None:
                    healed = heal_columns(
                        self.store_dir, ref.name, arrays, ref.columns_sha256
                    )
                    if not healed:
                        self.column_counters["hash_mismatches"] += 1
            chunks.append(arrays)
        chunks.append(projector.peek_tail())
        if self._sealed:
            self._memo_chunks = chunks
        return chunks

    def column_view(self) -> ColumnView | None:
        """The columnar analysis surface (sealed, columns-enabled stores).

        None before :meth:`seal` and for ``columns=False`` stores — the
        analyses then keep using the dict-path oracle.
        """
        if self._projector is None or not self._sealed:
            return None
        if self._memo_view is None:
            self._memo_view = ColumnView(self)
        else:
            self.column_counters["view_cache_hits"] += 1
        return self._memo_view

    def column_stats(self) -> dict:
        """Projection/cache counters for report extras and benchmarks."""
        return {
            "enabled": self._projector is not None,
            "segments": len(self._refs),
            **self.column_counters,
        }

    # ------------------------------------------------------------------
    # Interop.
    # ------------------------------------------------------------------

    def to_result(self) -> CrawlResult:
        """A plain :class:`CrawlResult` sharing this store's records."""
        return CrawlResult(
            users=dict(self.users),
            urls=dict(self.urls),
            comments=dict(self.comments),
        )


def iter_snapshot_lines(payload: dict) -> Iterator[str]:
    """Stream every log line of a :meth:`CorpusStore.snapshot` payload.

    Sealed segments yield first (in seal order), then the unsealed
    tail — i.e. exact log order.  Inline segments are hash-verified;
    spilled segments are read (and verified) from the payload's ``dir``.
    The sharded merge uses this to consume worker snapshots without
    instantiating a store per shard.

    Raises:
        ValueError: malformed payload, count/hash mismatch, or a
            spilled segment with no directory to read from.
    """
    if not isinstance(payload, dict):
        raise ValueError(
            f"store payload must be an object, got {type(payload).__name__}"
        )
    if payload.get("version") != STORE_FORMAT_VERSION:
        raise ValueError(
            f"unsupported store payload version {payload.get('version')!r}"
        )
    base = payload.get("dir")
    for entry in payload.get("sealed") or []:
        if not isinstance(entry, dict):
            raise ValueError("sealed segment entry must be an object")
        ref = SegmentRef.from_payload(entry)
        raw_lines = entry.get("lines")
        if raw_lines is None:
            if base is None:
                raise ValueError(
                    f"segment {ref.name} has no inline lines and the "
                    f"payload names no store directory"
                )
            lines = read_segment(Path(base), ref)
        else:
            lines = [str(line) for line in raw_lines]
            if len(lines) != ref.count or hash_lines(lines) != ref.sha256:
                raise ValueError(
                    f"inline segment {ref.name} failed verification"
                )
        yield from lines
    for raw in payload.get("tail") or []:
        yield str(raw)


#: What the analyses consume: the store, or the legacy in-memory result
#: (same duck-typed access surface).  Defined here, not in the package
#: ``__init__``, so crawler-side modules can import it mid-package-init.
Corpus = CorpusStore | CrawlResult
