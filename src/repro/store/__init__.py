"""repro.store — the segmented, append-only corpus store.

Public surface:

* :class:`CorpusStore` — the crawl/score/analyze corpus interface
  (append log, size-bounded segments, optional spill-to-disk, memoised
  post-seal indexes, streaming views, checkpoint-v3 snapshots).
* ``Corpus`` — the type every §4 analysis accepts: a ``CorpusStore`` or
  a legacy in-memory :class:`~repro.crawler.records.CrawlResult` (the
  two expose the same duck-typed access surface).
* the columnar projection (:class:`ColumnView`, :func:`columns_of`,
  :data:`PROJECTION_SPEC`) that vectorized §4 analyses dispatch on.
* the canonical JSONL codecs and segment/manifest helpers.
"""

from __future__ import annotations

from repro.store.codecs import (
    decode_comment,
    decode_line,
    decode_url,
    decode_user,
    encode_comment,
    encode_record,
    encode_url,
    encode_user,
)
from repro.store.columns import (
    PROJECTION_SPEC,
    ColumnProjector,
    ColumnView,
    columns_of,
    load_columns,
)
from repro.store.corpus import (
    STORE_FORMAT_VERSION,
    Corpus,
    CorpusStore,
    SealedCorpusError,
    iter_snapshot_lines,
)
from repro.store.segments import (
    MANIFEST_NAME,
    SegmentRef,
    columns_path,
    hash_lines,
    load_manifest,
    read_segment,
    segment_name,
    segment_path,
    write_manifest,
    write_segment,
)

__all__ = [
    "ColumnProjector",
    "ColumnView",
    "Corpus",
    "CorpusStore",
    "MANIFEST_NAME",
    "PROJECTION_SPEC",
    "STORE_FORMAT_VERSION",
    "SealedCorpusError",
    "SegmentRef",
    "columns_of",
    "columns_path",
    "load_columns",
    "decode_comment",
    "decode_line",
    "decode_url",
    "decode_user",
    "encode_comment",
    "encode_record",
    "encode_url",
    "encode_user",
    "hash_lines",
    "iter_snapshot_lines",
    "load_manifest",
    "read_segment",
    "segment_name",
    "segment_path",
    "write_manifest",
    "write_segment",
]
