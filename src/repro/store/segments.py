"""Segment files and the store manifest.

A sealed segment is an immutable JSONL file of exactly ``count`` encoded
records whose bytes are covered by a SHA-256 content hash; the manifest
lists every sealed segment in order.  Checkpoint format v3 records only
these (name, count, hash) references plus the unsealed tail, so a
checkpoint tick costs O(progress since the last tick), not O(corpus).

A segment may additionally carry a columnar projection — a ``.npz``
sibling file (:mod:`repro.store.columns`) whose SHA-256 travels in the
same reference as ``columns_sha256``.  The column file is derived data:
when it is missing or fails verification the store re-projects it from
the hash-verified JSONL, so older manifests without the field stay
loadable.
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass
from pathlib import Path

from repro.crawler.checkpoint import atomic_write_json, atomic_write_text

__all__ = [
    "MANIFEST_NAME",
    "SegmentRef",
    "columns_path",
    "hash_lines",
    "load_manifest",
    "read_segment",
    "segment_name",
    "segment_path",
    "write_manifest",
    "write_segment",
]

MANIFEST_NAME = "manifest.json"
_MANIFEST_VERSION = 1

# Segment names are generated, never user input — but refs round-trip
# through checkpoint documents, so reject anything that could traverse
# out of the store directory when resolved back to a path.
_NAME_RE = re.compile(r"^segment-\d{6}$")


def segment_name(ordinal: int) -> str:
    """The canonical name of the ``ordinal``-th sealed segment (1-based)."""
    return f"segment-{ordinal:06d}"


def segment_path(store_dir: Path, name: str) -> Path:
    return Path(store_dir) / f"{name}.jsonl"


def columns_path(store_dir: Path, name: str) -> Path:
    """Where a segment's columnar projection (``.npz``) lives on disk."""
    return Path(store_dir) / f"{name}.columns.npz"


def hash_lines(lines: list[str]) -> str:
    """SHA-256 over the segment's exact on-disk bytes."""
    body = "".join(line + "\n" for line in lines)
    return hashlib.sha256(body.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class SegmentRef:
    """One sealed segment: its name, record count, and content hashes.

    ``columns_sha256`` covers the segment's derived ``.npz`` column file
    when one has been spilled to disk; ``None`` means no columnar
    projection is manifested (inline store, columns disabled, or a
    pre-columnar manifest).
    """

    name: str
    count: int
    sha256: str
    columns_sha256: str | None = None

    def to_payload(self) -> dict:
        payload = {
            "name": self.name, "count": self.count, "sha256": self.sha256,
        }
        if self.columns_sha256 is not None:
            payload["columns_sha256"] = self.columns_sha256
        return payload

    @classmethod
    def from_payload(cls, payload: dict) -> "SegmentRef":
        """Parse a segment reference.

        Raises:
            ValueError: malformed payload or unsafe segment name.
        """
        if not isinstance(payload, dict):
            raise ValueError(
                f"segment ref must be an object, got {type(payload).__name__}"
            )
        try:
            columns = payload.get("columns_sha256")
            ref = cls(
                name=str(payload["name"]),
                count=int(payload["count"]),
                sha256=str(payload["sha256"]),
                columns_sha256=str(columns) if columns is not None else None,
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"malformed segment ref: {exc!r}") from exc
        if not _NAME_RE.match(ref.name):
            raise ValueError(f"invalid segment name {ref.name!r}")
        if ref.count < 0:
            raise ValueError(f"negative segment count {ref.count}")
        return ref


def write_segment(store_dir: Path, name: str, lines: list[str]) -> SegmentRef:
    """Write one sealed segment atomically; returns its reference."""
    store_dir = Path(store_dir)
    store_dir.mkdir(parents=True, exist_ok=True)
    atomic_write_text(
        segment_path(store_dir, name), "".join(line + "\n" for line in lines)
    )
    return SegmentRef(name=name, count=len(lines), sha256=hash_lines(lines))


def read_segment(store_dir: Path, ref: SegmentRef) -> list[str]:
    """Read a sealed segment back, verifying count and content hash.

    Raises:
        ValueError: the file is missing, truncated, or its bytes do not
            match the reference hash (a torn or tampered segment must
            never be silently replayed into a resumed corpus).
    """
    path = segment_path(Path(store_dir), ref.name)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise ValueError(f"unreadable segment {ref.name}: {exc}") from exc
    lines = text.splitlines()
    if len(lines) != ref.count:
        raise ValueError(
            f"segment {ref.name} holds {len(lines)} records, "
            f"reference says {ref.count}"
        )
    digest = hash_lines(lines)
    if digest != ref.sha256:
        raise ValueError(
            f"segment {ref.name} content hash mismatch "
            f"(expected {ref.sha256}, got {digest})"
        )
    return lines


def write_manifest(
    store_dir: Path, segment_records: int, refs: list[SegmentRef]
) -> None:
    """Write the store manifest atomically (one entry per sealed segment)."""
    store_dir = Path(store_dir)
    store_dir.mkdir(parents=True, exist_ok=True)
    atomic_write_json(
        store_dir / MANIFEST_NAME,
        {
            "version": _MANIFEST_VERSION,
            "segment_records": segment_records,
            "total_records": sum(ref.count for ref in refs),
            "segments": [ref.to_payload() for ref in refs],
        },
    )


def load_manifest(store_dir: Path) -> dict:
    """Read and validate the store manifest.

    Returns the manifest payload with ``segments`` parsed into
    :class:`SegmentRef` instances.

    Raises:
        ValueError: missing, unparsable, or wrong-version manifest.
    """
    import json

    path = Path(store_dir) / MANIFEST_NAME
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise ValueError(f"unreadable manifest: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ValueError(f"manifest is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ValueError("manifest must be a JSON object")
    if payload.get("version") != _MANIFEST_VERSION:
        raise ValueError(
            f"unsupported manifest version {payload.get('version')!r}"
        )
    refs = [SegmentRef.from_payload(entry) for entry in payload.get("segments", [])]
    return {**payload, "segments": refs}
