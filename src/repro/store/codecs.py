"""Canonical JSONL codecs for store-persisted records.

One record per line, kind-tagged, compact separators, ASCII-escaped —
so a segment's bytes are a pure function of its records and the
bit-identity tests can compare segments (and their hashes) directly.

Every field of :class:`~repro.crawler.records.CrawledUser`,
:class:`~repro.crawler.records.CrawledUrl` and
:class:`~repro.crawler.records.CrawledComment` must appear in its
``encode_*``/``decode_*`` pair below; the CHK002 project checker in
:mod:`repro.analysis` enforces that at lint time, exactly as CHK001
does for the checkpoint serializers.
"""

from __future__ import annotations

import json

from repro.crawler.records import CrawledComment, CrawledUrl, CrawledUser

__all__ = [
    "decode_comment",
    "decode_line",
    "decode_url",
    "decode_user",
    "encode_comment",
    "encode_record",
    "encode_url",
    "encode_user",
]

# Line tags: which decoder a stored line belongs to.
KIND_USER = "user"
KIND_URL = "url"
KIND_COMMENT = "comment"


def _dumps(payload: dict) -> str:
    """Canonical one-line JSON: compact separators, ASCII escapes."""
    return json.dumps(payload, separators=(",", ":"), ensure_ascii=True)


def encode_user(user: CrawledUser) -> str:
    """One ``CrawledUser`` as a canonical JSONL line."""
    return _dumps({
        "kind": KIND_USER,
        "username": user.username,
        "author_id": user.author_id,
        "display_name": user.display_name,
        "bio": user.bio,
        "commented_url_ids": list(user.commented_url_ids),
        "language": user.language,
        "permissions": dict(user.permissions),
        "view_filters": dict(user.view_filters),
    })


def decode_user(payload: dict) -> CrawledUser:
    """Rebuild a ``CrawledUser`` from a decoded line payload."""
    return CrawledUser(
        username=payload["username"],
        author_id=payload["author_id"],
        display_name=payload.get("display_name", ""),
        bio=payload.get("bio", ""),
        commented_url_ids=list(payload.get("commented_url_ids", [])),
        language=payload.get("language"),
        permissions=dict(payload.get("permissions", {})),
        view_filters=dict(payload.get("view_filters", {})),
    )


def encode_url(url: CrawledUrl) -> str:
    """One ``CrawledUrl`` as a canonical JSONL line."""
    return _dumps({
        "kind": KIND_URL,
        "commenturl_id": url.commenturl_id,
        "url": url.url,
        "title": url.title,
        "description": url.description,
        "upvotes": url.upvotes,
        "downvotes": url.downvotes,
    })


def decode_url(payload: dict) -> CrawledUrl:
    """Rebuild a ``CrawledUrl`` from a decoded line payload."""
    return CrawledUrl(
        commenturl_id=payload["commenturl_id"],
        url=payload["url"],
        title=payload.get("title", ""),
        description=payload.get("description", ""),
        upvotes=int(payload.get("upvotes", 0)),
        downvotes=int(payload.get("downvotes", 0)),
    )


def encode_comment(comment: CrawledComment) -> str:
    """One ``CrawledComment`` as a canonical JSONL line."""
    return _dumps({
        "kind": KIND_COMMENT,
        "comment_id": comment.comment_id,
        "author_id": comment.author_id,
        "commenturl_id": comment.commenturl_id,
        "text": comment.text,
        "parent_comment_id": comment.parent_comment_id,
        "created_at_epoch": comment.created_at_epoch,
        "shadow_label": comment.shadow_label,
    })


def decode_comment(payload: dict) -> CrawledComment:
    """Rebuild a ``CrawledComment`` from a decoded line payload."""
    return CrawledComment(
        comment_id=payload["comment_id"],
        author_id=payload["author_id"],
        commenturl_id=payload["commenturl_id"],
        text=payload["text"],
        parent_comment_id=payload.get("parent_comment_id"),
        created_at_epoch=int(payload.get("created_at_epoch", 0)),
        shadow_label=payload.get("shadow_label"),
    )


_DECODERS = {
    KIND_USER: decode_user,
    KIND_URL: decode_url,
    KIND_COMMENT: decode_comment,
}


def encode_record(record: object) -> str:
    """Encode any store-persisted record by type.

    Raises:
        TypeError: the record type has no registered codec.
    """
    if isinstance(record, CrawledUser):
        return encode_user(record)
    if isinstance(record, CrawledUrl):
        return encode_url(record)
    if isinstance(record, CrawledComment):
        return encode_comment(record)
    raise TypeError(
        f"no store codec for record type {type(record).__name__}"
    )


def decode_line(line: str) -> tuple[str, object]:
    """Decode one stored line into ``(kind, record)``.

    Raises:
        ValueError: the line is not valid JSON, not an object, carries an
            unknown kind tag, or is missing required fields.
    """
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ValueError(f"store line is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ValueError(
            f"store line must be an object, got {type(payload).__name__}"
        )
    kind = payload.get("kind")
    decoder = _DECODERS.get(kind)
    if decoder is None:
        raise ValueError(f"unknown store record kind {kind!r}")
    try:
        return kind, decoder(payload)
    except (KeyError, TypeError, AttributeError) as exc:
        raise ValueError(f"malformed store line: {exc!r}") from exc
