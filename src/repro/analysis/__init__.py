"""Determinism & concurrency lint suite (``python -m repro.analysis``).

The reproduction's headline guarantee — corpora, stats and checkpoints
bit-identical across ``--connections 1/4/8``, across kill→resume chains
and across ``--workers`` scoring — rests on code-level invariants that
no runtime test can exhaustively cover:

* no module reads wall-clock time (everything paces itself on an
  injected :class:`~repro.net.clock.Clock`);
* no unseeded randomness (every generator descends from the world seed);
* no unordered ``set``/``frozenset`` iteration on a path that reaches
  corpus, checkpoint, or report bytes;
* shared stats objects are only mutated through their lock-guarded APIs;
* every field of a checkpointed dataclass is registered in its
  serialization schema (silent resume drift otherwise).

This package parses the tree with :mod:`ast` and mechanically enforces
those invariants as a catalog of repo-specific checkers (see
:data:`repro.analysis.checkers.CATALOG`).  Findings can be suppressed
per line (``# repro: allow DET003 <reason>``) or accepted wholesale in a
committed baseline file; anything new fails CI.
"""

from repro.analysis.baseline import Baseline
from repro.analysis.checkers import CATALOG
from repro.analysis.engine import (
    Finding,
    ParsedModule,
    analyze_paths,
    analyze_source,
    iter_python_files,
)

__all__ = [
    "Baseline",
    "CATALOG",
    "Finding",
    "ParsedModule",
    "analyze_paths",
    "analyze_source",
    "iter_python_files",
]
