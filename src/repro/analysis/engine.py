"""Analysis engine: parsing, suppression comments, and the run loop.

A :class:`ParsedModule` bundles one file's source, AST and per-line
suppressions; :func:`analyze_paths` parses every file once, runs each
checker from the catalog over each module (plus the project-level pass
over all modules together), applies suppressions and the baseline, and
returns the surviving findings sorted by location.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Sequence

from repro.analysis.baseline import Baseline

__all__ = [
    "Finding",
    "ParsedModule",
    "Suppression",
    "analyze_paths",
    "analyze_source",
    "iter_python_files",
]

# ``# repro: allow DET003 <reason>`` — one or more codes, comma-separated,
# then a mandatory free-text reason (suppressions without a reason are
# themselves reported, as SUP001).
_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*allow\s+([A-Z]+\d{3}(?:\s*,\s*[A-Z]+\d{3})*)(.*)$"
)


@dataclass(frozen=True)
class Finding:
    """One checker hit.

    Attributes:
        code: stable checker code ("DET001", ...).
        path: file path as reported (relative when possible).
        line: 1-based line of the offending node.
        col: 0-based column.
        message: what is wrong, specifically.
        hint: the checker's fix-it hint.
        line_text: the stripped source line (baseline fingerprint).
    """

    code: str
    path: str
    line: int
    col: int
    message: str
    hint: str
    line_text: str = ""

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1} {self.code} {self.message}"

    def to_dict(self) -> dict:
        return {
            "code": self.code,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "hint": self.hint,
            "line_text": self.line_text,
        }


@dataclass
class Suppression:
    """One ``# repro: allow`` comment."""

    line: int
    codes: tuple[str, ...]
    reason: str
    used: bool = False


@dataclass
class ParsedModule:
    """One parsed source file, ready for checkers."""

    path: str
    source: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)
    suppressions: list[Suppression] = field(default_factory=list)

    @classmethod
    def from_source(cls, source: str, path: str) -> "ParsedModule":
        """Parse source text; raises SyntaxError on unparsable input."""
        tree = ast.parse(source, filename=path)
        module = cls(
            path=path,
            source=source,
            tree=tree,
            lines=source.splitlines(),
        )
        module.suppressions = list(_parse_suppressions(source))
        return module

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def finding(
        self, code: str, node: ast.AST, message: str, hint: str
    ) -> Finding:
        """Build a finding anchored at ``node``."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            code=code,
            path=self.path,
            line=line,
            col=col,
            message=message,
            hint=hint,
            line_text=self.line_text(line),
        )

    def is_suppressed(self, finding: Finding) -> bool:
        """True when an in-scope suppression covers the finding.

        A suppression covers its own physical line and, when it is a
        standalone comment line, the next line — so wide expressions can
        carry the annotation just above instead of overflowing the line.
        """
        for suppression in self.suppressions:
            if finding.code not in suppression.codes:
                continue
            if not suppression.reason:
                continue   # reasonless suppressions never fire (SUP001)
            if suppression.line == finding.line:
                suppression.used = True
                return True
            own_line = self.line_text(suppression.line)
            if own_line.startswith("#") and suppression.line + 1 == finding.line:
                suppression.used = True
                return True
        return False


def _parse_suppressions(source: str) -> Iterator[Suppression]:
    """Scan comments for ``# repro: allow`` annotations via tokenize."""
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(token.string)
            if match is None:
                continue
            codes = tuple(
                code.strip() for code in match.group(1).split(",")
            )
            yield Suppression(
                line=token.start[0],
                codes=codes,
                reason=match.group(2).strip(),
            )
    except tokenize.TokenError:
        return


def iter_python_files(paths: Sequence[str | Path]) -> Iterator[Path]:
    """Expand files/directories into a sorted stream of ``*.py`` files."""
    seen: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            seen.extend(
                p for p in path.rglob("*.py") if "__pycache__" not in p.parts
            )
        elif path.suffix == ".py":
            seen.append(path)
        else:
            raise FileNotFoundError(f"not a python file or directory: {path}")
    return iter(sorted(set(seen), key=lambda p: str(p)))


def _display_path(path: Path, root: Path | None) -> str:
    """Path as reported in findings: root-relative posix when possible."""
    resolved = path.resolve()
    base = (root or Path.cwd()).resolve()
    try:
        return resolved.relative_to(base).as_posix()
    except ValueError:
        return path.as_posix()


def _run_catalog(modules: list[ParsedModule]) -> list[Finding]:
    from repro.analysis.checkers import CATALOG, PROJECT_CATALOG

    findings: list[Finding] = []
    for module in modules:
        for checker in CATALOG:
            findings.extend(checker.check(module))
        findings.extend(_suppression_hygiene(module))
    for checker in PROJECT_CATALOG:
        findings.extend(checker.check_project(modules))
    kept = []
    by_path = {module.path: module for module in modules}
    for finding in findings:
        module = by_path.get(finding.path)
        if module is not None and module.is_suppressed(finding):
            continue
        kept.append(finding)
    kept.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return kept


def _suppression_hygiene(module: ParsedModule) -> Iterator[Finding]:
    """SUP001: suppressions must carry a reason and known codes."""
    from repro.analysis.checkers import known_codes

    catalog = known_codes()
    for suppression in module.suppressions:
        anchor = ast.Module(body=[], type_ignores=[])
        anchor.lineno = suppression.line          # type: ignore[attr-defined]
        anchor.col_offset = 0                     # type: ignore[attr-defined]
        if not suppression.reason:
            yield module.finding(
                "SUP001",
                anchor,
                f"suppression of {', '.join(suppression.codes)} has no "
                f"reason — write '# repro: allow {suppression.codes[0]} "
                f"<why this is safe>'",
                "a reasonless suppression never fires; state why the "
                "finding is acceptable",
            )
        unknown = [c for c in suppression.codes if c not in catalog]
        if unknown:
            yield module.finding(
                "SUP001",
                anchor,
                f"suppression names unknown checker code(s): "
                f"{', '.join(unknown)}",
                "use a code from `python -m repro.analysis --list-checkers`",
            )


def analyze_source(
    source: str, path: str = "<string>"
) -> list[Finding]:
    """Run the full per-module catalog over one source string.

    Project-level checkers (CHK001) need the whole tree and are skipped.
    """
    module = ParsedModule.from_source(source, path)
    findings: list[Finding] = []
    from repro.analysis.checkers import CATALOG

    for checker in CATALOG:
        findings.extend(checker.check(module))
    findings.extend(_suppression_hygiene(module))
    kept = [f for f in findings if not module.is_suppressed(f)]
    kept.sort(key=lambda f: (f.line, f.col, f.code))
    return kept


def analyze_paths(
    paths: Sequence[str | Path],
    baseline: Baseline | None = None,
    root: str | Path | None = None,
) -> list[Finding]:
    """Parse and check every file under ``paths``.

    Args:
        paths: files and/or directories.
        baseline: accepted pre-existing findings to subtract.
        root: base for relative finding paths (default: cwd).

    Returns:
        New findings (not suppressed, not baselined), sorted by location.

    Raises:
        SyntaxError: a file does not parse (the tree must at least
            compile before it can be linted).
    """
    root_path = Path(root) if root is not None else None
    modules = []
    for file_path in iter_python_files(paths):
        source = file_path.read_text(encoding="utf-8")
        modules.append(
            ParsedModule.from_source(
                source, _display_path(file_path, root_path)
            )
        )
    findings = _run_catalog(modules)
    if baseline is not None:
        findings = baseline.subtract(findings)
    return findings
