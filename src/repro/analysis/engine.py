"""Analysis engine: parsing, suppression comments, and the run loop.

A :class:`ParsedModule` bundles one file's source, AST and per-line
suppressions; :func:`analyze_paths` parses every file once, runs each
checker from the catalog over each module (plus the project-level pass
over all modules together), applies suppressions and the baseline, and
returns the surviving findings sorted by location.
"""

from __future__ import annotations

import ast
import hashlib
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Sequence

from repro.analysis.baseline import Baseline, BaselineEntry

__all__ = [
    "AnalysisReport",
    "Finding",
    "ParsedModule",
    "Suppression",
    "analyze_paths",
    "analyze_paths_report",
    "analyze_source",
    "iter_python_files",
    "parse_modules",
]

# ``# repro: allow DET003 <reason>`` — one or more codes, comma-separated,
# then a mandatory free-text reason (suppressions without a reason are
# themselves reported, as SUP001).  Anchored to the start of the comment
# token so prose *mentioning* the syntax (like this block) never
# registers as a suppression.
_SUPPRESS_RE = re.compile(
    r"^#\s*repro:\s*allow\s+([A-Z]+\d{3}(?:\s*,\s*[A-Z]+\d{3})*)(.*)$"
)


@dataclass(frozen=True)
class Finding:
    """One checker hit.

    Attributes:
        code: stable checker code ("DET001", ...).
        path: file path as reported (relative when possible).
        line: 1-based line of the offending node.
        col: 0-based column.
        message: what is wrong, specifically.
        hint: the checker's fix-it hint.
        line_text: the stripped source line (baseline fingerprint).
        context_hash: path-independent digest of the code plus the
            surrounding stripped lines (baseline v2 fingerprint).
    """

    code: str
    path: str
    line: int
    col: int
    message: str
    hint: str
    line_text: str = ""
    context_hash: str = ""

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1} {self.code} {self.message}"

    def to_dict(self) -> dict:
        return {
            "code": self.code,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "hint": self.hint,
            "line_text": self.line_text,
            "context_hash": self.context_hash,
        }


@dataclass
class Suppression:
    """One ``# repro: allow`` comment."""

    line: int
    codes: tuple[str, ...]
    reason: str
    used: bool = False


@dataclass
class ParsedModule:
    """One parsed source file, ready for checkers."""

    path: str
    source: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)
    suppressions: list[Suppression] = field(default_factory=list)

    @classmethod
    def from_source(cls, source: str, path: str) -> "ParsedModule":
        """Parse source text; raises SyntaxError on unparsable input."""
        tree = ast.parse(source, filename=path)
        module = cls(
            path=path,
            source=source,
            tree=tree,
            lines=source.splitlines(),
        )
        module.suppressions = list(_parse_suppressions(source))
        return module

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def context_hash(self, code: str, line: int) -> str:
        """Baseline-v2 fingerprint: code + surrounding stripped lines.

        Deliberately excludes the path so renames/moves keep their
        accepted findings covered.
        """
        digest = hashlib.sha256(
            "\n".join((
                code,
                self.line_text(line - 1),
                self.line_text(line),
                self.line_text(line + 1),
            )).encode("utf-8")
        )
        return digest.hexdigest()[:16]

    def finding(
        self, code: str, node: ast.AST, message: str, hint: str
    ) -> Finding:
        """Build a finding anchored at ``node``."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return self.finding_at(code, line, col, message, hint)

    def finding_at(
        self, code: str, line: int, col: int, message: str, hint: str
    ) -> Finding:
        """Build a finding anchored at an explicit line/col."""
        return Finding(
            code=code,
            path=self.path,
            line=line,
            col=col,
            message=message,
            hint=hint,
            line_text=self.line_text(line),
            context_hash=self.context_hash(code, line),
        )

    def is_suppressed(self, finding: Finding) -> bool:
        """True when an in-scope suppression covers the finding.

        A suppression covers its own physical line and, when it is a
        standalone comment line, the next line — so wide expressions can
        carry the annotation just above instead of overflowing the line.
        """
        for suppression in self.suppressions:
            if finding.code not in suppression.codes:
                continue
            if not suppression.reason:
                continue   # reasonless suppressions never fire (SUP001)
            if suppression.line == finding.line:
                suppression.used = True
                return True
            own_line = self.line_text(suppression.line)
            if own_line.startswith("#") and suppression.line + 1 == finding.line:
                suppression.used = True
                return True
        return False


def _parse_suppressions(source: str) -> Iterator[Suppression]:
    """Scan comments for ``# repro: allow`` annotations via tokenize."""
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(token.string)
            if match is None:
                continue
            codes = tuple(
                code.strip() for code in match.group(1).split(",")
            )
            yield Suppression(
                line=token.start[0],
                codes=codes,
                reason=match.group(2).strip(),
            )
    except tokenize.TokenError:
        return


def iter_python_files(paths: Sequence[str | Path]) -> Iterator[Path]:
    """Expand files/directories into a sorted stream of ``*.py`` files."""
    seen: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            seen.extend(
                p for p in path.rglob("*.py") if "__pycache__" not in p.parts
            )
        elif path.suffix == ".py":
            seen.append(path)
        else:
            raise FileNotFoundError(f"not a python file or directory: {path}")
    return iter(sorted(set(seen), key=lambda p: str(p)))


def _display_path(path: Path, root: Path | None) -> str:
    """Path as reported in findings: root-relative posix when possible."""
    resolved = path.resolve()
    base = (root or Path.cwd()).resolve()
    try:
        return resolved.relative_to(base).as_posix()
    except ValueError:
        return path.as_posix()


def _worker_check(payload: tuple[str, str]) -> list[dict]:
    """Process-pool body: per-module catalog over one source text.

    Takes/returns only picklable primitives.  Suppressions, project
    checkers and sorting stay in the parent so parallel output is
    byte-identical to serial.
    """
    source, path = payload
    module = ParsedModule.from_source(source, path)
    from repro.analysis.checkers import CATALOG

    findings: list[Finding] = []
    for checker in CATALOG:
        findings.extend(checker.check(module))
    return [finding.to_dict() for finding in findings]


def _per_module_findings(
    modules: list[ParsedModule], jobs: int
) -> list[Finding]:
    from repro.analysis.checkers import CATALOG

    if jobs > 1 and len(modules) > 1:
        from concurrent.futures import ProcessPoolExecutor

        findings: list[Finding] = []
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            payloads = [(module.source, module.path) for module in modules]
            # map() preserves input order, so findings arrive in the
            # same path-sorted order the serial loop produces.
            for result in pool.map(_worker_check, payloads):
                findings.extend(Finding(**item) for item in result)
        return findings
    findings = []
    for module in modules:
        for checker in CATALOG:
            findings.extend(checker.check(module))
    return findings


def _run_catalog(
    modules: list[ParsedModule],
    project: bool = False,
    jobs: int = 1,
) -> list[Finding]:
    from repro.analysis.checkers import PROJECT_CATALOG

    findings = _per_module_findings(modules, jobs)
    for module in modules:
        findings.extend(_suppression_hygiene(module))
    for checker in PROJECT_CATALOG:
        findings.extend(checker.check_project(modules))
    if project:
        from repro.analysis.dataflow import analyze_project

        findings.extend(analyze_project(modules))
    kept = []
    by_path = {module.path: module for module in modules}
    for finding in findings:
        module = by_path.get(finding.path)
        if module is not None and module.is_suppressed(finding):
            continue
        kept.append(finding)
    kept.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return kept


def _stale_suppressions(modules: list[ParsedModule]) -> list[Finding]:
    """SUP002: ``# repro: allow`` comments that suppressed nothing.

    Reasonless or unknown-code suppressions are SUP001's business and
    are skipped here; everything else that did not fire is dead weight
    the suppression surface must shed.
    """
    from repro.analysis.checkers import known_codes

    catalog = known_codes()
    findings = []
    for module in modules:
        for suppression in module.suppressions:
            if suppression.used or not suppression.reason:
                continue
            if any(code not in catalog for code in suppression.codes):
                continue
            findings.append(module.finding_at(
                "SUP002",
                suppression.line,
                0,
                f"suppression of {', '.join(suppression.codes)} matches "
                f"no finding — the checker no longer fires here",
                "delete the stale '# repro: allow' comment",
            ))
    return findings


def _suppression_hygiene(module: ParsedModule) -> Iterator[Finding]:
    """SUP001: suppressions must carry a reason and known codes."""
    from repro.analysis.checkers import known_codes

    catalog = known_codes()
    for suppression in module.suppressions:
        anchor = ast.Module(body=[], type_ignores=[])
        anchor.lineno = suppression.line          # type: ignore[attr-defined]
        anchor.col_offset = 0                     # type: ignore[attr-defined]
        if not suppression.reason:
            yield module.finding(
                "SUP001",
                anchor,
                f"suppression of {', '.join(suppression.codes)} has no "
                f"reason — write '# repro: allow {suppression.codes[0]} "
                f"<why this is safe>'",
                "a reasonless suppression never fires; state why the "
                "finding is acceptable",
            )
        unknown = [c for c in suppression.codes if c not in catalog]
        if unknown:
            yield module.finding(
                "SUP001",
                anchor,
                f"suppression names unknown checker code(s): "
                f"{', '.join(unknown)}",
                "use a code from `python -m repro.analysis --list-checkers`",
            )


def analyze_source(
    source: str, path: str = "<string>"
) -> list[Finding]:
    """Run the full per-module catalog over one source string.

    Project-level checkers (CHK001) need the whole tree and are skipped.
    """
    module = ParsedModule.from_source(source, path)
    findings: list[Finding] = []
    from repro.analysis.checkers import CATALOG

    for checker in CATALOG:
        findings.extend(checker.check(module))
    findings.extend(_suppression_hygiene(module))
    kept = [f for f in findings if not module.is_suppressed(f)]
    kept.sort(key=lambda f: (f.line, f.col, f.code))
    return kept


def parse_modules(
    paths: Sequence[str | Path],
    root: str | Path | None = None,
) -> list[ParsedModule]:
    """Parse every file under ``paths`` in deterministic path order.

    Raises:
        SyntaxError: a file does not parse (the tree must at least
            compile before it can be analyzed).
    """
    root_path = Path(root) if root is not None else None
    modules = []
    for file_path in iter_python_files(paths):
        source = file_path.read_text(encoding="utf-8")
        modules.append(
            ParsedModule.from_source(
                source, _display_path(file_path, root_path)
            )
        )
    return modules


@dataclass
class AnalysisReport:
    """Everything one run produced, for the CLI's extra surfaces."""

    findings: list[Finding]
    #: baseline entries that covered a finding (post-prune baseline)
    baseline_used: list[BaselineEntry] = field(default_factory=list)
    #: baseline entries that covered nothing (prune candidates)
    baseline_stale: list[BaselineEntry] = field(default_factory=list)


def analyze_paths_report(
    paths: Sequence[str | Path],
    baseline: Baseline | None = None,
    root: str | Path | None = None,
    *,
    project: bool = False,
    jobs: int = 1,
    baseline_path: str | None = None,
) -> AnalysisReport:
    """Parse and check every file under ``paths``.

    Args:
        paths: files and/or directories.
        baseline: accepted pre-existing findings to subtract.
        root: base for relative finding paths (default: cwd).
        project: also run the interprocedural passes (symbol table,
            call graph, taint dataflow, LOCK001/SEAL001).
        jobs: worker processes for the per-module catalog (1 = serial;
            output is byte-identical either way).
        baseline_path: label used to anchor SUP002 findings for stale
            baseline entries (no SUP002 for them when ``None``).

    Returns:
        An :class:`AnalysisReport`; ``findings`` holds new findings
        (not suppressed, not baselined) plus SUP002 hygiene findings,
        sorted by location.

    Raises:
        SyntaxError: a file does not parse (the tree must at least
            compile before it can be linted).
    """
    modules = parse_modules(paths, root)
    findings = _run_catalog(modules, project=project, jobs=jobs)
    report = AnalysisReport(findings=findings)
    if baseline is not None:
        kept, stale, used = baseline.subtract_tracking(findings)
        report.findings = kept
        report.baseline_used = used
        report.baseline_stale = stale
        if baseline_path is not None:
            for code, path, line_text, _context_hash in stale:
                report.findings.append(Finding(
                    code="SUP002",
                    path=path,
                    line=0,
                    col=0,
                    message=(
                        f"baseline entry ({code}) {line_text!r} matches "
                        f"no finding — prune it from {baseline_path}"
                    ),
                    hint=(
                        "run with --prune-baseline to rewrite the "
                        "baseline without dead entries"
                    ),
                    line_text=line_text,
                ))
    report.findings.extend(_stale_suppressions(modules))
    report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return report


def analyze_paths(
    paths: Sequence[str | Path],
    baseline: Baseline | None = None,
    root: str | Path | None = None,
    *,
    project: bool = False,
    jobs: int = 1,
    baseline_path: str | None = None,
) -> list[Finding]:
    """:func:`analyze_paths_report`, returning only the findings."""
    return analyze_paths_report(
        paths, baseline, root,
        project=project, jobs=jobs, baseline_path=baseline_path,
    ).findings
