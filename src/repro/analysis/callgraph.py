"""Project call graph over the symbol table.

Edges are resolved *by name and shallow type*, never by execution: a
call is attributed to the one project function it can reach under the
receiver-type rules in :mod:`repro.analysis.symbols`.  Unresolvable
calls (stdlib, third-party, dynamic dispatch through values) simply
produce no edge — the dataflow pass handles tainted *values* flowing
through such calls separately.

The graph serializes deterministically (``to_payload``/``to_dot``) for
``repro analyze --dump-callgraph``; CI uploads the JSON as a build
artifact so reviewers can diff reachability across PRs.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

from repro.analysis.symbols import (
    ClassInfo,
    FunctionInfo,
    SymbolTable,
    _annotation_name,
    annotation_is_set,
)

__all__ = ["CallGraph", "CallResolver", "CallSite", "build_callgraph"]


@dataclass(frozen=True)
class CallSite:
    """One resolved call edge."""

    caller: str        # qname
    callee: str        # qname
    path: str          # caller's file
    line: int          # call line

    def sort_key(self) -> tuple:
        return (self.caller, self.line, self.callee)


class CallResolver:
    """Resolve call expressions inside one function to project symbols."""

    def __init__(self, table: SymbolTable, function: FunctionInfo) -> None:
        self.table = table
        self.function = function
        self.module = table.modules[function.module]
        self.imports = self.module.imports
        #: local variable name -> flat class name
        self.local_types: dict[str, str] = {}
        self._infer_signature_types()
        self._infer_body_types()

    # ------------------------------------------------------------------
    # Local type environment.
    # ------------------------------------------------------------------

    def _infer_signature_types(self) -> None:
        node = self.function.node
        if self.function.class_name is not None:
            args = node.args
            receiver = [*args.posonlyargs, *args.args][:1]
            decorators = {
                dec.id
                for dec in node.decorator_list
                if isinstance(dec, ast.Name)
            }
            if receiver and "staticmethod" not in decorators:
                self.local_types[receiver[0].arg] = self.function.class_name
        for arg in [
            *node.args.posonlyargs, *node.args.args, *node.args.kwonlyargs
        ]:
            name = _annotation_name(arg.annotation)
            if name:
                self.local_types.setdefault(arg.arg, name)

    def _infer_body_types(self) -> None:
        for stmt in ast.walk(self.function.node):
            if isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                name = _annotation_name(stmt.annotation)
                if name:
                    self.local_types[stmt.target.id] = name
            elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                if not isinstance(target, ast.Name):
                    continue
                inferred = self.infer_type(stmt.value)
                if inferred:
                    self.local_types[target.id] = inferred

    def infer_type(self, expr: ast.expr) -> str | None:
        """Flat class name of an expression, where shallowly knowable."""
        if isinstance(expr, ast.Name):
            return self.local_types.get(expr.id)
        if isinstance(expr, ast.Attribute):
            base_type = self.infer_type(expr.value)
            if base_type is not None:
                return self.table.mro_attr_type(base_type, expr.attr)
            return None
        if isinstance(expr, ast.Call):
            resolved = self.resolve_call_target(expr)
            if isinstance(resolved, ClassInfo):
                return resolved.name
            if isinstance(resolved, FunctionInfo):
                returns = _annotation_name(resolved.node.returns)
                # ``def seal(self) -> "CorpusStore"`` and Self-returning
                # builders keep the receiver type.
                if returns == "Self" and resolved.class_name:
                    return resolved.class_name
                return returns
            return None
        if isinstance(expr, ast.Await):
            return self.infer_type(expr.value)
        return None

    def expr_is_set(self, expr: ast.expr) -> bool:
        """Whether an expression is set-typed under the shallow rules."""
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return True
        if isinstance(expr, ast.Call):
            func = expr.func
            if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
                return True
            resolved = self.resolve_call_target(expr)
            if isinstance(resolved, FunctionInfo):
                return annotation_is_set(resolved.node.returns)
            return False
        if isinstance(expr, ast.Name):
            inferred = self.local_types.get(expr.id)
            return inferred in ("set", "frozenset")
        if isinstance(expr, ast.Attribute):
            base_type = self.infer_type(expr.value)
            if base_type is not None:
                return self.table.mro_attr_is_set(base_type, expr.attr)
        return False

    # ------------------------------------------------------------------
    # Call resolution.
    # ------------------------------------------------------------------

    def resolve_call_target(
        self, call: ast.Call
    ) -> FunctionInfo | ClassInfo | None:
        return self.resolve_callable(call.func)

    def resolve_callable(
        self, func: ast.expr
    ) -> FunctionInfo | ClassInfo | None:
        table = self.table
        if isinstance(func, ast.Name):
            name = func.id
            if name in self.module.functions:
                return self.module.functions[name]
            if name in self.module.classes:
                return self.module.classes[name]
            origin = self.imports.get(name)
            if origin is not None:
                return table.module_attr(origin)
            return None
        if isinstance(func, ast.Attribute):
            # Module-dotted chain first: codecs.encode_user, repro.x.y.
            dotted = table.resolve_dotted(func, self.imports)
            if dotted is not None:
                resolved = table.module_attr(dotted)
                if resolved is not None:
                    return resolved
            # Class-qualified: ClassName.method (incl. imported class).
            base = func.value
            if isinstance(base, ast.Name):
                class_info = self._class_for_name(base.id)
                if class_info is not None:
                    return table.resolve_method(class_info.name, func.attr)
            # Receiver-typed: obj.method() with obj's type inferred.
            receiver_type = self.infer_type(base)
            if receiver_type is not None:
                return table.resolve_method(receiver_type, func.attr)
        return None

    def _class_for_name(self, name: str) -> ClassInfo | None:
        if name in self.module.classes:
            return self.module.classes[name]
        origin = self.imports.get(name)
        if origin is not None:
            resolved = self.table.module_attr(origin)
            if isinstance(resolved, ClassInfo):
                return resolved
        return None

    def resolved_function(self, call: ast.Call) -> FunctionInfo | None:
        """The FunctionInfo a call reaches (constructors -> __init__)."""
        resolved = self.resolve_call_target(call)
        if isinstance(resolved, ClassInfo):
            return self.table.resolve_method(resolved.name, "__init__")
        return resolved


@dataclass
class CallGraph:
    """caller -> callees and the reverse index, deterministically ordered."""

    # to_payload here is a one-way export for --dump-callgraph, not a
    # checkpoint codec: the table and the derived reverse index are
    # reconstruction state, never round-tripped.
    # repro: allow CHK001 export-only payload, table is not serialized state
    table: SymbolTable
    edges: dict[str, list[CallSite]] = field(default_factory=dict)
    # repro: allow CHK001 derived reverse index, rebuilt from edges
    callers_of: dict[str, list[CallSite]] = field(default_factory=dict)

    def callees(self, qname: str) -> list[CallSite]:
        return self.edges.get(qname, [])

    def callers(self, qname: str) -> list[CallSite]:
        return self.callers_of.get(qname, [])

    def iter_sites(self) -> Iterator[CallSite]:
        for caller in sorted(self.edges):
            yield from self.edges[caller]

    # ------------------------------------------------------------------
    # Reachability helpers for the state checkers.
    # ------------------------------------------------------------------

    def shortest_caller_chain(
        self, qname: str, max_depth: int = 6
    ) -> list[CallSite]:
        """A deterministic shortest chain of call sites reaching ``qname``.

        Walks *up* the caller index breadth-first, tie-breaking on the
        sites' sort keys, and stops at an entry point (no callers) or at
        ``max_depth``.  Returns the chain ordered entry-first.
        """
        chain: list[CallSite] = []
        current = qname
        seen = {qname}
        for _ in range(max_depth):
            callers = [
                site for site in self.callers(current)
                if site.caller not in seen
            ]
            if not callers:
                break
            site = min(callers, key=lambda s: (s.caller, s.line, s.callee))
            chain.append(site)
            seen.add(site.caller)
            current = site.caller
        chain.reverse()
        return chain

    # ------------------------------------------------------------------
    # Serialization.
    # ------------------------------------------------------------------

    def to_payload(self) -> dict:
        functions = self.table.functions
        nodes = [
            {
                "qname": qname,
                "module": functions[qname].module,
                "path": functions[qname].path,
                "line": functions[qname].line,
            }
            for qname in sorted(functions)
        ]
        edges = [
            {
                "caller": site.caller,
                "callee": site.callee,
                "path": site.path,
                "line": site.line,
            }
            for site in self.iter_sites()
        ]
        return {"version": 1, "nodes": nodes, "edges": edges}

    def to_dot(self) -> str:
        lines = ["digraph callgraph {"]
        for qname in sorted(self.table.functions):
            lines.append(f'  "{qname}";')
        for site in self.iter_sites():
            lines.append(f'  "{site.caller}" -> "{site.callee}";')
        lines.append("}")
        return "\n".join(lines) + "\n"


def build_callgraph(table: SymbolTable) -> CallGraph:
    graph = CallGraph(table=table)
    for function in table.iter_functions():
        resolver = CallResolver(table, function)
        sites: list[CallSite] = []
        for node in ast.walk(function.node):
            if not isinstance(node, ast.Call):
                continue
            callee = resolver.resolved_function(node)
            if callee is None:
                continue
            sites.append(
                CallSite(
                    caller=function.qname,
                    callee=callee.qname,
                    path=function.path,
                    line=node.lineno,
                )
            )
        if sites:
            sites.sort(key=CallSite.sort_key)
            graph.edges[function.qname] = sites
            for site in sites:
                graph.callers_of.setdefault(site.callee, []).append(site)
    for callee in graph.callers_of:
        graph.callers_of[callee].sort(key=CallSite.sort_key)
    return graph
