"""``python -m repro.analysis`` — the lint suite's command line.

Exit codes follow CI conventions: 0 when the tree is clean (modulo the
baseline), 1 when new findings exist, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis.baseline import DEFAULT_BASELINE_NAME, Baseline
from repro.analysis.checkers import CATALOG, PROJECT_CATALOG
from repro.analysis.engine import Finding, analyze_paths

__all__ = ["build_parser", "main"]

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "AST-based determinism & concurrency lint suite enforcing the "
            "reproduction's bit-identity invariants."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=None,
        help="files or directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--baseline", type=Path, default=None,
        help=f"baseline file (default: ./{DEFAULT_BASELINE_NAME} when it "
             "exists)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline file (report every finding)",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="accept the current findings: write them to the baseline "
             "file and exit 0",
    )
    parser.add_argument(
        "--select", default=None, metavar="CODES",
        help="comma-separated checker codes to report (default: all)",
    )
    parser.add_argument(
        "--list-checkers", action="store_true",
        help="print the checker catalog (code, rationale, hint) and exit",
    )
    return parser


def _list_checkers(stream) -> None:
    for checker in [*CATALOG, *PROJECT_CATALOG]:
        print(f"{checker.code}  {checker.name}", file=stream)
        print(f"    why:  {checker.rationale}", file=stream)
        print(f"    fix:  {checker.hint}", file=stream)
    print("SUP001  malformed suppression", file=stream)
    print(
        "    why:  a suppression without a reason (or with an unknown "
        "code) hides nothing and documents nothing",
        file=stream,
    )
    print(
        "    fix:  write '# repro: allow <CODE> <reason>' with a real "
        "code and reason",
        file=stream,
    )


def _default_paths() -> list[str]:
    candidate = Path("src/repro")
    if candidate.is_dir():
        return [str(candidate)]
    raise SystemExit(
        "no paths given and ./src/repro does not exist "
        "(run from the repo root or pass paths)"
    )


def _resolve_baseline(args: argparse.Namespace) -> tuple[Baseline | None, Path]:
    baseline_path = args.baseline or Path(DEFAULT_BASELINE_NAME)
    if args.no_baseline:
        return None, baseline_path
    if baseline_path.exists():
        return Baseline.load(baseline_path), baseline_path
    return None, baseline_path


def _emit(findings: list[Finding], fmt: str, stream) -> None:
    if fmt == "json":
        payload = {
            "findings": [finding.to_dict() for finding in findings],
            "count": len(findings),
        }
        print(json.dumps(payload, indent=2), file=stream)
        return
    for finding in findings:
        print(finding.render(), file=stream)
        print(f"    hint: {finding.hint}", file=stream)
    if findings:
        print(f"{len(findings)} finding(s)", file=stream)
    else:
        print("clean: no new findings", file=stream)


def main(argv: list[str] | None = None) -> int:
    """Run the suite; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.list_checkers:
        _list_checkers(sys.stdout)
        return EXIT_CLEAN
    paths = args.paths or _default_paths()
    baseline, baseline_path = _resolve_baseline(args)
    if args.write_baseline:
        # A fresh baseline accepts everything currently in the tree.
        baseline = None
    try:
        findings = analyze_paths(paths, baseline=baseline)
    except (FileNotFoundError, ValueError, SyntaxError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    if args.select:
        wanted = {code.strip() for code in args.select.split(",")}
        findings = [f for f in findings if f.code in wanted]
    if args.write_baseline:
        Baseline.from_findings(findings).save(baseline_path)
        print(
            f"baseline written to {baseline_path} "
            f"({len(findings)} accepted finding(s))",
        )
        return EXIT_CLEAN
    _emit(findings, args.format, sys.stdout)
    return EXIT_FINDINGS if findings else EXIT_CLEAN
