"""``python -m repro.analysis`` — the lint suite's command line.

Exit codes follow CI conventions: 0 when the tree is clean (modulo the
baseline), 1 when new findings exist, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

from repro.analysis.baseline import DEFAULT_BASELINE_NAME, Baseline
from repro.analysis.checkers import CATALOG, PROJECT_CATALOG
from repro.analysis.engine import Finding, analyze_paths_report, parse_modules

__all__ = ["build_parser", "main"]

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "AST-based determinism & concurrency lint suite enforcing the "
            "reproduction's bit-identity invariants."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=None,
        help="files or directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--baseline", type=Path, default=None,
        help=f"baseline file (default: ./{DEFAULT_BASELINE_NAME} when it "
             "exists)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline file (report every finding)",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="accept the current findings: write them to the baseline "
             "file and exit 0",
    )
    parser.add_argument(
        "--select", default=None, metavar="CODES",
        help="comma-separated checker codes to report (default: all)",
    )
    parser.add_argument(
        "--list-checkers", action="store_true",
        help="print the checker catalog (code, rationale, hint) and exit",
    )
    parser.add_argument(
        "--project", action="store_true",
        help="also run the interprocedural passes (call graph, "
             "nondeterminism taint, LOCK001/SEAL001)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="run the per-module catalog with N worker processes "
             "(0 = one per CPU; output is byte-identical to serial)",
    )
    parser.add_argument(
        "--dump-callgraph", type=Path, default=None, metavar="PATH",
        help="write the project call graph to PATH (Graphviz dot when "
             "PATH ends with .dot, JSON otherwise; '-' for stdout) "
             "and exit",
    )
    parser.add_argument(
        "--prune-baseline", action="store_true",
        help="rewrite the baseline keeping only entries that still "
             "cover a finding, then exit 0",
    )
    return parser


def _list_checkers(stream) -> None:
    from repro.analysis.dataflow import FLOW_CATALOG

    for checker in [*CATALOG, *PROJECT_CATALOG, *FLOW_CATALOG]:
        print(f"{checker.code}  {checker.name}", file=stream)
        print(f"    why:  {checker.rationale}", file=stream)
        print(f"    fix:  {checker.hint}", file=stream)
    print("SUP001  malformed suppression", file=stream)
    print(
        "    why:  a suppression without a reason (or with an unknown "
        "code) hides nothing and documents nothing",
        file=stream,
    )
    print(
        "    fix:  write '# repro: allow <CODE> <reason>' with a real "
        "code and reason",
        file=stream,
    )
    print("SUP002  stale suppression or baseline entry", file=stream)
    print(
        "    why:  a suppression or baseline entry matching no finding "
        "widens the accepted surface for free",
        file=stream,
    )
    print(
        "    fix:  delete the comment, or run --prune-baseline",
        file=stream,
    )


def _default_paths() -> list[str]:
    candidate = Path("src/repro")
    if candidate.is_dir():
        return [str(candidate)]
    raise SystemExit(
        "no paths given and ./src/repro does not exist "
        "(run from the repo root or pass paths)"
    )


def _resolve_baseline(args: argparse.Namespace) -> tuple[Baseline | None, Path]:
    baseline_path = args.baseline or Path(DEFAULT_BASELINE_NAME)
    if args.no_baseline:
        return None, baseline_path
    if baseline_path.exists():
        return Baseline.load(baseline_path), baseline_path
    return None, baseline_path


def _emit(findings: list[Finding], fmt: str, stream) -> None:
    if fmt == "json":
        payload = {
            "findings": [finding.to_dict() for finding in findings],
            "count": len(findings),
        }
        print(json.dumps(payload, indent=2), file=stream)
        return
    for finding in findings:
        print(finding.render(), file=stream)
        print(f"    hint: {finding.hint}", file=stream)
    if findings:
        print(f"{len(findings)} finding(s)", file=stream)
    else:
        print("clean: no new findings", file=stream)


def _dump_callgraph(paths: list[str], target: Path) -> int:
    from repro.analysis.dataflow import project_callgraph

    try:
        modules = parse_modules(paths)
    except (FileNotFoundError, ValueError, SyntaxError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    graph = project_callgraph(modules)
    if str(target).endswith(".dot"):
        text = graph.to_dot()
    else:
        text = json.dumps(graph.to_payload(), indent=2, sort_keys=True) + "\n"
    if str(target) == "-":
        sys.stdout.write(text)
    else:
        target.write_text(text, encoding="utf-8")
        print(f"call graph written to {target}")
    return EXIT_CLEAN


def main(argv: list[str] | None = None) -> int:
    """Run the suite; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.list_checkers:
        _list_checkers(sys.stdout)
        return EXIT_CLEAN
    paths = args.paths or _default_paths()
    if args.dump_callgraph is not None:
        return _dump_callgraph(paths, args.dump_callgraph)
    baseline, baseline_path = _resolve_baseline(args)
    if args.write_baseline:
        # A fresh baseline accepts everything currently in the tree.
        baseline = None
    jobs = args.jobs if args.jobs > 0 else (os.cpu_count() or 1)
    try:
        report = analyze_paths_report(
            paths,
            baseline=baseline,
            project=args.project,
            jobs=jobs,
            baseline_path=(
                str(baseline_path) if baseline is not None else None
            ),
        )
    except (FileNotFoundError, ValueError, SyntaxError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    findings = report.findings
    if args.prune_baseline:
        if baseline is None:
            print("error: no baseline to prune", file=sys.stderr)
            return EXIT_USAGE
        Baseline(report.baseline_used).save(baseline_path)
        print(
            f"baseline pruned to {baseline_path} "
            f"({len(report.baseline_used)} kept, "
            f"{len(report.baseline_stale)} stale entr(ies) dropped)",
        )
        return EXIT_CLEAN
    if args.select:
        wanted = {code.strip() for code in args.select.split(",")}
        findings = [f for f in findings if f.code in wanted]
    if args.write_baseline:
        # SUP002 hygiene findings are deliberately not baselinable —
        # the suppression surface may only shrink.
        accepted = [f for f in findings if f.code != "SUP002"]
        Baseline.from_findings(accepted).save(baseline_path)
        print(
            f"baseline written to {baseline_path} "
            f"({len(accepted)} accepted finding(s))",
        )
        return EXIT_CLEAN
    _emit(findings, args.format, sys.stdout)
    return EXIT_FINDINGS if findings else EXIT_CLEAN
