"""Project symbol table: modules, classes, functions, receiver types.

The per-file checkers in :mod:`repro.analysis.checkers` are deliberately
syntactic; the interprocedural passes (call graph, taint dataflow, the
lock/seal state machines) need one level more: *which function does this
call actually reach*.  This module answers that with a whole-program
symbol table built from the already-parsed modules:

* **module naming** — ``src/repro/crawler/frontier.py`` becomes
  ``repro.crawler.frontier``; loose files (fixtures) use their stem;
* **import resolution** — ``import``/``from`` aliases, including
  relative imports resolved against the importing module's package;
* **receiver types** — a deliberately shallow inference good enough for
  this tree's annotated code: parameter/variable annotations,
  ``x = ClassName(...)`` constructor assignments, dataclass field and
  ``self.attr = ClassName(...)`` attribute types, return annotations.

Everything is resolved by *name* against the analyzed file set only:
stdlib and third-party targets stay as dotted strings, which is exactly
what the taint source tables key on.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator, Sequence

if TYPE_CHECKING:   # pragma: no cover - types only
    from repro.analysis.engine import ParsedModule

__all__ = [
    "ClassInfo",
    "FunctionInfo",
    "ModuleInfo",
    "SymbolTable",
    "module_name_for_path",
]

_SET_NAMES = frozenset({
    "set", "frozenset", "Set", "AbstractSet", "FrozenSet", "MutableSet",
})


def module_name_for_path(path: str) -> str:
    """Dotted module name for a reported (posix) file path.

    ``src/repro/store/codecs.py`` and ``repro/store/codecs.py`` both map
    to ``repro.store.codecs``; ``__init__.py`` maps to its package; a
    loose file (a test fixture) maps to its stem.
    """
    parts = [part for part in path.split("/") if part]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[0] == "src":
        parts = parts[1:]
    if "repro" in parts:
        parts = parts[parts.index("repro"):]
    else:
        parts = parts[-1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1] or ["__init__"]
    return ".".join(parts)


@dataclass
class FunctionInfo:
    """One function or method definition."""

    qname: str                       # "repro.store.corpus:CorpusStore.seal"
    module: str                      # owning module name
    path: str                        # reported file path
    node: ast.FunctionDef | ast.AsyncFunctionDef
    class_name: str | None = None    # set for methods

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def line(self) -> int:
        return self.node.lineno


@dataclass
class ClassInfo:
    """One class definition with what the dataflow passes need."""

    qname: str                       # "repro.net.client:ClientStats"
    module: str
    name: str
    node: ast.ClassDef
    base_names: tuple[str, ...] = ()         # unresolved base identifiers
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    #: attribute name -> annotation/constructor type name (unresolved)
    attr_types: dict[str, str] = field(default_factory=dict)
    #: attribute names known to hold sets
    set_attrs: set[str] = field(default_factory=set)
    is_dataclass: bool = False


@dataclass
class ModuleInfo:
    """One analyzed module."""

    name: str
    path: str
    tree: ast.Module
    #: local alias -> absolute dotted origin ("np" -> "numpy",
    #: "encode_user" -> "repro.store.codecs.encode_user")
    imports: dict[str, str] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)


def _annotation_name(annotation: ast.expr | None) -> str | None:
    """Flat type name of an annotation: ``CorpusStore``, ``set``, ...

    Unions take the *first* project-resolvable-looking alternative later;
    here every alternative is surfaced via :func:`_annotation_names`.
    """
    names = _annotation_names(annotation)
    return names[0] if names else None


def _annotation_names(annotation: ast.expr | None) -> list[str]:
    """All flat type names an annotation may denote (unions expanded)."""
    if annotation is None:
        return []
    node: ast.expr = annotation
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        # String annotation: "CorpusStore | CrawlResult", "set[str]".
        text = node.value
        return [
            part.split("[", 1)[0].strip().rsplit(".", 1)[-1]
            for part in text.split("|")
            if part.split("[", 1)[0].strip()
        ]
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        return _annotation_names(node.left) + _annotation_names(node.right)
    if isinstance(node, ast.Subscript):
        base = _annotation_name(node.value)
        if base in ("Optional", "Final", "ClassVar", "Annotated"):
            inner = node.slice
            if isinstance(inner, ast.Tuple) and inner.elts:
                inner = inner.elts[0]
            return _annotation_names(inner)
        return [base] if base else []
    if isinstance(node, ast.Attribute):
        return [node.attr]
    if isinstance(node, ast.Name):
        return [node.id]
    return []


def annotation_is_set(annotation: ast.expr | None) -> bool:
    return any(name in _SET_NAMES for name in _annotation_names(annotation))


def _build_imports(tree: ast.Module, module_name: str) -> dict[str, str]:
    """Local alias -> absolute dotted origin, relative imports resolved."""
    package = module_name.rsplit(".", 1)[0] if "." in module_name else ""
    mapping: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    mapping[alias.asname] = alias.name
                else:
                    # ``import a.b.c`` binds ``a``; attribute chains are
                    # resolved lazily from the bare root.
                    root = alias.name.split(".")[0]
                    mapping[root] = root
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:
                # Relative: climb ``level`` packages from this module.
                anchor = module_name.split(".")
                anchor = anchor[: max(len(anchor) - node.level, 0)] or (
                    package.split(".") if package else []
                )
                prefix = ".".join(anchor)
                base = f"{prefix}.{base}".strip(".") if base else prefix
            if not base:
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                mapping[alias.asname or alias.name] = f"{base}.{alias.name}"
    return mapping


def _collect_class(
    module: "ModuleInfo", node: ast.ClassDef
) -> ClassInfo:
    from repro.analysis.checkers import _is_dataclass

    info = ClassInfo(
        qname=f"{module.name}:{node.name}",
        module=module.name,
        name=node.name,
        node=node,
        base_names=tuple(
            name
            for base in node.bases
            for name in _annotation_names(base)
        ),
        is_dataclass=_is_dataclass(node),
    )
    for stmt in node.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info.methods[stmt.name] = FunctionInfo(
                qname=f"{module.name}:{node.name}.{stmt.name}",
                module=module.name,
                path=module.path,
                node=stmt,
                class_name=node.name,
            )
        elif isinstance(stmt, ast.AnnAssign) and isinstance(
            stmt.target, ast.Name
        ):
            type_name = _annotation_name(stmt.annotation)
            if type_name:
                info.attr_types[stmt.target.id] = type_name
            if annotation_is_set(stmt.annotation):
                info.set_attrs.add(stmt.target.id)
            if isinstance(stmt.value, ast.Call):
                for kw in stmt.value.keywords:
                    if (
                        kw.arg == "default_factory"
                        and isinstance(kw.value, ast.Name)
                    ):
                        info.attr_types[stmt.target.id] = kw.value.id
                        if kw.value.id in ("set", "frozenset"):
                            info.set_attrs.add(stmt.target.id)
    # ``self.attr = ClassName(...)`` / annotated attribute assignments in
    # method bodies (constructors mostly, but any method counts).
    for method in info.methods.values():
        for sub in ast.walk(method.node):
            target: ast.expr | None = None
            value: ast.expr | None = None
            annotation: ast.expr | None = None
            if isinstance(sub, ast.Assign) and len(sub.targets) == 1:
                target, value = sub.targets[0], sub.value
            elif isinstance(sub, ast.AnnAssign):
                target, value, annotation = sub.target, sub.value, sub.annotation
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                continue
            if annotation is not None:
                type_name = _annotation_name(annotation)
                if type_name:
                    info.attr_types.setdefault(target.attr, type_name)
                if annotation_is_set(annotation):
                    info.set_attrs.add(target.attr)
            if isinstance(value, ast.Call):
                ctor = value.func
                ctor_name = None
                if isinstance(ctor, ast.Name):
                    ctor_name = ctor.id
                elif isinstance(ctor, ast.Attribute):
                    ctor_name = ctor.attr
                if ctor_name:
                    info.attr_types.setdefault(target.attr, ctor_name)
                    if ctor_name in ("set", "frozenset"):
                        info.set_attrs.add(target.attr)
            elif isinstance(value, (ast.Set, ast.SetComp)):
                info.set_attrs.add(target.attr)
    return info


class SymbolTable:
    """All modules of one analysis run, indexed for resolution."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        #: flat class name -> ClassInfo (first definition wins; the tree
        #: has no duplicate public class names that matter here)
        self._classes_by_name: dict[str, ClassInfo] = {}
        #: function qname -> FunctionInfo
        self.functions: dict[str, FunctionInfo] = {}

    # ------------------------------------------------------------------
    # Construction.
    # ------------------------------------------------------------------

    @classmethod
    def build(cls, modules: Sequence["ParsedModule"]) -> "SymbolTable":
        table = cls()
        for parsed in modules:
            name = module_name_for_path(parsed.path)
            info = ModuleInfo(name=name, path=parsed.path, tree=parsed.tree)
            info.imports = _build_imports(parsed.tree, name)
            for node in parsed.tree.body:
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    info.functions[node.name] = FunctionInfo(
                        qname=f"{name}:{node.name}",
                        module=name,
                        path=parsed.path,
                        node=node,
                    )
                elif isinstance(node, ast.ClassDef):
                    info.classes[node.name] = _collect_class(info, node)
            table.modules[name] = info
        for info in table.modules.values():
            for function in info.functions.values():
                table.functions[function.qname] = function
            for class_info in info.classes.values():
                table._classes_by_name.setdefault(class_info.name, class_info)
                for method in class_info.methods.values():
                    table.functions[method.qname] = method
        return table

    # ------------------------------------------------------------------
    # Lookup.
    # ------------------------------------------------------------------

    def iter_functions(self) -> Iterator[FunctionInfo]:
        """Every function/method, in deterministic qname order."""
        for qname in sorted(self.functions):
            yield self.functions[qname]

    def class_named(self, name: str) -> ClassInfo | None:
        return self._classes_by_name.get(name)

    def module_attr(self, dotted: str) -> FunctionInfo | ClassInfo | None:
        """Resolve an absolute dotted origin to a project symbol.

        ``repro.store.codecs.encode_user`` finds the function;
        ``repro.net.client.ClientStats`` finds the class; anything not in
        the analyzed file set returns None.
        """
        if "." not in dotted:
            return None
        module_name, attr = dotted.rsplit(".", 1)
        module = self.modules.get(module_name)
        if module is None:
            return None
        if attr in module.functions:
            return module.functions[attr]
        if attr in module.classes:
            return module.classes[attr]
        # Re-exported name: follow one import hop.
        origin = module.imports.get(attr)
        if origin is not None and origin != dotted:
            return self.module_attr(origin)
        return None

    def resolve_method(
        self, class_name: str, method: str
    ) -> FunctionInfo | None:
        """Find ``method`` on ``class_name`` or its (project) bases."""
        seen: set[str] = set()
        queue = [class_name]
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            info = self._classes_by_name.get(current)
            if info is None:
                continue
            if method in info.methods:
                return info.methods[method]
            queue.extend(info.base_names)
        return None

    def mro_attr_type(self, class_name: str, attr: str) -> str | None:
        """Attribute type name on ``class_name`` or its (project) bases."""
        seen: set[str] = set()
        queue = [class_name]
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            info = self._classes_by_name.get(current)
            if info is None:
                continue
            if attr in info.attr_types:
                return info.attr_types[attr]
            queue.extend(info.base_names)
        return None

    def mro_attr_is_set(self, class_name: str, attr: str) -> bool:
        seen: set[str] = set()
        queue = [class_name]
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            info = self._classes_by_name.get(current)
            if info is None:
                continue
            if attr in info.set_attrs:
                return True
            queue.extend(info.base_names)
        return False

    # ------------------------------------------------------------------
    # Expression resolution inside one function.
    # ------------------------------------------------------------------

    def resolve_dotted(
        self, expr: ast.expr, imports: dict[str, str]
    ) -> str | None:
        """Absolute dotted origin of a Name/Attribute chain, or None.

        Mirrors the per-file checkers' ``_resolve`` but against the
        symbol table's absolute import map, so ``from repro.store import
        codecs; codecs.encode_user`` resolves fully.
        """
        if isinstance(expr, ast.Name):
            return imports.get(expr.id)
        if isinstance(expr, ast.Attribute):
            base = self.resolve_dotted(expr.value, imports)
            if base is not None:
                return f"{base}.{expr.attr}"
        return None
