"""Interprocedural taint dataflow and the lock/seal state machines.

The per-file checkers flag nondeterminism *at its source site*; this
pass flags it *where it escapes*: a value derived from the wall clock,
an unseeded RNG, set iteration order, or a worker-local process id that
flows — through calls, returns, assignments, attribute/container writes
— into a serialization sink (checkpoint/codec/``to_*`` serializers and
``json.dump(s)`` payloads, which is where corpus log lines, checkpoint
bytes and report bytes are born).

Taint kinds map onto the flow-aware finding codes:

========  ==============================================================
DET101    wall-clock or unseeded-RNG value reaches serialized bytes
DET103    set-iteration order reaches serialized bytes
CONC102   worker-local id (os.getpid / current_process) reaches
          serialized bytes
LOCK001   a ``ClientStats``/``CrawlStats`` mutation not dominated by the
          lock-guarded APIs, found through receiver *types* rather than
          the ``.stats`` spelling (closes CONC001's wrapper blind spot)
SEAL001   a store-mutating method reachable from a post-``seal()``
          context without a ``SealedCorpusError`` guard
========  ==============================================================

The analysis is deliberately an over- *and* under-approximation (see
DESIGN.md §14): flow-insensitive within a function except for
statement order in the seal checker, context-insensitive summaries
(one per function: return taints, param→return flows, param→sink
chains), no control-dependence tracking, and chains capped at
:data:`_MAX_CHAIN` hops.  Every finding renders its full source→sink
call chain so a reviewer can replay the flow by hand.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.analysis.callgraph import CallGraph, CallResolver, build_callgraph
from repro.analysis.checkers import (
    _ORDER_INSENSITIVE_CALLS,
    _ORDER_SENSITIVE_CALLS,
    _ORDER_SENSITIVE_METHODS,
    _SERIALIZER_NAMES,
    _STATS_CLASSES,
    _WORKER_LOCAL_ORIGINS,
    UnseededRandomChecker,
    WallClockChecker,
)
from repro.analysis.engine import Finding, ParsedModule
from repro.analysis.symbols import FunctionInfo, SymbolTable

__all__ = [
    "FLOW_CATALOG",
    "FlowCheckerInfo",
    "analyze_project",
    "project_callgraph",
]

# ----------------------------------------------------------------------
# Taint model.
# ----------------------------------------------------------------------

KIND_WALL = "wall-clock"
KIND_RNG = "unseeded-rng"
KIND_SET = "set-order"
KIND_PID = "worker-id"

#: a *callable* value that would produce the kind when called
_FN = "fn:"
#: symbolic taint standing for "whatever the caller passes as <param>"
_PARAM = "param:"

_KIND_CODE = {
    KIND_WALL: "DET101",
    KIND_RNG: "DET101",
    KIND_SET: "DET103",
    KIND_PID: "CONC102",
}

_KIND_NOUN = {
    KIND_WALL: "wall-clock value",
    KIND_RNG: "unseeded-RNG value",
    KIND_SET: "set-iteration order",
    KIND_PID: "worker-local id",
}

_MAX_CHAIN = 8

#: builtin calls that destroy value taint (nothing of the input's
#: nondeterminism survives them)
_NEUTRAL_CALLS = frozenset({"len", "bool", "isinstance", "type", "id"})

#: receiver methods that fold argument taint into the receiver object
_MUTATOR_METHODS = frozenset({
    "append", "appendleft", "add", "extend", "extendleft", "insert",
    "update", "setdefault", "push", "put",
})

#: functions whose return value (or json payload argument) is the
#: serialized-bytes boundary
_SINK_FUNCTIONS = frozenset(_SERIALIZER_NAMES) | frozenset({
    "encode_user", "encode_url", "encode_comment", "encode_record",
})

_JSON_DUMPERS = frozenset({"json.dump", "json.dumps"})

_WALL_CALLS = WallClockChecker._WALL
_ARGLESS_WALL_CALLS = WallClockChecker._ARGLESS_WALL
_NUMPY_GLOBAL = UnseededRandomChecker._NUMPY_GLOBAL
_WORKER_LOCAL = _WORKER_LOCAL_ORIGINS


@dataclass(frozen=True, order=True)
class ChainStep:
    """One hop of a source→sink chain; ordered so chain comparisons
    (minimal-chain joins, deterministic tie-breaks) are total."""

    label: str
    path: str
    line: int

    def render(self) -> str:
        return f"{self.label} ({self.path}:{self.line})"


@dataclass(frozen=True)
class Taint:
    """One taint fact: a kind plus the chain that produced it."""

    kind: str
    chain: tuple[ChainStep, ...]

    def sort_key(self) -> tuple:
        return (self.kind, len(self.chain), self.chain)

    def hop(self, step: ChainStep) -> "Taint":
        if len(self.chain) >= _MAX_CHAIN:
            return self
        return Taint(self.kind, (*self.chain, step))


#: taints are carried as sorted, per-kind-deduplicated tuples so every
#: downstream iteration is deterministic (and the lint suite's own
#: DET003 never fires on this module)
TaintSet = tuple[Taint, ...]

_EMPTY: TaintSet = ()


def _join(*sets: Sequence[Taint]) -> TaintSet:
    """Union keeping one (minimal-chain) taint per kind."""
    best: dict[str, Taint] = {}
    for taints in sets:
        for taint in taints:
            current = best.get(taint.kind)
            if current is None or taint.sort_key() < current.sort_key():
                best[taint.kind] = taint
    return tuple(best[kind] for kind in sorted(best))


def _drop(taints: Sequence[Taint], kind: str) -> TaintSet:
    return tuple(t for t in taints if t.kind != kind)


def _real(taints: Sequence[Taint]) -> TaintSet:
    return tuple(
        t for t in taints
        if not t.kind.startswith(_FN) and not t.kind.startswith(_PARAM)
    )


def _symbolic(taints: Sequence[Taint]) -> TaintSet:
    return tuple(t for t in taints if t.kind.startswith(_PARAM))


# ----------------------------------------------------------------------
# Source classification.
# ----------------------------------------------------------------------


def _classify_call(dotted: str, has_args: bool) -> tuple[str, str] | None:
    """(kind, label) when a resolved call is a nondeterminism source."""
    if dotted in _WALL_CALLS:
        return KIND_WALL, f"{dotted}()"
    if dotted in _ARGLESS_WALL_CALLS and not has_args:
        return KIND_WALL, f"{dotted}()"
    if dotted == "random.Random" and not has_args:
        return KIND_RNG, "random.Random()"
    if dotted == "random.SystemRandom":
        return KIND_RNG, "random.SystemRandom()"
    if dotted.startswith("random.") and dotted.count(".") == 1:
        return KIND_RNG, f"{dotted}()"
    if dotted in (
        "numpy.random.default_rng", "numpy.random.Generator",
        "numpy.random.SeedSequence",
    ):
        if not has_args:
            return KIND_RNG, f"{dotted}()"
        return None
    if (
        dotted.startswith("numpy.random.")
        and dotted.rsplit(".", 1)[1] in _NUMPY_GLOBAL
    ):
        return KIND_RNG, f"{dotted}()"
    if dotted in _WORKER_LOCAL:
        return KIND_PID, f"{dotted}()"
    return None


def _classify_reference(dotted: str) -> tuple[str, str] | None:
    """(fn-kind, label) when a *bare reference* names a nondet callable.

    ``_now = time.time`` launders the call out of DET001's sight; the
    taint pass marks the alias as a wall-clock *function value* and
    converts it to a wall-clock *value* wherever it is finally called.
    """
    if dotted in _WALL_CALLS or dotted in _ARGLESS_WALL_CALLS:
        return _FN + KIND_WALL, dotted
    if dotted.startswith("random.") and dotted.count(".") == 1:
        return _FN + KIND_RNG, dotted
    if (
        dotted.startswith("numpy.random.")
        and dotted.rsplit(".", 1)[1] in _NUMPY_GLOBAL
    ):
        return _FN + KIND_RNG, dotted
    if dotted in _WORKER_LOCAL:
        return _FN + KIND_PID, dotted
    return None


# ----------------------------------------------------------------------
# Function summaries.
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Summary:
    """Context-insensitive facts about one function."""

    #: taints of the return value (chains end at this function's return)
    returns: TaintSet = _EMPTY
    #: parameter names whose taint flows into the return value
    param_to_return: tuple[str, ...] = ()
    #: parameter name -> chain suffix from entry to a sink inside
    param_sinks: tuple[tuple[str, tuple[ChainStep, ...]], ...] = ()

    def sink_chain(self, param: str) -> tuple[ChainStep, ...] | None:
        for name, chain in self.param_sinks:
            if name == param:
                return chain
        return None


def _map_args(
    call: ast.Call,
    callee: FunctionInfo,
    bound_receiver: ast.expr | None,
) -> Iterator[tuple[str, ast.expr]]:
    """(param name, argument expression) pairs for one call site."""
    args = callee.node.args
    params = [a.arg for a in [*args.posonlyargs, *args.args]]
    offset = 0
    if callee.class_name is not None and bound_receiver is not None:
        if params:
            yield params[0], bound_receiver
        offset = 1
    for index, arg in enumerate(call.args):
        if isinstance(arg, ast.Starred):
            continue
        slot = index + offset
        if slot < len(params):
            yield params[slot], arg
    kw_names = {a.arg for a in args.kwonlyargs} | set(params)
    for keyword in call.keywords:
        if keyword.arg is not None and keyword.arg in kw_names:
            yield keyword.arg, keyword.value


def _guarded_node_ids(node: ast.AST) -> set[int]:
    """ids of nodes protected by a SealedCorpusError try/except or
    ``contextlib.suppress(SealedCorpusError)``."""

    def names_sealed_error(expr: ast.expr | None) -> bool:
        if expr is None:
            return False
        for sub in ast.walk(expr):
            if isinstance(sub, ast.Name) and sub.id == "SealedCorpusError":
                return True
            if isinstance(sub, ast.Attribute) and (
                sub.attr == "SealedCorpusError"
            ):
                return True
        return False

    guarded: set[int] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Try):
            if any(names_sealed_error(h.type) for h in sub.handlers):
                for stmt in sub.body:
                    for inner in ast.walk(stmt):
                        guarded.add(id(inner))
        elif isinstance(sub, ast.With):
            for item in sub.items:
                expr = item.context_expr
                if (
                    isinstance(expr, ast.Call)
                    and names_sealed_error(expr)
                ):
                    for stmt in sub.body:
                        for inner in ast.walk(stmt):
                            guarded.add(id(inner))
    return guarded


# ----------------------------------------------------------------------
# The taint engine.
# ----------------------------------------------------------------------


class TaintEngine:
    """Fixpoint of function summaries, then one finding-emission pass."""

    def __init__(self, table: SymbolTable) -> None:
        self.table = table
        self.summaries: dict[str, Summary] = {}
        #: (class name, attr) -> accumulated taints (flow-insensitive)
        self.field_taints: dict[tuple[str, str], TaintSet] = {}
        self._resolvers: dict[str, CallResolver] = {}
        self.findings: list[tuple[str, str, int, str]] = []
        #: module name -> {global alias -> fn-taints}; catches the
        #: module-level laundering idiom ``_now = time.time``
        self.module_globals: dict[str, dict[str, TaintSet]] = {}
        for module_name in sorted(table.modules):
            info = table.modules[module_name]
            env: dict[str, TaintSet] = {}
            for stmt in info.tree.body:
                if not (
                    isinstance(stmt, ast.Assign) and len(stmt.targets) == 1
                ):
                    continue
                target = stmt.targets[0]
                if not isinstance(target, ast.Name):
                    continue
                dotted = table.resolve_dotted(stmt.value, info.imports)
                if dotted is None:
                    continue
                classified = _classify_reference(dotted)
                if classified is None:
                    continue
                kind, label = classified
                env[target.id] = (
                    Taint(kind, (ChainStep(
                        f"{label} aliased as {target.id}",
                        info.path,
                        stmt.lineno,
                    ),)),
                )
            if env:
                self.module_globals[module_name] = env

    def resolver_for(self, function: FunctionInfo) -> CallResolver:
        resolver = self._resolvers.get(function.qname)
        if resolver is None:
            resolver = CallResolver(self.table, function)
            self._resolvers[function.qname] = resolver
        return resolver

    def run(self) -> None:
        functions = list(self.table.iter_functions())
        for function in functions:
            self.summaries[function.qname] = Summary()
        for _round in range(12):
            changed = False
            for function in functions:
                analysis = _FunctionTaint(self, function, emit=False)
                summary = analysis.run()
                if summary != self.summaries[function.qname]:
                    self.summaries[function.qname] = summary
                    changed = True
            if not changed:
                break
        for function in functions:
            _FunctionTaint(self, function, emit=True).run()

    def emit(
        self, kind: str, chain: tuple[ChainStep, ...], path: str, line: int
    ) -> None:
        code = _KIND_CODE[kind]
        rendered = " -> ".join(step.render() for step in chain)
        message = (
            f"{_KIND_NOUN[kind]} reaches serialized bytes: {rendered}"
        )
        self.findings.append((code, path, line, message))


class _FunctionTaint:
    """One intraprocedural pass under the current summaries."""

    def __init__(
        self, engine: TaintEngine, function: FunctionInfo, emit: bool
    ) -> None:
        self.engine = engine
        self.function = function
        self.resolver = engine.resolver_for(function)
        self.emitting = emit
        self.env: dict[str, TaintSet] = {}
        self.returns: TaintSet = _EMPTY
        self.param_to_return: set[str] = set()
        self.param_sinks: dict[str, tuple[ChainStep, ...]] = {}
        self.is_sink = function.name in _SINK_FUNCTIONS
        self._source_exempt = function.path.endswith("repro/net/clock.py")

    # -- plumbing -------------------------------------------------------

    def run(self) -> Summary:
        node = self.function.node
        params = [
            a.arg
            for a in [
                *node.args.posonlyargs, *node.args.args, *node.args.kwonlyargs
            ]
        ]
        for param in params:
            self.env[param] = (Taint(_PARAM + param, ()),)
        passes = 2 if any(
            isinstance(sub, (ast.For, ast.While)) for sub in ast.walk(node)
        ) else 1
        for _ in range(passes):
            self._exec_block(node.body)
        return Summary(
            returns=self.returns,
            param_to_return=tuple(sorted(self.param_to_return)),
            param_sinks=tuple(sorted(self.param_sinks.items())),
        )

    def _bind(self, name: str, taints: TaintSet) -> None:
        if taints:
            self.env[name] = _join(self.env.get(name, _EMPTY), taints)

    def _bind_field(self, class_name: str, attr: str, taints: TaintSet) -> None:
        if not taints:
            return
        key = (class_name, attr)
        merged = _join(self.engine.field_taints.get(key, _EMPTY), taints)
        self.engine.field_taints[key] = merged

    def _step(self, label: str, node: ast.AST) -> ChainStep:
        return ChainStep(
            label=label,
            path=self.function.path,
            line=getattr(node, "lineno", self.function.line),
        )

    # -- statements -----------------------------------------------------

    def _exec_block(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            self._exec_stmt(stmt)

    def _exec_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return   # nested defs are analyzed as their own functions
        if isinstance(stmt, ast.ClassDef):
            return
        if isinstance(stmt, ast.Assign):
            taints = self._eval(stmt.value)
            for target in stmt.targets:
                self._assign_target(target, taints)
            return
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._assign_target(stmt.target, self._eval(stmt.value))
            return
        if isinstance(stmt, ast.AugAssign):
            taints = self._eval(stmt.value)
            self._assign_target(stmt.target, taints)
            return
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._note_return(self._eval(stmt.value), stmt)
            return
        if isinstance(stmt, ast.Expr):
            self._eval(stmt.value)
            return
        if isinstance(stmt, ast.For):
            iter_taints = self._eval(stmt.iter)
            if self.resolver.expr_is_set(stmt.iter):
                iter_taints = _join(
                    iter_taints,
                    (Taint(KIND_SET, (
                        self._step("set iterated", stmt.iter),
                    )),),
                )
            self._assign_target(stmt.target, iter_taints)
            self._exec_block(stmt.body)
            self._exec_block(stmt.orelse)
            return
        if isinstance(stmt, ast.While):
            self._eval(stmt.test)
            self._exec_block(stmt.body)
            self._exec_block(stmt.orelse)
            return
        if isinstance(stmt, ast.If):
            self._eval(stmt.test)
            self._exec_block(stmt.body)
            self._exec_block(stmt.orelse)
            return
        if isinstance(stmt, ast.With) or isinstance(stmt, ast.AsyncWith):
            for item in stmt.items:
                taints = self._eval(item.context_expr)
                if item.optional_vars is not None:
                    self._assign_target(item.optional_vars, taints)
            self._exec_block(stmt.body)
            return
        if isinstance(stmt, ast.Try):
            self._exec_block(stmt.body)
            for handler in stmt.handlers:
                self._exec_block(handler.body)
            self._exec_block(stmt.orelse)
            self._exec_block(stmt.finalbody)
            return
        if isinstance(stmt, (ast.Raise, ast.Assert)):
            for sub in ast.iter_child_nodes(stmt):
                if isinstance(sub, ast.expr):
                    self._eval(sub)
            return
        # Remaining statements (pass/break/continue/global/...) carry no
        # dataflow.

    def _assign_target(self, target: ast.expr, taints: TaintSet) -> None:
        if isinstance(target, ast.Name):
            self._bind(target.id, taints)
        elif isinstance(target, ast.Attribute):
            owner_type = self.resolver.infer_type(target.value)
            if owner_type is not None:
                self._bind_field(owner_type, target.attr, _real(taints))
        elif isinstance(target, ast.Subscript):
            # Container write: the container inherits the value's taint.
            self._assign_target(target.value, taints)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._assign_target(element, taints)
        elif isinstance(target, ast.Starred):
            self._assign_target(target.value, taints)

    def _note_return(self, taints: TaintSet, node: ast.AST) -> None:
        real = _real(taints)
        symbolic = _symbolic(taints)
        if self.is_sink:
            sink_step = self._step(
                f"serialized by {self.function.name}()", node
            )
            if self.emitting:
                for taint in real:
                    self.engine.emit(
                        taint.kind,
                        (*taint.chain, sink_step),
                        self.function.path,
                        sink_step.line,
                    )
            for taint in symbolic:
                param = taint.kind[len(_PARAM):]
                self._note_param_sink(param, (*taint.chain, sink_step))
            return
        fn_taints = tuple(t for t in taints if t.kind.startswith(_FN))
        self.returns = _join(self.returns, real, fn_taints)
        for taint in symbolic:
            self.param_to_return.add(taint.kind[len(_PARAM):])

    def _note_param_sink(
        self, param: str, chain: tuple[ChainStep, ...]
    ) -> None:
        current = self.param_sinks.get(param)
        if current is None or (len(chain), chain) < (len(current), current):
            self.param_sinks[param] = chain

    # -- expressions ----------------------------------------------------

    def _name_taints(self, name: str) -> TaintSet:
        taints = self.env.get(name, _EMPTY)
        if taints or self._source_exempt:
            return taints
        module_env = self.engine.module_globals.get(self.function.module)
        if module_env is not None:
            return module_env.get(name, _EMPTY)
        return _EMPTY

    def _eval(self, expr: ast.expr) -> TaintSet:
        if isinstance(expr, ast.Name):
            taints = self._name_taints(expr.id)
            reference = self._reference_taint(expr)
            return _join(taints, reference)
        if isinstance(expr, ast.Attribute):
            return self._eval_attribute(expr)
        if isinstance(expr, ast.Call):
            return self._eval_call(expr)
        if isinstance(expr, ast.BinOp):
            return _join(self._eval(expr.left), self._eval(expr.right))
        if isinstance(expr, ast.BoolOp):
            return _join(*[self._eval(value) for value in expr.values])
        if isinstance(expr, ast.UnaryOp):
            return self._eval(expr.operand)
        if isinstance(expr, ast.IfExp):
            self._eval(expr.test)
            return _join(self._eval(expr.body), self._eval(expr.orelse))
        if isinstance(expr, ast.Compare):
            # Comparisons collapse to a bool; control-dependence is a
            # documented under-approximation (DESIGN.md §14).
            self._eval(expr.left)
            for comparator in expr.comparators:
                self._eval(comparator)
            return _EMPTY
        if isinstance(expr, (ast.List, ast.Tuple, ast.Set)):
            return _join(*[self._eval(element) for element in expr.elts])
        if isinstance(expr, ast.Dict):
            parts = [self._eval(v) for v in expr.values]
            parts.extend(self._eval(k) for k in expr.keys if k is not None)
            return _join(*parts)
        if isinstance(expr, ast.JoinedStr):
            return _join(*[self._eval(value) for value in expr.values])
        if isinstance(expr, ast.FormattedValue):
            return self._eval(expr.value)
        if isinstance(expr, ast.Subscript):
            self._eval(expr.slice)
            return self._eval(expr.value)
        if isinstance(expr, ast.Starred):
            return self._eval(expr.value)
        if isinstance(expr, ast.Await):
            return self._eval(expr.value)
        if isinstance(expr, ast.NamedExpr):
            taints = self._eval(expr.value)
            self._assign_target(expr.target, taints)
            return taints
        if isinstance(
            expr, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
        ):
            return self._eval_comprehension(expr)
        if isinstance(expr, ast.Lambda):
            return _EMPTY
        return _EMPTY

    def _reference_taint(self, expr: ast.expr) -> TaintSet:
        """fn-taint for a bare reference to a nondeterministic callable."""
        if self._source_exempt:
            return _EMPTY
        dotted = self.engine.table.resolve_dotted(expr, self.resolver.imports)
        if dotted is None:
            return _EMPTY
        classified = _classify_reference(dotted)
        if classified is None:
            return _EMPTY
        kind, label = classified
        return (Taint(kind, (self._step(f"{label} referenced", expr),)),)

    def _eval_attribute(self, expr: ast.Attribute) -> TaintSet:
        reference = self._reference_taint(expr)
        base_taints = self._eval(expr.value)
        owner_type = self.resolver.infer_type(expr.value)
        field = _EMPTY
        if owner_type is not None:
            field = self.engine.field_taints.get(
                (owner_type, expr.attr), _EMPTY
            )
        return _join(reference, _real(base_taints), _symbolic(base_taints),
                     tuple(t for t in base_taints if t.kind.startswith(_FN)),
                     field)

    def _eval_comprehension(self, expr: ast.expr) -> TaintSet:
        assert isinstance(
            expr, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
        )
        order_taint: TaintSet = _EMPTY
        for generator in expr.generators:
            iter_taints = self._eval(generator.iter)
            if self.resolver.expr_is_set(generator.iter) and not isinstance(
                expr, ast.SetComp
            ):
                order_taint = _join(order_taint, (
                    Taint(KIND_SET, (
                        self._step("set iterated", generator.iter),
                    )),
                ))
            self._assign_target(generator.target, iter_taints)
            for condition in generator.ifs:
                self._eval(condition)
        if isinstance(expr, ast.DictComp):
            element = _join(self._eval(expr.key), self._eval(expr.value))
        else:
            element = self._eval(expr.elt)
        if isinstance(expr, ast.SetComp):
            element = _drop(element, KIND_SET)
        return _join(element, order_taint)

    # -- calls ----------------------------------------------------------

    def _eval_call(self, call: ast.Call) -> TaintSet:
        resolver = self.resolver
        arg_exprs = [
            a.value if isinstance(a, ast.Starred) else a for a in call.args
        ] + [kw.value for kw in call.keywords]
        arg_taints = [self._eval(arg) for arg in arg_exprs]

        dotted = self.engine.table.resolve_dotted(call.func, resolver.imports)
        has_args = bool(call.args or call.keywords)

        # json.dump(s): a sink wherever it appears.
        if dotted in _JSON_DUMPERS:
            sink_step = self._step(f"passed to {dotted}()", call)
            for taints in arg_taints:
                if self.emitting:
                    for taint in _real(taints):
                        self.engine.emit(
                            taint.kind,
                            (*taint.chain, sink_step),
                            self.function.path,
                            sink_step.line,
                        )
                for taint in _symbolic(taints):
                    param = taint.kind[len(_PARAM):]
                    self._note_param_sink(
                        param, (*taint.chain, sink_step)
                    )
            return _EMPTY

        # Direct nondeterminism source.
        if dotted is not None and not self._source_exempt:
            classified = _classify_call(dotted, has_args)
            if classified is not None:
                kind, label = classified
                return (Taint(kind, (self._step(label, call),)),)

        # Calling a tainted callable value (the laundering case).
        func_taints = self._eval(call.func) if not isinstance(
            call.func, ast.Name
        ) else self._name_taints(call.func.id)
        converted: list[Taint] = []
        for taint in func_taints:
            if taint.kind.startswith(_FN):
                converted.append(
                    Taint(
                        taint.kind[len(_FN):],
                        taint.chain,
                    ).hop(self._step("called through alias", call))
                )

        callee = resolver.resolved_function(call)
        name = call.func.attr if isinstance(call.func, ast.Attribute) else (
            call.func.id if isinstance(call.func, ast.Name) else None
        )

        # Order-insensitive builtins neutralize set-order taint; a few
        # neutralize everything.
        if callee is None and name in _NEUTRAL_CALLS:
            return _join(*converted) if converted else _EMPTY

        result: list[Sequence[Taint]] = [converted]

        # Materializing a set: the canonical DET103 source.
        if callee is None and name is not None:
            order_sensitive = name in _ORDER_SENSITIVE_CALLS or (
                isinstance(call.func, ast.Attribute)
                and name in _ORDER_SENSITIVE_METHODS
            )
            if order_sensitive:
                for arg in call.args:
                    if resolver.expr_is_set(arg):
                        result.append((
                            Taint(KIND_SET, (
                                self._step(
                                    f"set materialized by {name}()", call
                                ),
                            )),
                        ))
            if name == "pop" and isinstance(call.func, ast.Attribute):
                if resolver.expr_is_set(call.func.value) and not call.args:
                    result.append((
                        Taint(KIND_SET, (
                            self._step("set.pop()", call),
                        )),
                    ))

        receiver: ast.expr | None = None
        if isinstance(call.func, ast.Attribute):
            receiver = call.func.value

        if callee is not None:
            summary = self.engine.summaries.get(callee.qname, Summary())
            short = callee.name
            hop = self._step(f"via {short}()", call)
            for taint in summary.returns:
                result.append((taint.hop(hop),))
            mapped = list(_map_args(call, callee, receiver))
            for param, arg in mapped:
                taints = self._eval(arg)
                if param in summary.param_to_return:
                    through = self._step(f"through {short}({param})", call)
                    result.append(
                        tuple(t.hop(through) for t in _real(taints))
                    )
                    result.append(
                        tuple(t.hop(through) for t in _symbolic(taints))
                    )
                suffix = summary.sink_chain(param)
                if suffix is not None:
                    entry = self._step(f"passed to {short}()", call)
                    if self.emitting:
                        for taint in _real(taints):
                            chain = (*taint.chain, entry, *suffix)
                            sink = chain[-1]
                            self.engine.emit(
                                taint.kind, chain, sink.path, sink.line
                            )
                    for taint in _symbolic(taints):
                        caller_param = taint.kind[len(_PARAM):]
                        self._note_param_sink(
                            caller_param, (*taint.chain, entry, *suffix)
                        )
        else:
            # External callee: taint flows through conservatively, with
            # set-order dropped by the known order-insensitive consumers.
            for taints in arg_taints:
                real = _real(taints)
                if name in _ORDER_INSENSITIVE_CALLS:
                    real = _drop(real, KIND_SET)
                result.append(real)
            if receiver is not None:
                receiver_taints = self._eval(receiver)
                result.append(_real(receiver_taints))
                # Mutator methods fold argument taint into the receiver.
                if name in _MUTATOR_METHODS and isinstance(
                    receiver, ast.Name
                ):
                    incoming = _join(*arg_taints) if arg_taints else _EMPTY
                    self._bind(receiver.id, _real(incoming))
                    self._bind(receiver.id, _symbolic(incoming))
                elif name in _MUTATOR_METHODS and isinstance(
                    receiver, ast.Attribute
                ):
                    owner_type = resolver.infer_type(receiver.value)
                    if owner_type is not None:
                        incoming = _join(*arg_taints) if arg_taints else _EMPTY
                        self._bind_field(
                            owner_type, receiver.attr, _real(incoming)
                        )

        return _join(*result) if result else _EMPTY


# ----------------------------------------------------------------------
# LOCK001 — typed stats writes outside the lock-guarded APIs.
# ----------------------------------------------------------------------


def _lock_findings(
    table: SymbolTable, graph: CallGraph, engine: TaintEngine
) -> Iterator[tuple[str, str, int, str]]:
    for function in table.iter_functions():
        if function.class_name in _STATS_CLASSES:
            continue   # in-class writes are CONC001's domain
        resolver = engine.resolver_for(function)
        fresh: set[str] = set()
        for sub in ast.walk(function.node):
            if isinstance(sub, ast.Assign) and len(sub.targets) == 1:
                target = sub.targets[0]
                value = sub.value
                if (
                    isinstance(target, ast.Name)
                    and isinstance(value, ast.Call)
                    and isinstance(value.func, ast.Name)
                    and value.func.id in _STATS_CLASSES
                ):
                    # A stats object constructed in this frame is not
                    # yet shared; writing its fields is initialization.
                    fresh.add(target.id)
        for sub in ast.walk(function.node):
            if not isinstance(sub, (ast.Assign, ast.AugAssign)):
                continue
            targets = (
                sub.targets if isinstance(sub, ast.Assign) else [sub.target]
            )
            for target in targets:
                if not isinstance(target, ast.Attribute):
                    continue
                owner = target.value
                if isinstance(owner, ast.Attribute) and owner.attr == "stats":
                    continue   # the per-file CONC001 already flags these
                if isinstance(owner, ast.Name) and owner.id in fresh:
                    continue
                owner_type = resolver.infer_type(owner)
                if owner_type not in _STATS_CLASSES:
                    continue
                chain = graph.shortest_caller_chain(function.qname)
                reached = " -> ".join(
                    f"{site.caller.split(':', 1)[1]}()"
                    f" ({site.path}:{site.line})"
                    for site in chain
                )
                via = f"; reached via {reached}" if reached else ""
                yield (
                    "LOCK001",
                    function.path,
                    sub.lineno,
                    f"{owner_type}.{target.attr} written outside the "
                    f"lock-guarded APIs in {function.name}() — the "
                    f"receiver's type makes this a shared-stats "
                    f"mutation even though it is not spelled "
                    f"'.stats.'{via}",
                )


# ----------------------------------------------------------------------
# SEAL001 — mutation reachable from a post-seal context.
# ----------------------------------------------------------------------


def _seal_classes(table: SymbolTable) -> dict[str, set[str]]:
    """class name -> its store-mutating method names.

    A "seal class" defines ``seal()`` and guards its mutators with
    ``self._guard()`` (the `CorpusStore` idiom); the mutating set is
    exactly the methods that call the guard.
    """
    classes: dict[str, set[str]] = {}
    for module_name in sorted(table.modules):
        module = table.modules[module_name]
        for class_name in sorted(module.classes):
            info = module.classes[class_name]
            if "seal" not in info.methods:
                continue
            mutators: set[str] = set()
            for method_name in sorted(info.methods):
                method = info.methods[method_name]
                for sub in ast.walk(method.node):
                    if (
                        isinstance(sub, ast.Call)
                        and isinstance(sub.func, ast.Attribute)
                        and sub.func.attr == "_guard"
                        and isinstance(sub.func.value, ast.Name)
                        and sub.func.value.id == "self"
                    ):
                        mutators.add(method_name)
                        break
            if mutators:
                classes[info.name] = mutators
    return classes


def _seal_findings(
    table: SymbolTable, engine: TaintEngine
) -> Iterator[tuple[str, str, int, str]]:
    seal_classes = _seal_classes(table)
    if not seal_classes:
        return

    # Fixpoint: param name -> chain of steps ending at an unguarded
    # mutating call, per function.
    mutates: dict[str, dict[str, tuple[ChainStep, ...]]] = {
        f.qname: {} for f in table.iter_functions()
    }
    functions = list(table.iter_functions())

    def analyze(function: FunctionInfo) -> dict[str, tuple[ChainStep, ...]]:
        resolver = engine.resolver_for(function)
        guarded = _guarded_node_ids(function.node)
        node_args = function.node.args
        params = {
            a.arg
            for a in [
                *node_args.posonlyargs, *node_args.args, *node_args.kwonlyargs
            ]
        }
        found: dict[str, tuple[ChainStep, ...]] = {}

        def note(param: str, chain: tuple[ChainStep, ...]) -> None:
            current = found.get(param)
            if current is None or (len(chain), chain) < (
                len(current), current
            ):
                found[param] = chain

        for sub in ast.walk(function.node):
            if not isinstance(sub, ast.Call) or id(sub) in guarded:
                continue
            func = sub.func
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id in params
            ):
                receiver_type = resolver.infer_type(func.value)
                if (
                    receiver_type in seal_classes
                    and func.attr in seal_classes[receiver_type]
                ):
                    note(func.value.id, (
                        ChainStep(
                            f"{receiver_type}.{func.attr}() mutates the "
                            "store",
                            function.path,
                            sub.lineno,
                        ),
                    ))
            callee = resolver.resolved_function(sub)
            if callee is None:
                continue
            receiver = func.value if isinstance(func, ast.Attribute) else None
            for param, arg in _map_args(sub, callee, receiver):
                if not (isinstance(arg, ast.Name) and arg.id in params):
                    continue
                deeper = mutates[callee.qname].get(param)
                if deeper is None:
                    continue
                note(arg.id, (
                    ChainStep(
                        f"via {callee.name}()",
                        function.path,
                        sub.lineno,
                    ),
                    *deeper,
                ))
        return found

    for _round in range(8):
        changed = False
        for function in functions:
            result = analyze(function)
            if result != mutates[function.qname]:
                mutates[function.qname] = result
                changed = True
        if not changed:
            break

    # Sealed-variable pass: statement order matters here.
    for function in functions:
        resolver = engine.resolver_for(function)
        guarded = _guarded_node_ids(function.node)
        sealed: dict[str, int] = {}
        for sub in ast.walk(function.node):
            if not isinstance(sub, ast.Call):
                continue
            func = sub.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "seal"
                and isinstance(func.value, ast.Name)
            ):
                receiver_type = resolver.infer_type(func.value)
                if receiver_type in seal_classes:
                    line = sub.lineno
                    name = func.value.id
                    if name not in sealed or line < sealed[name]:
                        sealed[name] = line
        if not sealed:
            continue
        for sub in ast.walk(function.node):
            if not isinstance(sub, ast.Call) or id(sub) in guarded:
                continue
            func = sub.func
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id in sealed
                and sub.lineno > sealed[func.value.id]
            ):
                receiver_type = resolver.infer_type(func.value)
                if (
                    receiver_type in seal_classes
                    and func.attr in seal_classes[receiver_type]
                ):
                    name = func.value.id
                    yield (
                        "SEAL001",
                        function.path,
                        sub.lineno,
                        f"{receiver_type}.{func.attr}() called on "
                        f"'{name}' after {name}.seal() "
                        f"({function.path}:{sealed[name]}) without a "
                        "SealedCorpusError guard",
                    )
            callee = resolver.resolved_function(sub)
            if callee is None:
                continue
            receiver = func.value if isinstance(func, ast.Attribute) else None
            for param, arg in _map_args(sub, callee, receiver):
                if not isinstance(arg, ast.Name):
                    continue
                name = arg.id
                if name not in sealed or sub.lineno <= sealed[name]:
                    continue
                deeper = mutates[callee.qname].get(param)
                if deeper is None:
                    continue
                rendered = " -> ".join(step.render() for step in deeper)
                yield (
                    "SEAL001",
                    function.path,
                    sub.lineno,
                    f"'{name}' is sealed at {function.path}:"
                    f"{sealed[name]} but reaches a store mutation "
                    f"through {callee.name}(): {rendered}",
                )


# ----------------------------------------------------------------------
# Catalog descriptors + entry point.
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class FlowCheckerInfo:
    """Catalog metadata for one interprocedural checker."""

    code: str
    name: str
    rationale: str
    hint: str


FLOW_CATALOG: tuple[FlowCheckerInfo, ...] = (
    FlowCheckerInfo(
        code="DET101",
        name="nondeterministic value reaches serialized bytes (flow)",
        rationale=(
            "DET001/DET002 flag wall-clock and unseeded-RNG calls at "
            "their source line; laundering the value through a helper, "
            "an alias (x = time.time) or a dataclass field hides the "
            "source from per-file checks while the bytes still diverge "
            "between runs"
        ),
        hint=(
            "thread the value from the injected Clock / seeded "
            "generator instead; the finding's chain lists every hop "
            "from source to sink"
        ),
    ),
    FlowCheckerInfo(
        code="DET103",
        name="set-iteration order reaches serialized bytes (flow)",
        rationale=(
            "DET003 sees set iteration only where the set's type is "
            "syntactically visible; an order-dependent list built from "
            "a set in one function and serialized two calls away "
            "still breaks PYTHONHASHSEED bit-identity"
        ),
        hint=(
            "sort at the materialization site (sorted(..., key=...)); "
            "the chain shows where order entered and where it escapes"
        ),
    ),
    FlowCheckerInfo(
        code="CONC102",
        name="worker-local id reaches serialized bytes (flow)",
        rationale=(
            "CONC002 flags os.getpid()/current_process() only inside "
            "serializer bodies; a pid stashed in a variable or field "
            "and serialized later still makes shard payloads differ "
            "between processes"
        ),
        hint=(
            "key payloads by shard id; the chain shows the pid's path "
            "into the serialized bytes"
        ),
    ),
    FlowCheckerInfo(
        code="LOCK001",
        name="stats mutation not dominated by the lock-guarded APIs",
        rationale=(
            "CONC001 matches the '.stats.' spelling, so a wrapper "
            "taking a ClientStats/CrawlStats parameter (or an "
            "attribute not named 'stats') can mutate shared counters "
            "unguarded; receiver-type inference closes that blind spot"
        ),
        hint=(
            "route the write through the stats object's bump()/"
            "record_*() APIs (they hold the lock)"
        ),
    ),
    FlowCheckerInfo(
        code="SEAL001",
        name="store mutation reachable from a post-seal context",
        rationale=(
            "after CorpusStore.seal() the memoised analysis indexes "
            "are shared; a mutating method reached from post-seal code "
            "raises SealedCorpusError at runtime at best and corrupts "
            "the shared indexes at worst"
        ),
        hint=(
            "move the mutation before seal(), or guard the call with "
            "try/except SealedCorpusError where rejection is expected"
        ),
    ),
)


def project_callgraph(modules: Sequence[ParsedModule]) -> CallGraph:
    """Symbol table + call graph for ``--dump-callgraph``."""
    return build_callgraph(SymbolTable.build(modules))


def analyze_project(modules: Sequence[ParsedModule]) -> list[Finding]:
    """Run every interprocedural checker; returns unsorted findings."""
    table = SymbolTable.build(modules)
    graph = build_callgraph(table)
    engine = TaintEngine(table)
    engine.run()

    raw: list[tuple[str, str, int, str]] = list(engine.findings)
    raw.extend(_lock_findings(table, graph, engine))
    raw.extend(_seal_findings(table, engine))

    by_code = {info.code: info for info in FLOW_CATALOG}
    by_path = {module.path: module for module in modules}
    findings: list[Finding] = []
    seen: set[tuple[str, str, int, str]] = set()
    for code, path, line, message in raw:
        key = (code, path, line, message)
        if key in seen:
            continue
        seen.add(key)
        module = by_path.get(path)
        info = by_code[code]
        if module is None:
            continue
        findings.append(module.finding_at(code, line, 0, message, info.hint))
    return findings
