"""The checker catalog.

Every checker targets one repo-specific invariant behind the
bit-identity guarantee (corpus/stats/checkpoints identical across
``--connections``, kill→resume chains and ``--workers``):

========  ==============================================================
DET001    wall-clock access outside ``net/clock.py``
DET002    unseeded randomness (stdlib ``random`` or numpy global state)
DET003    iteration over an unordered ``set``/``frozenset``/``.keys()``
DET004    set construction inside a serializer (checkpoint/report bytes)
CONC001   stats-object writes outside the lock-guarded mutation APIs
CONC002   multiprocess results collected in completion order, or
          worker-local ids (pid) reaching serialized payloads
CHK001    checkpointed dataclass field missing from its schema
CHK002    store-persisted dataclass field missing from its JSONL codec
CHK003    column projection reads a field absent from the store codec
SUP001    malformed suppression comments (engine-level)
========  ==============================================================

Checkers are deliberately syntactic: they over-approximate, and the
``# repro: allow <CODE> <reason>`` annotation plus the committed
baseline absorb the sites a human has judged safe.  The catalog order
is the report order for same-line findings.
"""

from __future__ import annotations

import ast
from typing import Iterator, Sequence

from repro.analysis.engine import Finding, ParsedModule

__all__ = [
    "CATALOG",
    "PROJECT_CATALOG",
    "Checker",
    "known_codes",
]


class Checker:
    """Base per-module checker."""

    code: str = ""
    name: str = ""
    rationale: str = ""
    hint: str = ""
    #: path suffixes (posix) where this checker never fires.
    allowed_paths: tuple[str, ...] = ()

    def is_exempt(self, module: ParsedModule) -> bool:
        return any(module.path.endswith(suffix) for suffix in self.allowed_paths)

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        if self.is_exempt(module):
            return
        yield from self.visit(module)

    def visit(self, module: ParsedModule) -> Iterator[Finding]:
        raise NotImplementedError


# ----------------------------------------------------------------------
# Import resolution shared by the call-site checkers.
# ----------------------------------------------------------------------


def _import_map(tree: ast.Module) -> dict[str, str]:
    """Local name -> dotted origin, for every import in the module.

    ``import numpy as np``           maps ``np -> numpy``;
    ``from datetime import datetime`` maps ``datetime ->
    datetime.datetime``; the resolver below chains attribute accesses, so
    ``np.random.default_rng`` resolves to ``numpy.random.default_rng``.
    """
    mapping: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                mapping[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom):
            if node.module is None or node.level:
                continue   # relative imports never hide stdlib randomness
            for alias in node.names:
                mapping[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )
    return mapping


def _resolve(expr: ast.expr, imports: dict[str, str]) -> str | None:
    """Dotted origin of a Name/Attribute chain, or None."""
    if isinstance(expr, ast.Name):
        return imports.get(expr.id)
    if isinstance(expr, ast.Attribute):
        base = _resolve(expr.value, imports)
        if base is not None:
            return f"{base}.{expr.attr}"
    return None


# ----------------------------------------------------------------------
# DET001 — wall-clock access.
# ----------------------------------------------------------------------


class WallClockChecker(Checker):
    code = "DET001"
    name = "wall-clock access"
    rationale = (
        "every component paces itself on an injected Clock; reading the "
        "host's clock makes retry schedules, rate-limit windows and "
        "timestamps differ between runs"
    )
    hint = (
        "take a repro.net.clock.Clock parameter and call clock.now() / "
        "clock.sleep()"
    )
    allowed_paths = ("repro/net/clock.py",)

    _WALL = frozenset({
        "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
        "time.perf_counter", "time.perf_counter_ns", "time.process_time",
        "time.sleep", "time.localtime", "time.gmtime",
    })
    _ARGLESS_WALL = frozenset({
        "datetime.datetime.now", "datetime.datetime.utcnow",
        "datetime.datetime.today", "datetime.date.today",
    })

    def visit(self, module: ParsedModule) -> Iterator[Finding]:
        imports = _import_map(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            target = _resolve(node.func, imports)
            if target is None:
                continue
            if target in self._WALL:
                yield module.finding(
                    self.code, node,
                    f"wall-clock call {target}() outside net/clock.py",
                    self.hint,
                )
            elif (
                target in self._ARGLESS_WALL
                and not node.args
                and not node.keywords
            ):
                yield module.finding(
                    self.code, node,
                    f"argless {target}() reads the wall clock",
                    self.hint,
                )


# ----------------------------------------------------------------------
# DET002 — unseeded randomness.
# ----------------------------------------------------------------------


class UnseededRandomChecker(Checker):
    code = "DET002"
    name = "unseeded randomness"
    rationale = (
        "all randomness must descend from the world seed "
        "(np.random.SeedSequence(config.seed) in platform/world.py); "
        "module-level RNG state breaks run-to-run bit-identity"
    )
    hint = (
        "thread an np.random.Generator parameter down from the world's "
        "seeded streams (see platform/latent.py), or pass an explicit seed"
    )

    # numpy.random module-level calls that touch the hidden global state.
    _NUMPY_GLOBAL = frozenset({
        "seed", "rand", "randn", "randint", "random", "random_sample",
        "ranf", "sample", "choice", "shuffle", "permutation", "bytes",
        "uniform", "normal", "standard_normal", "beta", "binomial",
        "poisson", "exponential", "gamma", "lognormal", "pareto", "zipf",
    })

    def visit(self, module: ParsedModule) -> Iterator[Finding]:
        imports = _import_map(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            target = _resolve(node.func, imports)
            if target is None:
                continue
            yield from self._check_call(module, node, target)

    def _check_call(
        self, module: ParsedModule, node: ast.Call, target: str
    ) -> Iterator[Finding]:
        has_args = bool(node.args or node.keywords)
        if target == "random.Random":
            if not has_args:
                yield module.finding(
                    self.code, node,
                    "random.Random() constructed without a seed",
                    "pass an explicit seed derived from the world seed",
                )
        elif target == "random.SystemRandom":
            yield module.finding(
                self.code, node,
                "random.SystemRandom draws OS entropy (never reproducible)",
                self.hint,
            )
        elif target.startswith("random.") and target.count(".") == 1:
            yield module.finding(
                self.code, node,
                f"{target}() uses the process-global stdlib RNG",
                self.hint,
            )
        elif target in ("numpy.random.default_rng", "numpy.random.Generator",
                        "numpy.random.SeedSequence"):
            if not has_args:
                yield module.finding(
                    self.code, node,
                    f"{target}() without a seed draws OS entropy",
                    "pass a seed or a spawned SeedSequence stream",
                )
        elif (
            target.startswith("numpy.random.")
            and target.rsplit(".", 1)[1] in self._NUMPY_GLOBAL
        ):
            yield module.finding(
                self.code, node,
                f"{target}() uses numpy's hidden global RNG state",
                self.hint,
            )


# ----------------------------------------------------------------------
# DET003 — unordered iteration.
# ----------------------------------------------------------------------

# Callables whose result does not depend on argument order.
_ORDER_INSENSITIVE_CALLS = frozenset({
    "sorted", "len", "sum", "min", "max", "any", "all", "set", "frozenset",
    "bool", "dict",
})
# Callables that materialise their argument's order: a set flowing into
# one of these leaks hash order into downstream state.  A set passed to
# any *other* call is not flagged here — if the callee iterates it, the
# callee's own set-annotated parameter triggers the checker at the real
# iteration site.
_ORDER_SENSITIVE_CALLS = frozenset({
    "list", "tuple", "iter", "enumerate", "reversed", "deque", "zip",
})
_ORDER_SENSITIVE_METHODS = frozenset({
    "join", "extend", "extendleft", "add_nodes_from", "add_edges_from",
})
# Methods that are order-insensitive when a set is passed to them.
_ORDER_INSENSITIVE_METHODS = frozenset({
    "union", "intersection", "difference", "symmetric_difference",
    "issubset", "issuperset", "isdisjoint", "update",
    "intersection_update", "difference_update", "discard",
})
_SET_RETURNING_METHODS = frozenset({
    "union", "intersection", "difference", "symmetric_difference",
})
_SET_ANNOTATIONS = frozenset({"set", "frozenset", "Set", "AbstractSet",
                              "FrozenSet", "MutableSet"})


def _annotation_is_set(annotation: ast.expr | None) -> bool:
    if annotation is None:
        return False
    node = annotation
    if isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Attribute):
        return node.attr in _SET_ANNOTATIONS
    if isinstance(node, ast.Name):
        return node.id in _SET_ANNOTATIONS
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        text = node.value.split("[", 1)[0].strip()
        return text.rsplit(".", 1)[-1] in _SET_ANNOTATIONS
    return False


class _SetScope:
    """Tracks which local names / self-attributes hold sets."""

    def __init__(self) -> None:
        self.names: dict[str, bool] = {}
        self.self_attrs: set[str] = set()

    def is_set(self, expr: ast.expr) -> bool:
        if isinstance(expr, ast.Name):
            return self.names.get(expr.id, False)
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id in ("self", "cls")
        ):
            return expr.attr in self.self_attrs
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return True
        if isinstance(expr, ast.Call):
            func = expr.func
            if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
                return True
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _SET_RETURNING_METHODS
                and self.is_set(func.value)
            ):
                return True
        if isinstance(expr, ast.BinOp) and isinstance(
            expr.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self.is_set(expr.left) or self.is_set(expr.right)
        return False


class UnorderedIterationChecker(Checker):
    code = "DET003"
    name = "unordered iteration"
    rationale = (
        "set iteration order depends on insertion history and (for str "
        "keys) PYTHONHASHSEED; any such order reaching corpus, checkpoint "
        "or report bytes silently breaks bit-identity across runs"
    )
    hint = (
        "wrap the iterable in sorted(...) where order can reach output, "
        "or annotate the line with '# repro: allow DET003 <reason>'"
    )

    def visit(self, module: ParsedModule) -> Iterator[Finding]:
        yield from self._scan_scope(
            module, module.tree.body, _SetScope(), class_attrs=set()
        )

    # -- scope plumbing -------------------------------------------------

    def _scan_scope(
        self,
        module: ParsedModule,
        body: Sequence[ast.stmt],
        scope: _SetScope,
        class_attrs: set[str],
    ) -> Iterator[Finding]:
        scope.self_attrs |= class_attrs
        for stmt in body:
            yield from self._scan_stmt(module, stmt, scope, class_attrs)

    def _scan_stmt(
        self,
        module: ParsedModule,
        stmt: ast.stmt,
        scope: _SetScope,
        class_attrs: set[str],
    ) -> Iterator[Finding]:
        if isinstance(stmt, ast.ClassDef):
            attrs = _collect_set_attributes(stmt)
            for inner in stmt.body:
                yield from self._scan_stmt(module, inner, _SetScope(), attrs)
            return
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            inner_scope = _SetScope()
            inner_scope.self_attrs |= class_attrs
            for arg in _all_args(stmt.args):
                if _annotation_is_set(arg.annotation):
                    inner_scope.names[arg.arg] = True
            yield from self._scan_scope(
                module, stmt.body, inner_scope, class_attrs
            )
            return
        # Track assignments, then flag iteration sites in this statement.
        for node in ast.walk(stmt):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    scope.names[target.id] = scope.is_set(node.value)
                elif (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id in ("self", "cls")
                    and scope.is_set(node.value)
                ):
                    scope.self_attrs.add(target.attr)
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                if _annotation_is_set(node.annotation):
                    scope.names[node.target.id] = True
        yield from self._scan_sites(module, stmt, scope)

    # -- iteration-site detection --------------------------------------

    def _scan_sites(
        self, module: ParsedModule, stmt: ast.stmt, scope: _SetScope
    ) -> Iterator[Finding]:
        skip: set[int] = set()
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call):
                name = _call_name(node.func)
                if name in _ORDER_INSENSITIVE_CALLS or (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in _ORDER_INSENSITIVE_METHODS
                ):
                    # The whole argument subtree is neutralised: hash
                    # order cannot escape an order-insensitive consumer.
                    for arg in node.args:
                        skip.update(id(sub) for sub in ast.walk(arg))
        for node in ast.walk(stmt):
            if isinstance(node, ast.For):
                yield from self._flag(module, node.iter, scope, skip, "for")
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp)):
                if id(node) in skip:
                    continue   # consumed by an order-insensitive call
                for gen in node.generators:
                    yield from self._flag(
                        module, gen.iter, scope, skip, "comprehension"
                    )
            elif isinstance(node, ast.DictComp):
                for gen in node.generators:
                    yield from self._flag(
                        module, gen.iter, scope, skip, "dict comprehension"
                    )
            elif isinstance(node, ast.Call):
                yield from self._flag_call(module, node, scope, skip)
            elif isinstance(node, ast.Starred):
                yield from self._flag(module, node.value, scope, skip, "unpack")

    def _flag_call(
        self,
        module: ParsedModule,
        node: ast.Call,
        scope: _SetScope,
        skip: set[int],
    ) -> Iterator[Finding]:
        name = _call_name(node.func)
        ordered = name in _ORDER_SENSITIVE_CALLS or (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _ORDER_SENSITIVE_METHODS
        )
        if not ordered:
            return
        for arg in node.args:
            context = f"argument to {name}()"
            yield from self._flag(module, arg, scope, skip, context)

    def _flag(
        self,
        module: ParsedModule,
        expr: ast.expr,
        scope: _SetScope,
        skip: set[int],
        context: str,
    ) -> Iterator[Finding]:
        if id(expr) in skip:
            return
        if (
            isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Attribute)
            and expr.func.attr == "keys"
            and not expr.args
        ):
            yield module.finding(
                self.code, expr,
                f".keys() iterated in a {context} — iterate the dict "
                "itself (insertion order) or sorted(d) when order reaches "
                "output",
                self.hint,
            )
            return
        if scope.is_set(expr):
            yield module.finding(
                self.code, expr,
                f"unordered set iterated/consumed in a {context}",
                self.hint,
            )


def _all_args(args: ast.arguments) -> list[ast.arg]:
    return [*args.posonlyargs, *args.args, *args.kwonlyargs]


def _call_name(func: ast.expr) -> str | None:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _collect_set_attributes(cls: ast.ClassDef) -> set[str]:
    """Attributes of ``cls`` that are set-typed (annotation or ctor)."""
    attrs: set[str] = set()
    for stmt in cls.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(
            stmt.target, ast.Name
        ):
            if _annotation_is_set(stmt.annotation):
                attrs.add(stmt.target.id)
            # dataclass field(default_factory=set)
            if isinstance(stmt.value, ast.Call):
                for kw in stmt.value.keywords:
                    if (
                        kw.arg == "default_factory"
                        and isinstance(kw.value, ast.Name)
                        and kw.value.id in ("set", "frozenset")
                    ):
                        attrs.add(stmt.target.id)
    probe = _SetScope()
    for node in ast.walk(cls):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and probe.is_set(node.value)
            ):
                attrs.add(target.attr)
        elif isinstance(node, ast.AnnAssign) and isinstance(
            node.target, ast.Attribute
        ):
            if (
                isinstance(node.target.value, ast.Name)
                and node.target.value.id == "self"
                and _annotation_is_set(node.annotation)
            ):
                attrs.add(node.target.attr)
    return attrs


# ----------------------------------------------------------------------
# DET004 — sets inside serializers.
# ----------------------------------------------------------------------

_SERIALIZER_NAMES = frozenset({
    "to_payload", "to_dict", "to_state", "to_json",
    "result_to_payload", "dumps_result", "snapshot",
})


class SerializedSetChecker(Checker):
    code = "DET004"
    name = "set constructed in serializer"
    rationale = (
        "checkpoint and report payloads are compared byte-for-byte; a "
        "set (or set comprehension) built inside a serializer reaches "
        "JSON in hash order"
    )
    hint = (
        "build a sorted list (sorted(..., key=...)) instead of a set in "
        "serialization code"
    )

    def visit(self, module: ParsedModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node.name in _SERIALIZER_NAMES
            ):
                yield from self._scan(module, node, f"serializer {node.name}()")
            elif (
                isinstance(node, ast.Call)
                and _call_name(node.func) == "CrawlCheckpoint"
            ):
                for arg in [*node.args, *(kw.value for kw in node.keywords)]:
                    yield from self._scan(
                        module, arg, "CrawlCheckpoint(...) payload"
                    )

    def _scan(
        self, module: ParsedModule, root: ast.AST, context: str
    ) -> Iterator[Finding]:
        for node in ast.walk(root):
            if isinstance(node, (ast.Set, ast.SetComp)):
                yield module.finding(
                    self.code, node,
                    f"set built inside {context} serializes in hash order",
                    self.hint,
                )
            elif isinstance(node, ast.Call) and isinstance(
                node.func, ast.Name
            ):
                if node.func.id in ("set", "frozenset"):
                    yield module.finding(
                        self.code, node,
                        f"{node.func.id}(...) built inside {context} "
                        "serializes in hash order",
                        self.hint,
                    )


# ----------------------------------------------------------------------
# CONC001 — stats writes outside the lock.
# ----------------------------------------------------------------------

_STATS_CLASSES = frozenset({"ClientStats", "CrawlStats"})
_INIT_METHODS = frozenset({"__init__", "__post_init__"})


class StatsWriteChecker(Checker):
    code = "CONC001"
    name = "unguarded stats write"
    rationale = (
        "ClientStats/CrawlStats are shared across parse workers and pool "
        "merges; a bare read-modify-write races and loses counts (the "
        "lock-guarded bump()/record_*() APIs exist for this)"
    )
    hint = (
        "go through the stats object's lock-guarded mutation methods, or "
        "add one holding self._lock"
    )

    def visit(self, module: ParsedModule) -> Iterator[Finding]:
        stats_classes = [
            node for node in ast.walk(module.tree)
            if isinstance(node, ast.ClassDef) and node.name in _STATS_CLASSES
        ]
        inside: set[int] = set()
        for cls in stats_classes:
            for node in ast.walk(cls):
                inside.add(id(node))
            yield from self._scan_stats_class(module, cls)
        for node in ast.walk(module.tree):
            if id(node) in inside:
                continue
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                yield from self._scan_external_write(module, node)

    def _scan_external_write(
        self, module: ParsedModule, node: ast.Assign | ast.AugAssign
    ) -> Iterator[Finding]:
        targets = (
            node.targets if isinstance(node, ast.Assign) else [node.target]
        )
        for target in targets:
            if not isinstance(target, ast.Attribute):
                continue
            owner = target.value
            # Only attribute chains ending in `.stats` (self.stats.x,
            # client.stats.x): a bare local named `stats` is usually a
            # single-threaded result object (e.g. UrlTableStats).
            if isinstance(owner, ast.Attribute) and owner.attr == "stats":
                yield module.finding(
                    self.code, node,
                    f"direct write to stats attribute "
                    f"'{target.attr}' bypasses the stats lock",
                    self.hint,
                )

    def _scan_stats_class(
        self, module: ParsedModule, cls: ast.ClassDef
    ) -> Iterator[Finding]:
        for method in cls.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if method.name in _INIT_METHODS:
                continue
            locked: set[int] = set()
            for node in ast.walk(method):
                if isinstance(node, ast.With) and _mentions_lock(node):
                    for inner in ast.walk(node):
                        locked.add(id(inner))
            for node in ast.walk(method):
                if id(node) in locked:
                    continue
                if not isinstance(node, (ast.Assign, ast.AugAssign)):
                    continue
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                        and not target.attr.startswith("_")
                    ):
                        yield module.finding(
                            self.code, node,
                            f"{cls.name}.{method.name} writes self."
                            f"{target.attr} outside 'with self._lock'",
                            self.hint,
                        )


def _mentions_lock(node: ast.With) -> bool:
    for item in node.items:
        for sub in ast.walk(item.context_expr):
            if isinstance(sub, ast.Attribute) and "lock" in sub.attr.lower():
                return True
            if isinstance(sub, ast.Name) and "lock" in sub.id.lower():
                return True
    return False


# ----------------------------------------------------------------------
# CONC002 — scheduling-ordered merges / worker-local payload values.
# ----------------------------------------------------------------------

#: call origins that yield multiprocess results in *completion* order.
_UNORDERED_COLLECTORS = frozenset({
    "concurrent.futures.as_completed",
    "multiprocessing.connection.wait",
})

#: call origins whose value identifies the worker *process*, not the shard.
_WORKER_LOCAL_ORIGINS = frozenset({
    "os.getpid",
    "multiprocessing.current_process",
})

_JSON_DUMPERS = frozenset({"json.dump", "json.dumps"})


class ShardOrderChecker(Checker):
    code = "CONC002"
    name = "scheduling-ordered shard merge"
    rationale = (
        "the sharded crawl is byte-identical only because the parent "
        "consumes worker results in shard-id order and payloads are "
        "keyed by shard id; collecting in completion order or "
        "serializing process ids makes the merged corpus depend on OS "
        "scheduling"
    )
    hint = (
        "join/collect workers in shard-id order (never as_completed / "
        "imap_unordered) and key payloads by shard id instead of "
        "os.getpid()/multiprocessing.current_process()"
    )

    def visit(self, module: ParsedModule) -> Iterator[Finding]:
        imports = _import_map(module.tree)
        serialized = self._serialized_regions(module.tree, imports)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = _resolve(node.func, imports)
            if resolved in _UNORDERED_COLLECTORS:
                yield module.finding(
                    self.code, node,
                    f"{resolved}(...) yields worker results in completion "
                    "order, not shard order",
                    self.hint,
                )
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "imap_unordered"
            ):
                yield module.finding(
                    self.code, node,
                    ".imap_unordered(...) yields worker results in "
                    "completion order, not shard order",
                    self.hint,
                )
            elif resolved in _WORKER_LOCAL_ORIGINS and id(node) in serialized:
                yield module.finding(
                    self.code, node,
                    f"worker-local {resolved}() reaches a serialized "
                    "payload; bytes differ between processes",
                    self.hint,
                )

    @staticmethod
    def _serialized_regions(
        tree: ast.Module, imports: dict[str, str]
    ) -> set[int]:
        """Node ids inside serializer bodies or json.dump(s) arguments."""
        regions: set[int] = set()
        for node in ast.walk(tree):
            if (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node.name in _SERIALIZER_NAMES
            ):
                for inner in ast.walk(node):
                    regions.add(id(inner))
            elif (
                isinstance(node, ast.Call)
                and _resolve(node.func, imports) in _JSON_DUMPERS
            ):
                for arg in [*node.args, *(kw.value for kw in node.keywords)]:
                    for inner in ast.walk(arg):
                        regions.add(id(inner))
        return regions


# ----------------------------------------------------------------------
# CHK001 — checkpoint schema drift (project-level).
# ----------------------------------------------------------------------


class ProjectChecker:
    """Base checker that needs the whole parsed tree at once."""

    code: str = ""
    name: str = ""
    rationale: str = ""
    hint: str = ""

    def check_project(
        self, modules: Sequence[ParsedModule]
    ) -> Iterator[Finding]:
        raise NotImplementedError


#: dataclasses serialised by the module-level result payload functions.
_RECORD_CLASSES = frozenset({"CrawledUser", "CrawledUrl", "CrawledComment"})
_RECORD_SERIALIZERS = ("result_to_payload", "result_from_payload")


class CheckpointSchemaChecker(ProjectChecker):
    code = "CHK001"
    name = "checkpoint schema drift"
    rationale = (
        "a field added to a checkpointed dataclass but not to its "
        "serializer round-trips as its default after resume — the crawl "
        "silently diverges from an uninterrupted run"
    )
    hint = (
        "register the field in the matching to_*/from_* serializer "
        "(checkpoint format v2, DESIGN.md §7)"
    )

    def check_project(
        self, modules: Sequence[ParsedModule]
    ) -> Iterator[Finding]:
        record_strings: set[str] = set()
        serializers_found = 0
        for module in modules:
            for node in module.tree.body:
                if (
                    isinstance(node, ast.FunctionDef)
                    and node.name in _RECORD_SERIALIZERS
                ):
                    serializers_found += 1
                    record_strings |= _string_constants(node)
        for module in modules:
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.ClassDef):
                    continue
                if not _is_dataclass(node):
                    continue
                yield from self._check_inline(module, node)
                if node.name in _RECORD_CLASSES and serializers_found:
                    yield from self._check_against(
                        module, node, record_strings,
                        "result_to_payload/result_from_payload",
                    )

    def _check_inline(
        self, module: ParsedModule, cls: ast.ClassDef
    ) -> Iterator[Finding]:
        serializer_strings: set[str] = set()
        has_serializer = False
        for stmt in cls.body:
            if (
                isinstance(stmt, ast.FunctionDef)
                and stmt.name in _SERIALIZER_NAMES
            ):
                has_serializer = True
                serializer_strings |= _string_constants(stmt)
        if not has_serializer:
            return
        yield from self._check_against(
            module, cls, serializer_strings, f"{cls.name}'s serializer"
        )

    def _check_against(
        self,
        module: ParsedModule,
        cls: ast.ClassDef,
        strings: set[str],
        where: str,
    ) -> Iterator[Finding]:
        for name, node in _dataclass_fields(cls):
            if name not in strings:
                yield module.finding(
                    self.code, node,
                    f"field {cls.name}.{name} is not registered in {where}",
                    self.hint,
                )


# ----------------------------------------------------------------------
# CHK002 — store codec drift (project-level).
# ----------------------------------------------------------------------

#: store-persisted dataclass -> its encode/decode codec pair in
#: :mod:`repro.store.codecs`.
_CODEC_FUNCTIONS: dict[str, tuple[str, str]] = {
    "CrawledUser": ("encode_user", "decode_user"),
    "CrawledUrl": ("encode_url", "decode_url"),
    "CrawledComment": ("encode_comment", "decode_comment"),
}


class StoreCodecChecker(ProjectChecker):
    code = "CHK002"
    name = "store codec drift"
    rationale = (
        "a field added to a store-persisted dataclass but not to its "
        "JSONL codec is dropped from every sealed segment — the corpus "
        "silently loses it across a checkpoint-v3 resume while an "
        "uninterrupted run keeps it"
    )
    hint = (
        "register the field in the matching encode_*/decode_* codec "
        "(repro.store.codecs, DESIGN.md §10)"
    )

    def check_project(
        self, modules: Sequence[ParsedModule]
    ) -> Iterator[Finding]:
        # Field names appear as string constants inside the codec
        # functions; collect them per record class, mirroring CHK001.
        codec_strings: dict[str, set[str]] = {}
        for module in modules:
            for node in module.tree.body:
                if not isinstance(node, ast.FunctionDef):
                    continue
                for cls_name, functions in _CODEC_FUNCTIONS.items():
                    if node.name in functions:
                        codec_strings.setdefault(cls_name, set()).update(
                            _string_constants(node)
                        )
        if not codec_strings:
            return
        for module in modules:
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.ClassDef):
                    continue
                strings = codec_strings.get(node.name)
                if strings is None or not _is_dataclass(node):
                    continue
                where = "/".join(_CODEC_FUNCTIONS[node.name])
                for name, field_node in _dataclass_fields(node):
                    if name not in strings:
                        yield module.finding(
                            self.code, field_node,
                            f"field {node.name}.{name} is not encoded by "
                            f"its store codec ({where})",
                            self.hint,
                        )


def _is_dataclass(cls: ast.ClassDef) -> bool:
    for decorator in cls.decorator_list:
        node = decorator.func if isinstance(decorator, ast.Call) else decorator
        if isinstance(node, ast.Name) and node.id == "dataclass":
            return True
        if isinstance(node, ast.Attribute) and node.attr == "dataclass":
            return True
    return False


def _dataclass_fields(cls: ast.ClassDef) -> Iterator[tuple[str, ast.AST]]:
    for stmt in cls.body:
        if not isinstance(stmt, ast.AnnAssign):
            continue
        if not isinstance(stmt.target, ast.Name):
            continue
        name = stmt.target.id
        if name.startswith("_"):
            continue
        annotation = stmt.annotation
        base = annotation.value if isinstance(annotation, ast.Subscript) else annotation
        if isinstance(base, ast.Name) and base.id == "ClassVar":
            continue
        if isinstance(base, ast.Attribute) and base.attr == "ClassVar":
            continue
        yield name, stmt


def _string_constants(node: ast.AST) -> set[str]:
    return {
        sub.value
        for sub in ast.walk(node)
        if isinstance(sub, ast.Constant) and isinstance(sub.value, str)
    }


# ----------------------------------------------------------------------
# CHK003 — column projection schema drift (project-level).
# ----------------------------------------------------------------------

#: module-level dict literal mapping record class -> projected fields.
_PROJECTION_SPEC_NAME = "PROJECTION_SPEC"


class ColumnSchemaChecker(ProjectChecker):
    code = "CHK003"
    name = "column schema drift"
    rationale = (
        "a field the column projector reads but the JSONL codec does not "
        "persist would project correctly during the crawl yet re-project "
        "differently (or crash) from the sealed segment log — the "
        "columnar fallback path would silently diverge from the freshly "
        "projected arrays"
    )
    hint = (
        "project only fields the store codec round-trips "
        "(repro.store.codecs; PROJECTION_SPEC in repro.store.columns, "
        "DESIGN.md §11)"
    )

    def check_project(
        self, modules: Sequence[ParsedModule]
    ) -> Iterator[Finding]:
        # Same collection as CHK002: field names appear as string
        # constants inside each record class's codec pair.
        codec_strings: dict[str, set[str]] = {}
        for module in modules:
            for node in module.tree.body:
                if not isinstance(node, ast.FunctionDef):
                    continue
                for cls_name, functions in _CODEC_FUNCTIONS.items():
                    if node.name in functions:
                        codec_strings.setdefault(cls_name, set()).update(
                            _string_constants(node)
                        )
        if not codec_strings:
            return
        for module in modules:
            for spec in _projection_specs(module.tree):
                for cls_name, fields in _projection_entries(spec):
                    strings = codec_strings.get(cls_name)
                    if strings is None:
                        continue
                    for field_name, node in fields:
                        if field_name not in strings:
                            where = "/".join(_CODEC_FUNCTIONS[cls_name])
                            yield module.finding(
                                self.code, node,
                                f"projected field {cls_name}.{field_name} "
                                f"is not persisted by its store codec "
                                f"({where})",
                                self.hint,
                            )


def _projection_specs(tree: ast.Module) -> Iterator[ast.Dict]:
    """Module-level ``PROJECTION_SPEC = {...}`` dict literals."""
    for node in tree.body:
        if isinstance(node, ast.Assign):
            targets = node.targets
            value = node.value
        elif isinstance(node, ast.AnnAssign):
            targets = [node.target]
            value = node.value
        else:
            continue
        if not isinstance(value, ast.Dict):
            continue
        for target in targets:
            if (
                isinstance(target, ast.Name)
                and target.id == _PROJECTION_SPEC_NAME
            ):
                yield value
                break


def _projection_entries(
    spec: ast.Dict,
) -> Iterator[tuple[str, list[tuple[str, ast.AST]]]]:
    """(class name, [(field name, node), ...]) pairs of a spec literal."""
    for key, value in zip(spec.keys, spec.values):
        if not (
            isinstance(key, ast.Constant) and isinstance(key.value, str)
        ):
            continue
        if not isinstance(value, (ast.Tuple, ast.List)):
            continue
        fields = [
            (element.value, element)
            for element in value.elts
            if isinstance(element, ast.Constant)
            and isinstance(element.value, str)
        ]
        yield key.value, fields


# ----------------------------------------------------------------------
# The catalog.
# ----------------------------------------------------------------------

CATALOG: tuple[Checker, ...] = (
    WallClockChecker(),
    UnseededRandomChecker(),
    UnorderedIterationChecker(),
    SerializedSetChecker(),
    StatsWriteChecker(),
    ShardOrderChecker(),
)

PROJECT_CATALOG: tuple[ProjectChecker, ...] = (
    CheckpointSchemaChecker(),
    StoreCodecChecker(),
    ColumnSchemaChecker(),
)


def known_codes() -> set[str]:
    """Every valid checker code (for suppression validation)."""
    # Imported lazily: dataflow imports this module's source tables.
    from repro.analysis.dataflow import FLOW_CATALOG

    codes = {checker.code for checker in CATALOG}
    codes |= {checker.code for checker in PROJECT_CATALOG}
    codes |= {info.code for info in FLOW_CATALOG}
    codes |= {"SUP001", "SUP002"}
    return codes
