"""The committed findings baseline.

A baseline lets the suite gate *new* findings while pre-existing,
reviewed ones ride along: CI runs ``python -m repro.analysis`` against
``analysis-baseline.json`` and fails only on findings absent from it.

Entries are matched by ``(code, path, stripped source line)`` rather
than line *numbers*, so unrelated edits above a baselined site don't
resurrect it.  Matching is multiset-style: two identical offending lines
in one file need two baseline entries.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:   # pragma: no cover - import cycle guard, types only
    from repro.analysis.engine import Finding

__all__ = ["Baseline", "DEFAULT_BASELINE_NAME"]

DEFAULT_BASELINE_NAME = "analysis-baseline.json"

_BASELINE_VERSION = 1


class Baseline:
    """Accepted findings, keyed by (code, path, line text)."""

    def __init__(self, entries: Iterable[tuple[str, str, str]] = ()):
        self._entries: Counter[tuple[str, str, str]] = Counter(entries)

    def __len__(self) -> int:
        return sum(self._entries.values())

    @staticmethod
    def _key(finding: "Finding") -> tuple[str, str, str]:
        return (finding.code, finding.path, finding.line_text)

    def subtract(self, findings: list["Finding"]) -> list["Finding"]:
        """Remove findings covered by the baseline (consuming entries)."""
        remaining = Counter(self._entries)
        kept = []
        for finding in findings:
            key = self._key(finding)
            if remaining.get(key, 0) > 0:
                remaining[key] -= 1
            else:
                kept.append(finding)
        return kept

    @classmethod
    def from_findings(cls, findings: Iterable["Finding"]) -> "Baseline":
        return cls(cls._key(finding) for finding in findings)

    # ------------------------------------------------------------------
    # File round trip.
    # ------------------------------------------------------------------

    def to_payload(self) -> dict:
        entries = [
            {"code": code, "path": path, "line_text": line_text}
            for (code, path, line_text), count in sorted(self._entries.items())
            for _ in range(count)
        ]
        return {"version": _BASELINE_VERSION, "entries": entries}

    @classmethod
    def from_payload(cls, payload: dict) -> "Baseline":
        """Parse a baseline document.

        Raises:
            ValueError: wrong version or malformed entries.
        """
        if not isinstance(payload, dict):
            raise ValueError("baseline must be a JSON object")
        if payload.get("version") != _BASELINE_VERSION:
            raise ValueError(
                f"unsupported baseline version {payload.get('version')!r}"
            )
        try:
            return cls(
                (entry["code"], entry["path"], entry["line_text"])
                for entry in payload.get("entries", [])
            )
        except (KeyError, TypeError) as exc:
            raise ValueError(f"malformed baseline entry: {exc!r}") from exc

    def save(self, path: str | Path) -> None:
        text = json.dumps(self.to_payload(), indent=2, sort_keys=True)
        Path(path).write_text(text + "\n", encoding="utf-8")

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        """Read a baseline file.

        Raises:
            ValueError: unreadable or malformed file.
        """
        try:
            payload = json.loads(Path(path).read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise ValueError(f"baseline is not valid JSON: {exc}") from exc
        return cls.from_payload(payload)
