"""The committed findings baseline.

A baseline lets the suite gate *new* findings while pre-existing,
reviewed ones ride along: CI runs ``python -m repro.analysis`` against
``analysis-baseline.json`` and fails only on findings absent from it.

Entries are matched in two passes.  The exact key is
``(code, path, stripped source line)`` rather than line *numbers*, so
unrelated edits above a baselined site don't resurrect it.  Version-2
entries also carry a ``context_hash`` — a digest of the code plus the
stripped previous/current/next source lines, deliberately
path-independent — so a file rename or move keeps its accepted findings
covered (the v1 scheme broke on renames).  Matching is multiset-style:
two identical offending lines in one file need two baseline entries.

Version-1 documents (no hashes) load transparently; saving always
writes version 2, and ``--prune-baseline`` re-keys surviving entries
with hashes from the findings they cover, migrating a v1 file in place.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:   # pragma: no cover - import cycle guard, types only
    from repro.analysis.engine import Finding

__all__ = ["Baseline", "BaselineEntry", "DEFAULT_BASELINE_NAME"]

DEFAULT_BASELINE_NAME = "analysis-baseline.json"

_BASELINE_VERSION = 2

#: (code, path, line_text, context_hash) — hash is "" for v1 entries
BaselineEntry = tuple[str, str, str, str]


class Baseline:
    """Accepted findings, keyed by (code, path, line text[, context])."""

    def __init__(self, entries: Iterable[tuple] = ()):
        self._entries: Counter[BaselineEntry] = Counter()
        for entry in entries:
            if len(entry) == 3:
                entry = (*entry, "")
            self._entries[entry] += 1   # type: ignore[index]

    def __len__(self) -> int:
        return sum(self._entries.values())

    @staticmethod
    def _key(finding: "Finding") -> BaselineEntry:
        return (
            finding.code, finding.path, finding.line_text,
            finding.context_hash,
        )

    def subtract(self, findings: list["Finding"]) -> list["Finding"]:
        """Remove findings covered by the baseline (consuming entries)."""
        return self.subtract_tracking(findings)[0]

    def subtract_tracking(
        self, findings: list["Finding"]
    ) -> tuple[list["Finding"], list[BaselineEntry], list[BaselineEntry]]:
        """Like :meth:`subtract`, but also report entry usage.

        Returns:
            ``(kept, stale, used)`` — surviving findings, entries that
            covered nothing (prune candidates), and entries that did
            cover a finding.  A used v1 entry (no hash) is re-keyed
            with the covering finding's ``context_hash`` so pruning a
            v1 baseline writes a fully-migrated v2 document.
        """
        remaining = Counter(self._entries)
        by_key: dict[tuple[str, str, str], list[BaselineEntry]] = {}
        by_hash: dict[tuple[str, str], list[BaselineEntry]] = {}
        for entry in sorted(remaining):
            code, path, line_text, context_hash = entry
            by_key.setdefault((code, path, line_text), []).append(entry)
            if context_hash:
                by_hash.setdefault((code, context_hash), []).append(entry)

        used: list[BaselineEntry] = []

        def consume(
            candidates: list[BaselineEntry], finding: "Finding"
        ) -> bool:
            for entry in candidates:
                if remaining[entry] > 0:
                    remaining[entry] -= 1
                    context_hash = entry[3] or finding.context_hash
                    used.append((entry[0], entry[1], entry[2], context_hash))
                    return True
            return False

        kept = []
        for finding in findings:
            key = (finding.code, finding.path, finding.line_text)
            if consume(by_key.get(key, []), finding):
                continue
            if finding.context_hash and consume(
                by_hash.get((finding.code, finding.context_hash), []),
                finding,
            ):
                continue
            kept.append(finding)

        stale: list[BaselineEntry] = []
        for entry in sorted(remaining):
            stale.extend([entry] * remaining[entry])
        return kept, stale, sorted(used)

    @classmethod
    def from_findings(cls, findings: Iterable["Finding"]) -> "Baseline":
        return cls(cls._key(finding) for finding in findings)

    # ------------------------------------------------------------------
    # File round trip.
    # ------------------------------------------------------------------

    def to_payload(self) -> dict:
        entries = []
        for (code, path, line_text, context_hash), count in sorted(
            self._entries.items()
        ):
            record = {"code": code, "path": path, "line_text": line_text}
            if context_hash:
                record["context_hash"] = context_hash
            entries.extend([record] * count)
        return {"version": _BASELINE_VERSION, "entries": entries}

    @classmethod
    def from_payload(cls, payload: dict) -> "Baseline":
        """Parse a baseline document (versions 1 and 2).

        Raises:
            ValueError: wrong version or malformed entries.
        """
        if not isinstance(payload, dict):
            raise ValueError("baseline must be a JSON object")
        if payload.get("version") not in (1, _BASELINE_VERSION):
            raise ValueError(
                f"unsupported baseline version {payload.get('version')!r}"
            )
        try:
            return cls(
                (
                    entry["code"], entry["path"], entry["line_text"],
                    entry.get("context_hash", ""),
                )
                for entry in payload.get("entries", [])
            )
        except (KeyError, TypeError) as exc:
            raise ValueError(f"malformed baseline entry: {exc!r}") from exc

    def save(self, path: str | Path) -> None:
        text = json.dumps(self.to_payload(), indent=2, sort_keys=True)
        Path(path).write_text(text + "\n", encoding="utf-8")

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        """Read a baseline file.

        Raises:
            ValueError: unreadable or malformed file.
        """
        try:
            payload = json.loads(Path(path).read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise ValueError(f"baseline is not valid JSON: {exc}") from exc
        return cls.from_payload(payload)
