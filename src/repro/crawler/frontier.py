"""Crawl frontier: a deduplicating FIFO work queue.

The Dissenter spider discovers each discussion page from many user home
pages; the frontier guarantees each URL is fetched once (which is also
what keeps the per-URL rate limit from ever binding, §3.2).
"""

from __future__ import annotations

from collections import deque
from typing import Generic, Hashable, Iterable, Iterator, TypeVar

__all__ = ["CrawlFrontier"]

T = TypeVar("T", bound=Hashable)


class CrawlFrontier(Generic[T]):
    """FIFO queue in which each item is ever enqueued once.

    Items remain "seen" after being dequeued, so re-adding a completed
    item is a no-op.  ``fail``/``retryable`` support the re-request loop:
    failed items can be re-enqueued explicitly up to a retry budget.
    """

    def __init__(self, items: Iterable[T] = (), max_retries: int = 3):
        self._queue: deque[T] = deque()
        self._seen: set[T] = set()
        self._pending: set[T] = set()   # currently enqueued (not yet popped)
        self._failures: dict[T, int] = {}
        self._max_retries = max_retries
        self.completed = 0
        for item in items:
            self.add(item)

    def __len__(self) -> int:
        return len(self._queue)

    def __bool__(self) -> bool:
        return bool(self._queue)

    def add(self, item: T) -> bool:
        """Enqueue if never seen; returns True if enqueued."""
        if item in self._seen:
            return False
        self._seen.add(item)
        self._pending.add(item)
        self._queue.append(item)
        return True

    def add_many(self, items: Iterable[T]) -> int:
        """Enqueue a batch; returns how many were new."""
        return sum(1 for item in items if self.add(item))

    def pop(self) -> T:
        """Dequeue the next item.

        Raises:
            IndexError: the frontier is empty.
        """
        item = self._queue.popleft()
        self._pending.discard(item)
        self.completed += 1
        return item

    def peek(self, n: int = 1) -> list[T]:
        """The next up-to-``n`` items in pop order, without dequeuing.

        The concurrent fetch engine plans a window from this — actual
        pops happen at merge time so a mid-window checkpoint still sees
        the items as queued.
        """
        if n < 0:
            raise ValueError("n must be >= 0")
        return [self._queue[i] for i in range(min(n, len(self._queue)))]

    def fail(self, item: T) -> bool:
        """Record a failure; re-enqueue unless the retry budget is spent.

        Only an item that was actually popped (and not yet re-enqueued)
        may fail; anything else would corrupt the ``completed`` count and
        the retry loop's FIFO expectations.

        Returns True if the item was re-enqueued.

        Raises:
            ValueError: the item was never popped (unknown to the
                frontier, or still waiting in the queue).
        """
        if item not in self._seen or item in self._pending:
            raise ValueError(
                f"fail() on an item that was never popped: {item!r}"
            )
        count = self._failures.get(item, 0) + 1
        self._failures[item] = count
        if count > self._max_retries:
            return False
        self._pending.add(item)
        self._queue.append(item)
        self.completed -= 1   # it will be popped again
        return True

    def permanently_failed(self) -> list[T]:
        """Items that exhausted their retry budget."""
        return [
            item
            for item, count in self._failures.items()
            if count > self._max_retries
        ]

    def drain(self) -> Iterator[T]:
        """Iterate until the frontier is empty (items may be added during)."""
        while self._queue:
            yield self.pop()

    @property
    def seen_count(self) -> int:
        return len(self._seen)

    def queued(self) -> list[T]:
        """Every currently-enqueued item, in pop order (a copy).

        The sharded engine replays the unsharded discovery pass through
        a frontier and takes this as the global URL order — the order a
        sequential stage-3 crawl would pop — before partitioning it
        across workers by shard key.
        """
        return list(self._queue)

    # ------------------------------------------------------------------
    # Checkpointing (the resumable-crawl runtime serialises the frontier
    # mid-flight: queue order, the seen set, and per-item failure counts).
    # ------------------------------------------------------------------

    def to_state(self) -> dict:
        """Snapshot the frontier as a JSON-serialisable dict.

        Failure counts are stored as ``[item, count]`` pairs (not a dict)
        so non-string items survive a JSON round trip.  The seen set is
        emitted sorted (by repr, so mixed item types never break the
        sort): raw ``set`` order depends on PYTHONHASHSEED for string
        items, which would make otherwise-identical checkpoints differ
        byte-for-byte between processes.
        """
        return {
            "queue": list(self._queue),
            "seen": sorted(self._seen, key=repr),
            "failures": [[item, count] for item, count in self._failures.items()],
            "max_retries": self._max_retries,
            "completed": self.completed,
        }

    @classmethod
    def from_state(cls, state: dict) -> "CrawlFrontier[T]":
        """Rebuild a frontier from :meth:`to_state` output.

        Raises:
            ValueError: the state dict is malformed.
        """
        try:
            frontier: CrawlFrontier[T] = cls(max_retries=int(state["max_retries"]))
            frontier._queue = deque(state["queue"])
            frontier._seen = set(state["seen"])
            # Invariant: an item is pending iff it sits in the queue.
            frontier._pending = set(state["queue"])
            frontier._failures = {
                item: int(count) for item, count in state["failures"]
            }
            frontier.completed = int(state["completed"])
        except (KeyError, TypeError) as exc:
            raise ValueError(f"malformed frontier state: {exc!r}") from exc
        return frontier
