"""The abandoned seed-based username harvest (§3.1).

Before settling on exhaustive ID enumeration, the paper's authors tried
"a combination of mining Pushshift.io and crawling the most popular Gab
account's ('@a' ...) followers, which is automatically followed by new
users ... However, this methodology failed to uncover users that hadn't
posted on Gab, had manually ceased following @a, and our results suggested
a period of time before the @a handle was automatically followed by new
users."

This module implements that discarded methodology so its incompleteness
can be *measured* against the enumeration (ablation A3): mine the Gab
author archive from Pushshift and union it with @a's follower list from
the Gab API.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.client import HttpClient
from repro.net.ratelimit import HeaderRateLimiter

__all__ = ["SeedDiscovery", "SeedDiscoveryResult"]


@dataclass
class SeedDiscoveryResult:
    """Usernames found by each seed source."""

    pushshift_authors: set[str] = field(default_factory=set)
    torba_followers: set[str] = field(default_factory=set)

    @property
    def discovered(self) -> set[str]:
        return self.pushshift_authors | self.torba_followers

    def coverage_of(self, reference: set[str]) -> float:
        """Fraction of a reference username set this discovery found."""
        if not reference:
            return 0.0
        return len(self.discovered & reference) / len(reference)


class SeedDiscovery:
    """Runs the Pushshift + @a-followers harvest."""

    PUSHSHIFT = "https://api.pushshift.io/gab/search/submission/"
    GAB_API = "https://gab.com/api/v1/accounts"
    TORBA_USERNAME = "a"

    def __init__(self, client: HttpClient, floor_interval: float = 0.0):
        self._client = client
        self._limiter = HeaderRateLimiter(
            client.clock, floor_interval=floor_interval
        )

    def mine_pushshift(self) -> set[str]:
        """Page through the Gab author archive."""
        authors: set[str] = set()
        page = 1
        while True:
            response = self._client.get_or_none(
                self.PUSHSHIFT, params={"agg": "author", "page": page}
            )
            if response is None or response.status != 200:
                break
            payload = response.json()
            window = [
                entry["key"]
                for entry in payload.get("aggs", {}).get("author", [])
            ]
            if not window:
                break
            authors.update(window)
            page += 1
        return authors

    def _find_torba_id(self) -> int | None:
        """Find @a's numeric ID by probing the first few counter values.

        (@a is among the very first accounts; the paper knew its handle.)
        """
        for gab_id in range(1, 25):
            self._limiter.before_request()
            response = self._client.get_or_none(f"{self.GAB_API}/{gab_id}")
            if response is None:
                continue
            self._limiter.after_response(response)
            if response.status != 200:
                continue
            if response.json().get("username") == self.TORBA_USERNAME:
                return gab_id
        return None

    def crawl_torba_followers(self) -> set[str]:
        """Collect @a's paginated follower list."""
        torba_id = self._find_torba_id()
        if torba_id is None:
            return set()
        followers: set[str] = set()
        page = 1
        while True:
            self._limiter.before_request()
            response = self._client.get_or_none(
                f"{self.GAB_API}/{torba_id}/followers", params={"page": page}
            )
            if response is None:
                break
            self._limiter.after_response(response)
            if response.status != 200:
                break
            payload = response.json()
            if not isinstance(payload, list) or not payload:
                break
            followers.update(entry["username"] for entry in payload)
            page += 1
        return followers

    def run(self) -> SeedDiscoveryResult:
        """Full seed harvest: Pushshift authors ∪ @a followers."""
        return SeedDiscoveryResult(
            pushshift_authors=self.mine_pushshift(),
            torba_followers=self.crawl_torba_followers(),
        )
