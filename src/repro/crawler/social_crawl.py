"""The Gab follower-graph crawl (§3.4).

Dissenter exposes no social network of its own, so the paper used the Gab
API: for every Dissenter user, page through ``…/followers`` and
``…/following``, issuing at most one request per second and sleeping to
the ``X-RateLimit-Reset`` timestamp when the window empties.  Pagination
guarantees complete lists.

The induced *Dissenter* graph (edges between Dissenter users only) is
produced afterwards by :func:`induce_dissenter_graph` — the raw lists
contain plenty of non-Dissenter Gab accounts that must be filtered.  The
graph is a :class:`~repro.graph.csr.CSRGraph` (numpy CSR adjacency);
callers that need networkx go through its ``to_networkx()`` escape
hatch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.crawler.checkpoint import CrawlCheckpoint, coerce_checkpoint
from repro.graph.csr import CSRGraph, csr_from_follow_records
from repro.crawler.runtime import Checkpointer
from repro.net.client import HttpClient
from repro.net.cookies import CookieJar
from repro.net.pool import FetchPool
from repro.net.ratelimit import HeaderRateLimiter

__all__ = ["SocialCrawlResult", "SocialGraphCrawler", "induce_dissenter_graph"]


@dataclass
class SocialCrawlResult:
    """Raw follower/following lists keyed by Gab ID."""

    followers: dict[int, list[int]] = field(default_factory=dict)
    following: dict[int, list[int]] = field(default_factory=dict)
    requests_made: int = 0
    seconds_waited: float = 0.0

    def to_dict(self) -> dict:
        """JSON-ready snapshot (JSON object keys must be strings)."""
        return {
            "followers": {str(k): v for k, v in self.followers.items()},
            "following": {str(k): v for k, v in self.following.items()},
            "requests_made": self.requests_made,
            "seconds_waited": self.seconds_waited,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SocialCrawlResult":
        try:
            return cls(
                followers={
                    int(k): [int(x) for x in v]
                    for k, v in (payload.get("followers") or {}).items()
                },
                following={
                    int(k): [int(x) for x in v]
                    for k, v in (payload.get("following") or {}).items()
                },
                requests_made=int(payload.get("requests_made", 0)),
                seconds_waited=float(payload.get("seconds_waited", 0.0)),
            )
        except (TypeError, ValueError, AttributeError) as exc:
            raise ValueError(f"malformed social crawl state: {exc!r}") from exc


class SocialGraphCrawler:
    """Walks the paginated Gab relationship API."""

    BASE = "https://gab.com/api/v1/accounts"

    def __init__(self, client: HttpClient, floor_interval: float = 1.0):
        self._client = client
        self._limiter = HeaderRateLimiter(
            client.clock, floor_interval=floor_interval
        )

    def _paged_ids(
        self,
        gab_id: int,
        relation: str,
        checkpointer: Checkpointer | None = None,
    ) -> list[int]:
        collected: list[int] = []
        page = 1
        while True:
            self._limiter.before_request()
            response = self._client.get_or_none(
                f"{self.BASE}/{gab_id}/{relation}", params={"page": page}
            )
            if checkpointer is not None:
                # The snapshot excludes the in-flight account, so a
                # mid-pagination checkpoint stays consistent: resuming
                # simply re-walks this account's pages.
                checkpointer.tick()
            if response is None:
                break
            self._limiter.after_response(response)
            if response.status == 429:
                continue   # limiter sleeps to the reset on the next call
            if response.status != 200:
                break
            payload = response.json()
            if not isinstance(payload, list) or not payload:
                break
            collected.extend(int(entry["id"]) for entry in payload)
            page += 1
        return collected

    def crawl(
        self,
        gab_ids: Iterable[int],
        checkpointer: Checkpointer | None = None,
        resume: CrawlCheckpoint | dict | None = None,
        pool: FetchPool | None = None,
    ) -> SocialCrawlResult:
        """Gather both relationship directions for every given account.

        With a ``checkpointer``, completed accounts are snapshotted
        periodically; on ``resume`` the same account sequence must be
        passed again — the saved cursor indexes into it, and accounts
        whose lists are already complete are never re-walked.

        Pagination is a dependent chain (each page decides whether the
        next exists), so an account cannot be split across connections;
        instead each account's whole request chain is one ``pool``
        flight — different accounts overlap on the K virtual connections.
        """
        gab_ids = list(gab_ids)
        result = SocialCrawlResult()
        index = 0
        stage = "relations"
        if resume is not None:
            checkpoint = coerce_checkpoint(resume, "social")
            index = int(checkpoint.cursor.get("index", 0))
            result = SocialCrawlResult.from_dict(
                checkpoint.cursor.get("result") or {}
            )
            if checkpoint.cookies is not None:
                self._client.cookies = CookieJar.from_state(checkpoint.cookies)
        prior_requests = result.requests_made
        prior_waited = result.seconds_waited
        before = self._client.stats.requests

        if checkpointer is not None:
            checkpointer.set_provider(
                lambda: CrawlCheckpoint(
                    crawler="social",
                    stage=stage,
                    cursor={
                        "index": index,
                        "result": {
                            **result.to_dict(),
                            "requests_made": prior_requests
                            + (self._client.stats.requests - before),
                            "seconds_waited": prior_waited
                            + self._limiter.total_waited,
                        },
                    },
                    cookies=self._client.cookies.to_state(),
                ).to_payload()
            )

        if pool is None:
            pool = FetchPool(self._client.clock)

        while index < len(gab_ids):
            gab_id = gab_ids[index]
            with pool.flight():
                followers = self._paged_ids(gab_id, "followers", checkpointer)
                following = self._paged_ids(gab_id, "following", checkpointer)
            result.followers[gab_id] = followers
            result.following[gab_id] = following
            index += 1
        result.requests_made = prior_requests + (
            self._client.stats.requests - before
        )
        result.seconds_waited = prior_waited + self._limiter.total_waited
        stage = "done"
        if checkpointer is not None:
            checkpointer.flush()
        return result


def induce_dissenter_graph(
    crawl: SocialCrawlResult,
    dissenter_gab_ids: Iterable[int],
) -> CSRGraph:
    """Induce the Dissenter-only directed follow graph.

    Nodes are the given Dissenter users' Gab IDs (all of them, including
    isolated users — §4.5.1 counts users with no edges).  An edge u -> v
    means u follows v; edges touching non-Dissenter accounts are dropped.

    The CSR node order is sorted Gab IDs — the same canonical order the
    historical networkx build enforced on insertion — so degree arrays
    and tie-broken top-K report lines are unchanged by the engine swap.
    ``graph.to_networkx()`` reconstructs the old representation.
    """
    return csr_from_follow_records(crawl, dissenter_gab_ids)
