"""Exhaustive Gab user enumeration through the accounts API (§3.1).

Gab IDs are a counter starting at 1, so the paper queried
``/api/v1/accounts/<id>`` for every ID between 1 and a known upper bound
(their own test account's ID).  The API returns an error for unallocated
IDs, which makes the enumeration self-terminating: after a long enough run
of consecutive misses past the last hit, the ID space is exhausted.

This crawler reproduces that, driving a :class:`HeaderRateLimiter` off the
``X-RateLimit-*`` response headers exactly as §3.4 describes.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

from repro.crawler.checkpoint import CrawlCheckpoint, coerce_checkpoint
from repro.crawler.records import CrawledGabAccount
from repro.crawler.runtime import Checkpointer
from repro.net.client import HttpClient
from repro.net.cookies import CookieJar
from repro.net.pool import FetchPool
from repro.net.ratelimit import HeaderRateLimiter

__all__ = ["GabEnumerator", "GabEnumerationResult"]


@dataclass
class GabEnumerationResult:
    """Outcome of the ID-space sweep."""

    accounts: list[CrawledGabAccount] = field(default_factory=list)
    ids_probed: int = 0
    misses: int = 0

    def by_username(self) -> dict[str, CrawledGabAccount]:
        return {a.username: a for a in self.accounts}

    def usernames(self) -> list[str]:
        return [a.username for a in self.accounts]

    def to_dict(self) -> dict:
        """JSON-ready snapshot (checkpointing)."""
        return {
            "accounts": [asdict(a) for a in self.accounts],
            "ids_probed": self.ids_probed,
            "misses": self.misses,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "GabEnumerationResult":
        try:
            return cls(
                accounts=[
                    CrawledGabAccount(
                        gab_id=int(entry["gab_id"]),
                        username=entry["username"],
                        display_name=entry.get("display_name", ""),
                        created_at_iso=entry.get("created_at_iso", ""),
                        followers_count=int(entry.get("followers_count", 0)),
                        following_count=int(entry.get("following_count", 0)),
                    )
                    for entry in payload.get("accounts", [])
                ],
                ids_probed=int(payload.get("ids_probed", 0)),
                misses=int(payload.get("misses", 0)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"malformed enumeration state: {exc!r}") from exc


class GabEnumerator:
    """Sweeps the Gab ID space through the JSON API.

    Args:
        client: HTTP client bound to the loopback transport.
        floor_interval: minimum seconds between requests (the paper used
            at most one request per second against the live service; the
            default here is lower because the virtual clock makes pacing
            free — the A1 ablation raises it to measure the cost).
        stop_after_misses: consecutive unallocated IDs after the last hit
            that terminate the sweep.
    """

    GAB_API = "https://gab.com/api/v1/accounts/{gab_id}"

    def __init__(
        self,
        client: HttpClient,
        floor_interval: float = 0.0,
        stop_after_misses: int = 500,
    ):
        self._client = client
        self._limiter = HeaderRateLimiter(
            client.clock, floor_interval=floor_interval
        )
        self._stop_after_misses = stop_after_misses

    def _fetch_account(self, gab_id: int) -> CrawledGabAccount | None:
        self._limiter.before_request()
        response = self._client.get_or_none(
            self.GAB_API.format(gab_id=gab_id)
        )
        if response is None:
            return None
        self._limiter.after_response(response)
        if response.status == 429:
            # The limiter will wait for the reset; retry once after.
            self._limiter.before_request()
            response = self._client.get_or_none(
                self.GAB_API.format(gab_id=gab_id)
            )
            if response is None:
                return None
            self._limiter.after_response(response)
        if response.status != 200:
            return None
        payload = response.json()
        return CrawledGabAccount(
            gab_id=int(payload["id"]),
            username=payload["username"],
            display_name=payload.get("display_name", ""),
            created_at_iso=payload.get("created_at", ""),
            followers_count=int(payload.get("followers_count", 0)),
            following_count=int(payload.get("following_count", 0)),
        )

    def enumerate(
        self,
        max_id: int | None = None,
        checkpointer: Checkpointer | None = None,
        resume: CrawlCheckpoint | dict | None = None,
        pool: FetchPool | None = None,
        start_id: int = 0,
    ) -> GabEnumerationResult:
        """Sweep IDs from ``start_id + 1`` upward.

        Args:
            max_id: inclusive upper bound; when None, the sweep stops
                after ``stop_after_misses`` consecutive misses beyond the
                last allocated ID.
            checkpointer: snapshot progress periodically.
            resume: a prior "gab_enum" checkpoint; the sweep continues
                from the saved ID — already-probed IDs are never
                re-requested.
            pool: fetch engine to issue probes through; a fresh
                single-connection pool (sequential behavior) when omitted.
            start_id: last ID considered already probed (default 0: the
                full sweep from ID 1).  The sharded engine stripes the ID
                space with this: worker *w* covers ``(start_id, max_id]``
                and stripe results concatenate to the full sweep.
        """
        result = GabEnumerationResult()
        gab_id = int(start_id)
        consecutive_misses = 0
        stage = "enumerate"
        if resume is not None:
            checkpoint = coerce_checkpoint(resume, "gab_enum")
            cursor = checkpoint.cursor
            gab_id = int(cursor.get("gab_id", 0))
            consecutive_misses = int(cursor.get("consecutive_misses", 0))
            result = GabEnumerationResult.from_dict(
                cursor.get("result") or {}
            )
            if checkpoint.cookies is not None:
                self._client.cookies = CookieJar.from_state(checkpoint.cookies)

        if checkpointer is not None:
            checkpointer.set_provider(
                lambda: CrawlCheckpoint(
                    crawler="gab_enum",
                    stage=stage,
                    cursor={
                        "gab_id": gab_id,
                        "consecutive_misses": consecutive_misses,
                        "result": result.to_dict(),
                    },
                    cookies=self._client.cookies.to_state(),
                ).to_payload()
            )

        if pool is None:
            pool = FetchPool(self._client.clock)

        def plan(capacity: int) -> list[int]:
            # Never over-plans: with no max_id a sequential sweep is
            # guaranteed at least (stop_after_misses - misses) more
            # probes whatever their outcomes, so a window of that size
            # cannot fetch an ID the sequential sweep would not.
            if max_id is not None:
                remaining = max_id - gab_id
            else:
                remaining = self._stop_after_misses - consecutive_misses
            window = min(capacity, remaining)
            if window <= 0:
                return []
            return [gab_id + offset + 1 for offset in range(window)]

        def process(probe_id: int, account: CrawledGabAccount | None) -> None:
            nonlocal gab_id, consecutive_misses
            result.ids_probed += 1
            if account is None:
                result.misses += 1
                consecutive_misses += 1
            else:
                consecutive_misses = 0
                result.accounts.append(account)
            gab_id = probe_id

        pool.run(plan, self._fetch_account, process, checkpointer=checkpointer)
        stage = "done"
        if checkpointer is not None:
            checkpointer.flush()
        return result
