"""The Dissenter spider (§3.1-3.2).

Stage 1 — account detection: for every Gab username, request the
Dissenter home-page URL and classify by **response size** (a real user
page weighs >10 kB; a missing-user response ~150 bytes).

Stage 2 — home pages: parse username, display name, author-id, bio, and
the set of commented-upon URL ids into the frontier.

Stage 3 — comment pages: for every discovered discussion, record the
commenturl-id, title, description, vote counts, and every visible comment
and reply (comment-id, author-id, parent-id, text).

Stage 4 — hidden metadata: visit one single-comment page per distinct
author and mine the commented-out ``commentAuthor`` JavaScript variable
for language / permissions / view-filter settings.

Every stage is **resumable**: given a :class:`~repro.crawler.runtime.
Checkpointer` the crawler snapshots its frontier, partial result, stats,
cookie jar and stage cursor periodically; given a prior checkpoint it
skips all already-fetched work and continues from the cursor.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.crawler.checkpoint import CrawlCheckpoint, coerce_checkpoint
from repro.crawler.frontier import CrawlFrontier
from repro.crawler.parsing import (
    parse_comment_author_blob,
    parse_comment_page,
    parse_user_page,
)
from repro.crawler.runtime import Checkpointer
from repro.net.client import HttpClient
from repro.net.cookies import CookieJar
from repro.net.http import Response
from repro.net.pool import FetchPool

if TYPE_CHECKING:   # runtime import is deferred: store imports records,
    from repro.store.corpus import CorpusStore   # records' package imports us

__all__ = ["DissenterCrawler", "SIZE_THRESHOLD"]

SIZE_THRESHOLD = 10_240   # bytes: the paper's ">= 10 kB means account exists"

# crawl()'s resumable stages, in execution order.
_CRAWL_STAGES = ("home_pages", "comment_pages", "metadata", "done")


@dataclass
class CrawlStats:
    """Progress counters for one crawl.

    Increment through :meth:`bump`/:meth:`record_failed` — they hold a
    lock so counters stay exact if merge work ever runs off-thread.
    """

    usernames_probed: int = 0
    accounts_detected: int = 0
    home_pages_parsed: int = 0
    comment_pages_parsed: int = 0
    comment_pages_failed: list[str] = field(default_factory=list)
    author_pages_visited: int = 0

    def __post_init__(self) -> None:
        # Not a dataclass field: locks aren't comparable or serialisable.
        self._lock = threading.Lock()

    def bump(self, counter: str, amount: int = 1) -> None:
        """Atomically increment one of the integer counters by name."""
        with self._lock:
            setattr(self, counter, getattr(self, counter) + amount)

    def record_failed(self, commenturl_id: str) -> None:
        """Atomically append to the failed-pages list."""
        with self._lock:
            self.comment_pages_failed.append(commenturl_id)

    def replace_failed(self, commenturl_ids: list[str]) -> None:
        """Atomically replace the failed-pages list (recrawl bookkeeping)."""
        with self._lock:
            self.comment_pages_failed = list(commenturl_ids)

    def merge(self, other: "CrawlStats") -> None:
        """Fold another stats object into this one (sharded-crawl merge).

        Commutative and associative: integer counters sum, and the
        failed-pages list — whose *sharded* arrival order depends on
        which worker finished first — is re-sorted so an N-way merge
        yields the same value whatever the fold order.  (The sharded
        engine separately restores the sequential failure order from
        per-shard global indexes before the recrawl loop runs; the
        sorted list here is the order-independent set view.)
        """
        with self._lock:
            self.usernames_probed += other.usernames_probed
            self.accounts_detected += other.accounts_detected
            self.home_pages_parsed += other.home_pages_parsed
            self.comment_pages_parsed += other.comment_pages_parsed
            self.author_pages_visited += other.author_pages_visited
            self.comment_pages_failed = sorted(
                self.comment_pages_failed + other.comment_pages_failed
            )

    def to_dict(self) -> dict:
        return {
            "usernames_probed": self.usernames_probed,
            "accounts_detected": self.accounts_detected,
            "home_pages_parsed": self.home_pages_parsed,
            "comment_pages_parsed": self.comment_pages_parsed,
            "comment_pages_failed": list(self.comment_pages_failed),
            "author_pages_visited": self.author_pages_visited,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "CrawlStats":
        try:
            return cls(
                usernames_probed=int(payload.get("usernames_probed", 0)),
                accounts_detected=int(payload.get("accounts_detected", 0)),
                home_pages_parsed=int(payload.get("home_pages_parsed", 0)),
                comment_pages_parsed=int(payload.get("comment_pages_parsed", 0)),
                comment_pages_failed=list(
                    payload.get("comment_pages_failed", [])
                ),
                author_pages_visited=int(payload.get("author_pages_visited", 0)),
            )
        except (TypeError, ValueError) as exc:
            raise ValueError(f"malformed crawl stats: {exc!r}") from exc


class DissenterCrawler:
    """Drives the full §3.1-3.2 crawl over HTTP."""

    BASE = "https://dissenter.com"

    def __init__(self, client: HttpClient):
        self._client = client
        self.stats = CrawlStats()

    def _restore_client_cookies(self, cookies: list | None) -> None:
        if cookies is not None:
            self._client.cookies = CookieJar.from_state(cookies)

    # ------------------------------------------------------------------
    # Stage 1: account detection by response size.
    # ------------------------------------------------------------------

    def detect_accounts(
        self,
        usernames: Iterable[str],
        checkpointer: Checkpointer | None = None,
        resume: CrawlCheckpoint | dict | None = None,
        pool: FetchPool | None = None,
    ) -> list[str]:
        """Return the subset of usernames that have Dissenter accounts.

        With a ``checkpointer``, progress is snapshotted periodically;
        with ``resume`` (a prior "detect" checkpoint) probing continues
        from the saved index — already-probed usernames are never
        re-requested.
        """
        usernames = list(usernames)
        index = 0
        detected: list[str] = []
        if resume is not None:
            checkpoint = coerce_checkpoint(resume, "dissenter")
            if checkpoint.stage != "detect":
                raise ValueError(
                    f"cannot resume detect_accounts from stage "
                    f"{checkpoint.stage!r}"
                )
            index = int(checkpoint.cursor.get("index", 0))
            detected = list(checkpoint.cursor.get("detected", []))
            if checkpoint.stats is not None:
                self.stats = CrawlStats.from_dict(checkpoint.stats)
            self._restore_client_cookies(checkpoint.cookies)

        if checkpointer is not None:
            checkpointer.set_provider(
                lambda: CrawlCheckpoint(
                    crawler="dissenter",
                    stage="detect",
                    cursor={"index": index, "detected": list(detected)},
                    stats=self.stats.to_dict(),
                    cookies=self._client.cookies.to_state(),
                ).to_payload()
            )

        if pool is None:
            pool = FetchPool(self._client.clock)

        def plan(capacity: int) -> list[int]:
            return list(range(index, min(index + capacity, len(usernames))))

        def fetch(position: int) -> Response | None:
            return self._client.get_or_none(
                f"{self.BASE}/user/{usernames[position]}"
            )

        def process(position: int, response: Response | None) -> None:
            nonlocal index
            self.stats.bump("usernames_probed")
            if response is not None and response.size >= SIZE_THRESHOLD:
                detected.append(usernames[position])
                self.stats.bump("accounts_detected")
            index = position + 1

        pool.run(plan, fetch, process, checkpointer=checkpointer)
        return detected

    # ------------------------------------------------------------------
    # Stages 2-4.
    # ------------------------------------------------------------------

    def crawl(
        self,
        usernames: Sequence[str],
        checkpointer: Checkpointer | None = None,
        resume: CrawlCheckpoint | dict | None = None,
        pool: FetchPool | None = None,
        store: CorpusStore | None = None,
    ) -> CorpusStore:
        """Crawl home pages, comment pages, and hidden author metadata.

        ``usernames`` should be the detected Dissenter accounts (stage 1);
        passing undetected names is harmless — their 404s are skipped.
        On ``resume``, the same usernames must be passed again: the saved
        cursor indexes into them.  ``store`` supplies the corpus store to
        fill (a fresh inline-segment store when omitted); on resume the
        checkpoint's corpus is replayed into it.
        """
        from repro.store.corpus import CorpusStore

        usernames = list(usernames)
        result = store if store is not None else CorpusStore()
        frontier: CrawlFrontier[str] = CrawlFrontier()
        stage = "home_pages"
        index = 0                       # home-pages cursor
        meta_index = 0                  # metadata cursor
        visited_authors: set[str] = set()

        if resume is not None:
            checkpoint = coerce_checkpoint(resume, "dissenter")
            if checkpoint.stage not in _CRAWL_STAGES:
                raise ValueError(
                    f"cannot resume crawl from stage {checkpoint.stage!r}"
                )
            stage = checkpoint.stage
            if checkpoint.store is not None:
                result.restore_payload(checkpoint.store)
            if checkpoint.frontier is not None:
                frontier = CrawlFrontier.from_state(checkpoint.frontier)
            if checkpoint.stats is not None:
                self.stats = CrawlStats.from_dict(checkpoint.stats)
            self._restore_client_cookies(checkpoint.cookies)
            index = int(checkpoint.cursor.get("index", 0))
            meta_index = int(checkpoint.cursor.get("meta_index", 0))
            visited_authors = set(checkpoint.cursor.get("visited_authors", []))

        if checkpointer is not None:
            checkpointer.set_provider(
                lambda: CrawlCheckpoint(
                    crawler="dissenter",
                    stage=stage,
                    cursor={
                        "index": index,
                        "meta_index": meta_index,
                        "visited_authors": sorted(visited_authors),
                    },
                    store=result.snapshot(),
                    frontier=frontier.to_state(),
                    stats=self.stats.to_dict(),
                    cookies=self._client.cookies.to_state(),
                ).to_payload()
            )

        if pool is None:
            pool = FetchPool(self._client.clock)

        if stage == "home_pages":

            def plan_home(capacity: int) -> list[int]:
                return list(
                    range(index, min(index + capacity, len(usernames)))
                )

            def fetch_home(position: int) -> Response | None:
                return self._client.get_or_none(
                    f"{self.BASE}/user/{usernames[position]}"
                )

            def parse_home(position: int, response: Response | None):
                if (
                    response is not None
                    and response.status == 200
                    and response.size >= SIZE_THRESHOLD
                ):
                    return parse_user_page(response.text)
                return None

            def process_home(position: int, user) -> None:
                nonlocal index
                if user is not None:
                    self.stats.bump("home_pages_parsed")
                    result.add_user(user)
                    frontier.add_many(user.commented_url_ids)
                index = position + 1

            pool.run(
                plan_home, fetch_home, process_home,
                parse=parse_home, checkpointer=checkpointer,
            )
            stage = "comment_pages"
            if checkpointer is not None:
                checkpointer.flush()

        if stage == "comment_pages":

            def fetch_page(commenturl_id: str) -> Response | None:
                return self._client.get_or_none(
                    f"{self.BASE}/discussion/{commenturl_id}"
                )

            def process_page(commenturl_id: str, outcome) -> None:
                # The item is popped only now, at merge time: a
                # mid-window checkpoint must still show it queued, and a
                # 429 re-enqueues it behind the already-planned items —
                # the same tail position a sequential crawl would use.
                popped = frontier.pop()
                assert popped == commenturl_id
                self._merge_comment_page(result, frontier, commenturl_id, outcome)

            pool.run(
                lambda capacity: frontier.peek(capacity),
                fetch_page,
                process_page,
                parse=lambda _id, response: self._comment_page_outcome(response),
                checkpointer=checkpointer,
            )
            stage = "metadata"
            if checkpointer is not None:
                checkpointer.flush()

        if stage == "metadata":
            users_by_author = result.users_by_author_id()
            comments = list(result.comments.values())

            def plan_meta(capacity: int) -> list[tuple[int, object]]:
                # Walk forward from the merged cursor, simulating the
                # sequential visited-set so the window never requests an
                # author twice; each job carries the cursor value to
                # install once it merges.
                jobs: list[tuple[int, object]] = []
                planned: set[str] = set()
                position = meta_index
                while position < len(comments) and len(jobs) < capacity:
                    comment = comments[position]
                    position += 1
                    author_id = comment.author_id
                    if author_id in visited_authors or author_id in planned:
                        continue
                    if users_by_author.get(author_id) is None:
                        continue
                    planned.add(author_id)
                    jobs.append((position, comment))
                return jobs

            def fetch_meta(job: tuple[int, object]) -> Response | None:
                _, comment = job
                return self._client.get_or_none(
                    f"{self.BASE}/comment/{comment.comment_id}"
                )

            def process_meta(job: tuple[int, object], response) -> None:
                nonlocal meta_index
                meta_index_after, comment = job
                visited_authors.add(comment.author_id)
                user = users_by_author[comment.author_id]
                if self._merge_author_page(user, response):
                    result.touch_user(user)
                meta_index = meta_index_after

            pool.run(
                plan_meta, fetch_meta, process_meta, checkpointer=checkpointer
            )
            meta_index = len(comments)
            stage = "done"
            if checkpointer is not None:
                checkpointer.flush()

        return result

    @staticmethod
    def _comment_page_outcome(response: Response | None):
        """Pure classify-and-parse of a discussion-page response.

        Returns ``("rate_limited", None)``, ``("failed", None)``, or
        ``("ok", (url, comments))`` — safe to run on a parse worker.
        """
        if response is None or response.status != 200:
            if response is not None and response.status == 429:
                return ("rate_limited", None)
            return ("failed", None)
        url, comments = parse_comment_page(response.text)
        if url is None:
            return ("failed", None)
        return ("ok", (url, comments))

    def _merge_comment_page(
        self,
        result: CorpusStore,
        frontier: CrawlFrontier[str],
        commenturl_id: str,
        outcome,
    ) -> None:
        """Merge one discussion page's outcome (stage 3 unit of work)."""
        kind, payload = outcome
        if kind == "rate_limited":
            # Retry through the frontier; once the retry budget is
            # spent the page must still be accounted as failed, or
            # recrawl_failures() and the validation report would
            # silently undercount missing pages.
            if not frontier.fail(commenturl_id):
                self.stats.record_failed(commenturl_id)
            return
        if kind == "failed":
            self.stats.record_failed(commenturl_id)
            return
        url, comments = payload
        self.stats.bump("comment_pages_parsed")
        result.add_url(url)
        for comment in comments:
            result.add_comment(comment)

    def _fetch_comment_page(
        self,
        result: CorpusStore,
        frontier: CrawlFrontier[str],
        commenturl_id: str,
    ) -> None:
        """Fetch and record one discussion page (sequential form)."""
        response = self._client.get_or_none(
            f"{self.BASE}/discussion/{commenturl_id}"
        )
        outcome = self._comment_page_outcome(response)
        self._merge_comment_page(result, frontier, commenturl_id, outcome)

    def recrawl_failures(self, result: CorpusStore) -> int:
        """Re-request comment pages that failed (§3.2's validation loop).

        Returns the number of pages recovered; successfully recovered
        pages are removed from the failure list.
        """
        recovered = 0
        still_failed: list[str] = []
        for commenturl_id in self.stats.comment_pages_failed:
            response = self._client.get_or_none(
                f"{self.BASE}/discussion/{commenturl_id}"
            )
            if response is None or response.status != 200:
                still_failed.append(commenturl_id)
                continue
            url, comments = parse_comment_page(response.text)
            if url is None:
                still_failed.append(commenturl_id)
                continue
            result.add_url(url)
            for comment in comments:
                result.add_comment(comment)
            recovered += 1
        self.stats.replace_failed(still_failed)
        return recovered

    def _merge_author_page(self, user, response: Response | None) -> bool:
        """Apply one author page's commentAuthor blob to its user.

        Returns True when user fields changed — the caller re-appends
        the user to the store log so replay reproduces the mutation.
        """
        if response is None or response.status != 200:
            return False
        self.stats.bump("author_pages_visited")
        blob = parse_comment_author_blob(response.text)
        if blob is None:
            return False
        user.language = blob.get("language")
        user.permissions = dict(blob.get("permissions", {}))
        user.view_filters = dict(blob.get("filters", {}))
        return True

    def _mine_author_page(
        self,
        result: CorpusStore,
        comment,
        users_by_author: dict,
        visited_authors: set[str],
    ) -> bool:
        """Mine one author's commentAuthor blob (sequential form).

        Returns True when an HTTP request was issued.
        """
        author_id = comment.author_id
        if author_id in visited_authors:
            return False
        user = users_by_author.get(author_id)
        if user is None:
            return False
        visited_authors.add(author_id)
        response = self._client.get_or_none(
            f"{self.BASE}/comment/{comment.comment_id}"
        )
        if self._merge_author_page(user, response):
            result.touch_user(user)
        return True

    def _mine_hidden_metadata(self, result: CorpusStore) -> None:
        """Visit one comment page per author for the commentAuthor blob."""
        users_by_author = result.users_by_author_id()
        visited_authors: set[str] = set()
        for comment in list(result.comments.values()):
            self._mine_author_page(
                result, comment, users_by_author, visited_authors
            )
