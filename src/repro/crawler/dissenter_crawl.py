"""The Dissenter spider (§3.1-3.2).

Stage 1 — account detection: for every Gab username, request the
Dissenter home-page URL and classify by **response size** (a real user
page weighs >10 kB; a missing-user response ~150 bytes).

Stage 2 — home pages: parse username, display name, author-id, bio, and
the set of commented-upon URL ids into the frontier.

Stage 3 — comment pages: for every discovered discussion, record the
commenturl-id, title, description, vote counts, and every visible comment
and reply (comment-id, author-id, parent-id, text).

Stage 4 — hidden metadata: visit one single-comment page per distinct
author and mine the commented-out ``commentAuthor`` JavaScript variable
for language / permissions / view-filter settings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.crawler.frontier import CrawlFrontier
from repro.crawler.parsing import (
    parse_comment_author_blob,
    parse_comment_page,
    parse_user_page,
)
from repro.crawler.records import CrawlResult
from repro.net.client import HttpClient

__all__ = ["DissenterCrawler", "SIZE_THRESHOLD"]

SIZE_THRESHOLD = 10_240   # bytes: the paper's ">= 10 kB means account exists"


@dataclass
class CrawlStats:
    """Progress counters for one crawl."""

    usernames_probed: int = 0
    accounts_detected: int = 0
    home_pages_parsed: int = 0
    comment_pages_parsed: int = 0
    comment_pages_failed: list[str] = field(default_factory=list)
    author_pages_visited: int = 0


class DissenterCrawler:
    """Drives the full §3.1-3.2 crawl over HTTP."""

    BASE = "https://dissenter.com"

    def __init__(self, client: HttpClient):
        self._client = client
        self.stats = CrawlStats()

    # ------------------------------------------------------------------
    # Stage 1: account detection by response size.
    # ------------------------------------------------------------------

    def detect_accounts(self, usernames: Iterable[str]) -> list[str]:
        """Return the subset of usernames that have Dissenter accounts."""
        detected: list[str] = []
        for username in usernames:
            self.stats.usernames_probed += 1
            response = self._client.get_or_none(
                f"{self.BASE}/user/{username}"
            )
            if response is None:
                continue
            if response.size >= SIZE_THRESHOLD:
                detected.append(username)
                self.stats.accounts_detected += 1
        return detected

    # ------------------------------------------------------------------
    # Stages 2-4.
    # ------------------------------------------------------------------

    def crawl(self, usernames: Sequence[str]) -> CrawlResult:
        """Crawl home pages, comment pages, and hidden author metadata.

        ``usernames`` should be the detected Dissenter accounts (stage 1);
        passing undetected names is harmless — their 404s are skipped.
        """
        result = CrawlResult()
        url_frontier: CrawlFrontier[str] = CrawlFrontier()

        for username in usernames:
            response = self._client.get_or_none(f"{self.BASE}/user/{username}")
            if response is None or response.status != 200:
                continue
            if response.size < SIZE_THRESHOLD:
                continue
            user = parse_user_page(response.text)
            if user is None:
                continue
            self.stats.home_pages_parsed += 1
            result.users[user.username] = user
            url_frontier.add_many(user.commented_url_ids)

        for commenturl_id in url_frontier.drain():
            response = self._client.get_or_none(
                f"{self.BASE}/discussion/{commenturl_id}"
            )
            if response is None or response.status != 200:
                if response is not None and response.status == 429:
                    url_frontier.fail(commenturl_id)
                else:
                    self.stats.comment_pages_failed.append(commenturl_id)
                continue
            url, comments = parse_comment_page(response.text)
            if url is None:
                self.stats.comment_pages_failed.append(commenturl_id)
                continue
            self.stats.comment_pages_parsed += 1
            result.urls[url.commenturl_id] = url
            for comment in comments:
                result.comments[comment.comment_id] = comment

        self._mine_hidden_metadata(result)
        return result

    def recrawl_failures(self, result: CrawlResult) -> int:
        """Re-request comment pages that failed (§3.2's validation loop).

        Returns the number of pages recovered; successfully recovered
        pages are removed from the failure list.
        """
        recovered = 0
        still_failed: list[str] = []
        for commenturl_id in self.stats.comment_pages_failed:
            response = self._client.get_or_none(
                f"{self.BASE}/discussion/{commenturl_id}"
            )
            if response is None or response.status != 200:
                still_failed.append(commenturl_id)
                continue
            url, comments = parse_comment_page(response.text)
            if url is None:
                still_failed.append(commenturl_id)
                continue
            result.urls[url.commenturl_id] = url
            for comment in comments:
                result.comments[comment.comment_id] = comment
            recovered += 1
        self.stats.comment_pages_failed = still_failed
        return recovered

    def _mine_hidden_metadata(self, result: CrawlResult) -> None:
        """Visit one comment page per author for the commentAuthor blob."""
        users_by_author = result.users_by_author_id()
        visited_authors: set[str] = set()
        for comment in result.comments.values():
            author_id = comment.author_id
            if author_id in visited_authors:
                continue
            user = users_by_author.get(author_id)
            if user is None:
                continue
            visited_authors.add(author_id)
            response = self._client.get_or_none(
                f"{self.BASE}/comment/{comment.comment_id}"
            )
            if response is None or response.status != 200:
                continue
            self.stats.author_pages_visited += 1
            blob = parse_comment_author_blob(response.text)
            if blob is None:
                continue
            user.language = blob.get("language")
            user.permissions = dict(blob.get("permissions", {}))
            user.view_filters = dict(blob.get("filters", {}))
