"""Shadow-overlay crawling: NSFW and "offensive" content (§3.2, §4.3.1).

NSFW and offensive comments are invisible to unauthenticated viewers and
carry **no flag in the document body** when visible, so the paper infers
them differentially: re-spider with an authenticated account that has one
view preference enabled at a time, and label any comment not present in
the baseline crawl accordingly.

This module reproduces that three-pass protocol:

1. baseline: unauthenticated crawl (done by :class:`DissenterCrawler`);
2. NSFW pass: session with only the NSFW filter enabled — new comments
   are NSFW-labelled;
3. offensive pass: session with only the offensive filter enabled — new
   comments are "offensive".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crawler.parsing import parse_comment_page
from repro.crawler.records import CrawlResult
from repro.net.client import HttpClient
from repro.platform.apps.dissenter_app import DissenterApp

__all__ = ["ShadowCrawler", "ShadowCrawlReport"]


@dataclass
class ShadowCrawlReport:
    """Outcome of the differential crawl."""

    nsfw_found: int = 0
    offensive_found: int = 0
    pages_recrawled: int = 0


class ShadowCrawler:
    """Runs the authenticated re-spiders and labels hidden comments.

    Args:
        client: HTTP client (its cookie jar receives the session cookie).
        app: the Dissenter origin — used only to provision sessions, the
            way the paper's authors registered their own accounts and
            flipped the view settings.
    """

    BASE = "https://dissenter.com"

    def __init__(self, client: HttpClient, app: DissenterApp):
        self._client = client
        self._app = app

    def _crawl_pass(
        self,
        result: CrawlResult,
        token: str,
        label: str,
        baseline_ids: set[str],
    ) -> int:
        """One authenticated pass; labels comments absent from baseline."""
        self._client.cookies.set_simple("session", token, "dissenter.com")
        found = 0
        for commenturl_id in list(result.urls):
            response = self._client.get_or_none(
                f"{self.BASE}/discussion/{commenturl_id}"
            )
            if response is None or response.status != 200:
                continue
            _, comments = parse_comment_page(response.text)
            for comment in comments:
                if comment.comment_id in baseline_ids:
                    continue
                if comment.comment_id in result.comments:
                    continue
                comment.shadow_label = label
                result.comments[comment.comment_id] = comment
                found += 1
        self._client.cookies.clear("dissenter.com")
        return found

    def uncover(self, result: CrawlResult) -> ShadowCrawlReport:
        """Run the NSFW and offensive passes over the baseline result.

        Mutates ``result``: hidden comments are added with their
        ``shadow_label`` set.
        """
        report = ShadowCrawlReport()
        baseline_ids = set(result.comments)

        nsfw_token = self._app.create_session(nsfw=True, offensive=False)
        report.nsfw_found = self._crawl_pass(
            result, nsfw_token, "nsfw", baseline_ids
        )
        offensive_token = self._app.create_session(nsfw=False, offensive=True)
        report.offensive_found = self._crawl_pass(
            result, offensive_token, "offensive", baseline_ids
        )
        report.pages_recrawled = 2 * len(result.urls)
        return report

    def verify_sample(
        self, result: CrawlResult, sample_ids: list[str]
    ) -> dict[str, bool]:
        """Manually verify labelled comments (§3.2's 100-comment check).

        For each comment id, confirms it is (a) invisible on the
        unauthenticated single-comment page and (b) visible with the
        matching view preference enabled.  Returns {comment_id: verified}.
        """
        outcomes: dict[str, bool] = {}
        both_token = self._app.create_session(nsfw=True, offensive=True)
        for comment_id in sample_ids:
            comment = result.comments.get(comment_id)
            if comment is None or comment.shadow_label is None:
                outcomes[comment_id] = False
                continue
            self._client.cookies.clear("dissenter.com")
            anonymous = self._client.get_or_none(
                f"{self.BASE}/comment/{comment_id}"
            )
            hidden_anonymously = anonymous is not None and anonymous.status == 404
            self._client.cookies.set_simple(
                "session", both_token, "dissenter.com"
            )
            authed = self._client.get_or_none(
                f"{self.BASE}/comment/{comment_id}"
            )
            visible_authenticated = authed is not None and authed.status == 200
            outcomes[comment_id] = hidden_anonymously and visible_authenticated
        self._client.cookies.clear("dissenter.com")
        return outcomes
