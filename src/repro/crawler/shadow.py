"""Shadow-overlay crawling: NSFW and "offensive" content (§3.2, §4.3.1).

NSFW and offensive comments are invisible to unauthenticated viewers and
carry **no flag in the document body** when visible, so the paper infers
them differentially: re-spider with an authenticated account that has one
view preference enabled at a time, and label any comment not present in
the baseline crawl accordingly.

This module reproduces that three-pass protocol:

1. baseline: unauthenticated crawl (done by :class:`DissenterCrawler`);
2. NSFW pass: session with only the NSFW filter enabled — new comments
   are NSFW-labelled;
3. offensive pass: session with only the offensive filter enabled — new
   comments are "offensive".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.crawler.checkpoint import CrawlCheckpoint, coerce_checkpoint
from repro.crawler.parsing import parse_comment_page
from repro.crawler.runtime import Checkpointer
from repro.net.client import HttpClient
from repro.net.cookies import CookieJar
from repro.net.http import Response
from repro.net.pool import FetchPool
from repro.platform.apps.dissenter_app import DissenterApp

if TYPE_CHECKING:   # runtime import would cycle through the crawler package
    from repro.store.corpus import CorpusStore

__all__ = ["SHADOW_PASSES", "ShadowCrawler", "ShadowCrawlReport"]

# The two authenticated passes, in execution order: which view filter the
# session enables, and the label applied to comments absent from baseline.
# Public because the sharded engine runs the same protocol per shard.
SHADOW_PASSES: tuple[tuple[str, dict], ...] = (
    ("nsfw", {"nsfw": True, "offensive": False}),
    ("offensive", {"nsfw": False, "offensive": True}),
)
_PASSES = SHADOW_PASSES


@dataclass
class ShadowCrawlReport:
    """Outcome of the differential crawl."""

    nsfw_found: int = 0
    offensive_found: int = 0
    pages_recrawled: int = 0


class ShadowCrawler:
    """Runs the authenticated re-spiders and labels hidden comments.

    Args:
        client: HTTP client (its cookie jar receives the session cookie).
        app: the Dissenter origin — used only to provision sessions, the
            way the paper's authors registered their own accounts and
            flipped the view settings.
    """

    BASE = "https://dissenter.com"

    PARSE_MEMO_SIZE = 8192

    def __init__(self, client: HttpClient, app: DissenterApp):
        self._client = client
        self._app = app
        # Body-keyed parse memo.  The NSFW and offensive passes re-fetch
        # the same pages, and for pages without hidden content the
        # transport's render cache hands back the *same* body object —
        # so the dict lookup short-circuits on identity and the second
        # pass skips the regex parse entirely.  Instance-scoped on
        # purpose: sharing parsed comment objects across crawler
        # instances would alias mutable records between runs.
        self._parse_memo: dict[bytes, list] = {}

    @staticmethod
    def _parse_page(response: Response | None) -> list:
        """Pure parse of a discussion-page response into its comments."""
        if response is None or response.status != 200:
            return []
        _, comments = parse_comment_page(response.text)
        return comments

    def _parse_page_cached(self, response: Response | None) -> list:
        if response is None or response.status != 200:
            return []
        cached = self._parse_memo.get(response.body)
        if cached is None:
            cached = self._parse_page(response)
            if len(self._parse_memo) >= self.PARSE_MEMO_SIZE:
                self._parse_memo.clear()
            self._parse_memo[response.body] = cached
        return cached

    def _merge_labeled(
        self,
        result: CorpusStore,
        comments: list,
        label: str,
        baseline_ids: set[str],
    ) -> int:
        """Label and record comments absent from the baseline crawl."""
        found = 0
        for comment in comments:
            if comment.comment_id in baseline_ids:
                continue
            if comment.comment_id in result.comments:
                continue
            comment.shadow_label = label
            result.add_comment(comment)
            found += 1
        return found

    def _label_page(
        self,
        result: CorpusStore,
        commenturl_id: str,
        label: str,
        baseline_ids: set[str],
    ) -> int:
        """Fetch one discussion page; label comments absent from baseline."""
        response = self._client.get_or_none(
            f"{self.BASE}/discussion/{commenturl_id}"
        )
        return self._merge_labeled(
            result, self._parse_page_cached(response), label, baseline_ids
        )

    def _crawl_pass(
        self,
        result: CorpusStore,
        token: str,
        label: str,
        baseline_ids: set[str],
    ) -> int:
        """One authenticated pass; labels comments absent from baseline."""
        self._client.cookies.set_simple("session", token, "dissenter.com")
        found = 0
        for commenturl_id in list(result.urls):
            found += self._label_page(result, commenturl_id, label, baseline_ids)
        self._client.cookies.clear("dissenter.com")
        return found

    def uncover(
        self,
        result: CorpusStore,
        checkpointer: Checkpointer | None = None,
        resume: CrawlCheckpoint | dict | None = None,
        pool: FetchPool | None = None,
    ) -> ShadowCrawlReport:
        """Run the NSFW and offensive passes over the baseline result.

        Mutates ``result``: hidden comments are added with their
        ``shadow_label`` set.

        With a ``checkpointer``, the pass, per-pass page index, baseline
        comment-id set and URL order are snapshotted so an interrupted
        differential crawl resumes exactly where it stopped.  On
        ``resume`` the checkpoint's corpus replaces the contents of the
        passed-in ``result`` (the caller's reference stays valid), and a
        fresh authenticated session is provisioned for the active pass —
        sessions do not survive the death of the crawling process.
        """
        report = ShadowCrawlReport()
        stage = _PASSES[0][0]
        page_index = 0
        baseline_ids: set[str] | None = None
        url_ids: list[str] | None = None
        found_counts = {"nsfw": 0, "offensive": 0}

        if resume is not None:
            checkpoint = coerce_checkpoint(resume, "shadow")
            pass_names = [name for name, _ in _PASSES] + ["done"]
            if checkpoint.stage not in pass_names:
                raise ValueError(
                    f"cannot resume shadow crawl from stage "
                    f"{checkpoint.stage!r}"
                )
            stage = checkpoint.stage
            cursor = checkpoint.cursor
            page_index = int(cursor.get("page_index", 0))
            baseline_ids = set(cursor.get("baseline_ids", []))
            url_ids = list(cursor.get("url_ids", []))
            found_counts.update(cursor.get("found", {}))
            if checkpoint.store is not None:
                # In-place replay: the caller's reference stays valid.
                result.restore_payload(checkpoint.store)
            if checkpoint.cookies is not None:
                self._client.cookies = CookieJar.from_state(checkpoint.cookies)

        if baseline_ids is None:
            baseline_ids = set(result.comments)
        if url_ids is None:
            url_ids = list(result.urls)

        if checkpointer is not None:
            checkpointer.set_provider(
                lambda: CrawlCheckpoint(
                    crawler="shadow",
                    stage=stage,
                    cursor={
                        "page_index": page_index,
                        "baseline_ids": sorted(baseline_ids),
                        "url_ids": url_ids,
                        "found": dict(found_counts),
                    },
                    store=result.snapshot(),
                    cookies=self._client.cookies.to_state(),
                ).to_payload()
            )

        if pool is None:
            pool = FetchPool(self._client.clock)

        pass_order = [name for name, _ in _PASSES]
        for position, (label, filters) in enumerate(_PASSES):
            if stage == "done" or pass_order.index(stage) > position:
                continue   # this pass completed before the checkpoint
            token = self._app.create_session(**filters)
            self._client.cookies.set_simple("session", token, "dissenter.com")

            def plan(capacity: int) -> list[int]:
                return list(
                    range(page_index, min(page_index + capacity, len(url_ids)))
                )

            def fetch(position_: int) -> Response | None:
                return self._client.get_or_none(
                    f"{self.BASE}/discussion/{url_ids[position_]}"
                )

            def process(position_: int, comments: list) -> None:
                nonlocal page_index
                found_counts[label] += self._merge_labeled(
                    result, comments, label, baseline_ids
                )
                page_index = position_ + 1

            pool.run(
                plan, fetch, process,
                parse=lambda _i, response: self._parse_page_cached(response),
                checkpointer=checkpointer,
            )
            self._client.cookies.clear("dissenter.com")
            page_index = 0
            stage = (
                pass_order[position + 1]
                if position + 1 < len(pass_order)
                else "done"
            )
            if checkpointer is not None:
                checkpointer.flush()

        report.nsfw_found = found_counts["nsfw"]
        report.offensive_found = found_counts["offensive"]
        report.pages_recrawled = 2 * len(url_ids)
        return report

    def verify_sample(
        self, result: CorpusStore, sample_ids: list[str]
    ) -> dict[str, bool]:
        """Manually verify labelled comments (§3.2's 100-comment check).

        For each comment id, confirms it is (a) invisible on the
        unauthenticated single-comment page and (b) visible with the
        matching view preference enabled.  Returns {comment_id: verified}.
        """
        outcomes: dict[str, bool] = {}
        both_token = self._app.create_session(nsfw=True, offensive=True)
        for comment_id in sample_ids:
            comment = result.comments.get(comment_id)
            if comment is None or comment.shadow_label is None:
                outcomes[comment_id] = False
                continue
            self._client.cookies.clear("dissenter.com")
            anonymous = self._client.get_or_none(
                f"{self.BASE}/comment/{comment_id}"
            )
            hidden_anonymously = anonymous is not None and anonymous.status == 404
            self._client.cookies.set_simple(
                "session", both_token, "dissenter.com"
            )
            authed = self._client.get_or_none(
                f"{self.BASE}/comment/{comment_id}"
            )
            visible_authenticated = authed is not None and authed.status == 200
            outcomes[comment_id] = hidden_anonymously and visible_authenticated
        self._client.cookies.clear("dissenter.com")
        return outcomes
