"""The resumable crawl runtime: periodic, atomic checkpoint writing.

The paper's crawl ran for weeks against a live, rate-limited service —
"resumability was survival".  This module supplies the cadence half of
that story: a :class:`Checkpointer` owns a checkpoint file and decides
*when* to snapshot (every N pages and/or every M simulated seconds),
while the crawlers supply *what* to snapshot through a state provider
callback.  Writes are atomic (tmp file + ``os.replace``), so a crawl
killed at any instant leaves either the previous complete checkpoint or
the new one — never a torn file.

Layering:

* a crawler calls :meth:`Checkpointer.set_provider` with a zero-argument
  callable returning its current :class:`~repro.crawler.checkpoint.
  CrawlCheckpoint` payload, then calls :meth:`Checkpointer.tick` once per
  fetched page;
* the pipeline optionally wraps every crawler payload via
  :meth:`Checkpointer.set_wrapper` so the file also records *which* §3
  stage is active plus the artifacts of completed stages.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable

from repro.crawler.checkpoint import atomic_write_json
from repro.net.clock import Clock

__all__ = ["Checkpointer", "load_state"]


class Checkpointer:
    """Periodic atomic checkpoint writer.

    Args:
        path: checkpoint file location.
        every_pages: write after this many :meth:`tick` calls (>= 1).
        every_seconds: also write when this many (simulated) seconds have
            passed since the last write; 0 disables the time trigger.
        clock: time source for the seconds trigger (required when
            ``every_seconds`` > 0).
    """

    def __init__(
        self,
        path: str | Path,
        every_pages: int = 25,
        every_seconds: float = 0.0,
        clock: Clock | None = None,
    ) -> None:
        if every_pages < 1:
            raise ValueError("every_pages must be >= 1")
        if every_seconds < 0:
            raise ValueError("every_seconds must be >= 0")
        if every_seconds > 0 and clock is None:
            raise ValueError("a clock is required for the seconds trigger")
        self.path = Path(path)
        self._every_pages = every_pages
        self._every_seconds = every_seconds
        self._clock = clock
        self._pages_since_save = 0
        self._last_save_time = clock.now() if clock is not None else 0.0
        self._provider: Callable[[], dict | None] | None = None
        self._wrapper: Callable[[dict | None], dict | None] | None = None
        self.saves = 0
        self.ticks = 0

    # ------------------------------------------------------------------
    # State sources.
    # ------------------------------------------------------------------

    def set_provider(self, provider: Callable[[], dict | None] | None) -> None:
        """Install the active crawler's snapshot callback (None clears)."""
        self._provider = provider

    def set_wrapper(
        self, wrapper: Callable[[dict | None], dict | None] | None
    ) -> None:
        """Install a payload wrapper (the pipeline's composite envelope)."""
        self._wrapper = wrapper

    def _payload(self) -> dict | None:
        inner = self._provider() if self._provider is not None else None
        if self._wrapper is not None:
            return self._wrapper(inner)
        return inner

    # ------------------------------------------------------------------
    # Cadence.
    # ------------------------------------------------------------------

    def tick(self) -> bool:
        """Record one page of progress; write a checkpoint when due.

        Returns True when a checkpoint was written.
        """
        self.ticks += 1
        self._pages_since_save += 1
        due = self._pages_since_save >= self._every_pages
        if not due and self._every_seconds > 0 and self._clock is not None:
            due = (
                self._clock.now() - self._last_save_time >= self._every_seconds
            )
        if due:
            return self.flush()
        return False

    def flush(self) -> bool:
        """Write a checkpoint now (regardless of cadence).

        Returns True when a payload was available and written.
        """
        payload = self._payload()
        if payload is None:
            return False
        atomic_write_json(self.path, payload)
        self.saves += 1
        self._pages_since_save = 0
        if self._clock is not None:
            self._last_save_time = self._clock.now()
        return True


def load_state(path: str | Path) -> dict:
    """Read a checkpoint file's raw JSON payload.

    Raises:
        ValueError: the file is unreadable as a JSON object.
    """
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ValueError(f"checkpoint is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ValueError("checkpoint must be a JSON object")
    return payload
