"""HTML/JSON parsers for the crawled pages.

Regex-based extraction against the stable markup the origins emit.  Every
parser is total: malformed pages yield ``None`` or empty collections, and
the crawler's validation pass re-requests anything that failed to parse.
"""

from __future__ import annotations

import html as _html
import json
import re

from repro.crawler.records import (
    CrawledComment,
    CrawledUrl,
    CrawledUser,
    CrawledYouTubeItem,
)

__all__ = [
    "parse_comment_author_blob",
    "parse_comment_page",
    "parse_comments",
    "parse_user_page",
    "parse_youtube_page",
]

_DISPLAY_NAME_RE = re.compile(r'<h1 class="display-name">(.*?)</h1>', re.DOTALL)
_USERNAME_RE = re.compile(r'<span class="username">@(.*?)</span>')
_AUTHOR_ID_RE = re.compile(r'<meta name="author-id" content="([0-9a-f]{24})">')
_BIO_RE = re.compile(r'<p class="bio">(.*?)</p>', re.DOTALL)
_URL_ITEM_RE = re.compile(
    r'<li class="commented-url"><a href="/discussion/([0-9a-f]{24})">'
)
_TITLE_RE = re.compile(r'<h1 class="page-title">(.*?)</h1>', re.DOTALL)
_DESCRIPTION_RE = re.compile(
    r'<p class="page-description">(.*?)</p>', re.DOTALL
)
_COMMENTURL_ID_RE = re.compile(
    r'<meta name="commenturl-id" content="([0-9a-f]{24})">'
)
_TARGET_URL_RE = re.compile(r'<meta name="target-url" content="(.*?)">')
_VOTES_RE = re.compile(r'<span class="votes" data-up="(\d+)" data-down="(\d+)">')
_COMMENT_RE = re.compile(
    r'<div class="comment" data-comment-id="([0-9a-f]{24})" '
    r'data-author-id="([0-9a-f]{24})" '
    r'data-parent-id="([0-9a-f]{24})?" '
    r'data-created="(\d+)">\s*'
    r'<p class="comment-text">(.*?)</p>',
    re.DOTALL,
)
_COMMENT_AUTHOR_RE = re.compile(r"// var commentAuthor = (\[.*?\]);", re.DOTALL)
_YT_BLOB_RE = re.compile(r"var ytInitialData = (\{.*?\});</script>", re.DOTALL)


def _unescape(markup: str) -> str:
    return _html.unescape(markup)


def parse_user_page(body: str) -> CrawledUser | None:
    """Parse a Dissenter home page into a :class:`CrawledUser`."""
    author_id = _AUTHOR_ID_RE.search(body)
    username = _USERNAME_RE.search(body)
    if author_id is None or username is None:
        return None
    display = _DISPLAY_NAME_RE.search(body)
    bio = _BIO_RE.search(body)
    return CrawledUser(
        username=_unescape(username.group(1)),
        author_id=author_id.group(1),
        display_name=_unescape(display.group(1)) if display else "",
        bio=_unescape(bio.group(1)) if bio else "",
        commented_url_ids=_URL_ITEM_RE.findall(body),
    )


def parse_comments(body: str) -> list[CrawledComment]:
    """Extract every comment block from a page."""
    comments: list[CrawledComment] = []
    for match in _COMMENT_RE.finditer(body):
        comment_id, author_id, parent_id, created, text = match.groups()
        comments.append(
            CrawledComment(
                comment_id=comment_id,
                author_id=author_id,
                commenturl_id="",          # attached by the caller
                text=_unescape(text),
                parent_comment_id=parent_id or None,
                created_at_epoch=int(created),
            )
        )
    return comments


def parse_comment_page(
    body: str,
) -> tuple[CrawledUrl | None, list[CrawledComment]]:
    """Parse a discussion page into URL-level data plus its comments."""
    commenturl_id = _COMMENTURL_ID_RE.search(body)
    if commenturl_id is None:
        return None, []
    title = _TITLE_RE.search(body)
    description = _DESCRIPTION_RE.search(body)
    target = _TARGET_URL_RE.search(body)
    votes = _VOTES_RE.search(body)
    url = CrawledUrl(
        commenturl_id=commenturl_id.group(1),
        url=_unescape(target.group(1)) if target else "",
        title=_unescape(title.group(1)) if title else "",
        description=_unescape(description.group(1)) if description else "",
        upvotes=int(votes.group(1)) if votes else 0,
        downvotes=int(votes.group(2)) if votes else 0,
    )
    comments = parse_comments(body)
    for comment in comments:
        comment.commenturl_id = url.commenturl_id
    return url, comments


def parse_comment_author_blob(body: str) -> dict | None:
    """Recover the hidden commentAuthor metadata from a comment page.

    The variable is commented out in the served JavaScript (§3.2) — the
    parser reads through the ``//`` prefix just as the paper's did.
    """
    match = _COMMENT_AUTHOR_RE.search(body)
    if match is None:
        return None
    try:
        payload = json.loads(match.group(1))
    except json.JSONDecodeError:
        return None
    if not isinstance(payload, list) or not payload:
        return None
    return payload[0]


def parse_youtube_page(url: str, body: str) -> CrawledYouTubeItem | None:
    """Extract video metadata from the rendered ytInitialData blob.

    This is the "Selenium" step: the static HTML title is useless, the
    data lives in JavaScript.
    """
    match = _YT_BLOB_RE.search(body)
    if match is None:
        return None
    try:
        blob = json.loads(match.group(1))
    except json.JSONDecodeError:
        return None
    status = blob.get("status", "ERROR")
    kind = blob.get("kind", "video")
    if status == "OK":
        details = blob.get("videoDetails", {})
        return CrawledYouTubeItem(
            url=url,
            kind=kind,
            status="OK",
            title=details.get("title", ""),
            owner=details.get("author", ""),
            comments_disabled=bool(details.get("commentsDisabled", False)),
        )
    return CrawledYouTubeItem(
        url=url,
        kind=kind,
        status=blob.get("reason", "unavailable"),
    )
