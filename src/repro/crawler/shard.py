"""Sharded multi-process crawl engine: N workers, one deterministic corpus.

PR 3's :class:`~repro.net.pool.FetchPool` gave the crawl K *virtual*
connections — simulated-time concurrency inside one interpreter — so at
paper scale (1.3M accounts / 1.68M comments, ~4M HTTP requests) the wall
clock is still bound by one CPU.  This module adds the real half,
following Dizzy's decouple-discovery-from-fetch design: partition each
crawl phase's job list by a **stable shard key** across N forked worker
processes, each running its own origins + :class:`VirtualClock` +
:class:`FetchPool` + per-shard :class:`CorpusStore`, and let the parent
**merge deterministically** so the final corpus is byte-identical to the
unsharded run.

Why byte-identity is achievable
===============================

The unsharded crawl appends corpus log lines in a global order fixed by
the phase sequence and, within a phase, by the job order (stage-2 user
records in detected order, stage-3 url+comment records in frontier
discovery order, stage-4 user revisions in first-comment-per-author
order, recrawl recoveries, then the two shadow passes in URL order).
The parent computes every phase's job list *with its global order
index* before forking; each worker processes its subset in ascending
index order and records, per appended log line, an **order key**.  The
parent then performs an N-way sorted merge of the per-shard line
streams by order key and replays each original line byte-for-byte into
the final store (:meth:`CorpusStore.replay_line`), which preserves the
dict upsert's first-insertion semantics.  Because a job lives on
exactly one shard, order keys never collide across streams, and the
merged log equals the unsharded log line-for-line — so the sealed
segments, the manifest, and the ``--out`` JSON hash identically.

Responses are a pure function of the request (the loopback origins are
deterministic and fault-free in sharded mode), so workers fetching
disjoint job subsets observe exactly the bytes the sequential crawl
observed.  Two wrinkles are handled explicitly:

* **Phase barriers.**  Stage 3's frontier is *static* (comment pages
  never enqueue new URLs), so the parent can compute the full URL order
  from the merged stage-2 users before stage 3 forks.  Likewise the
  stage-4 author walk and the shadow baselines derive from merged
  state at the phase boundary.
* **Worker-local dedup equals global dedup.**  A shadow-pass comment
  renders only on its own URL's page, and both shadow passes of a URL
  run on the URL's owning shard — so a worker deduplicating against
  (its per-URL baseline ∪ its own additions) reproduces the global
  dedup decision exactly.

Checkpoint envelope (v4) and kill → resume
==========================================

The parent's state file is a **v4 envelope**: the partition spec, the
merged store snapshot at the last completed phase boundary, the phase
artifacts (usernames / detected / failed lists), merged stats, and the
list of shards that already finished the active phase.  Each worker
periodically writes its *own* state file — a v3
:class:`~repro.crawler.checkpoint.CrawlCheckpoint` payload wrapped with
its shard id and phase — under ``<out>.shards/shard-NN/``.  Killing any
single worker therefore resumes *just that shard*: the parent relaunches
only the shards without a phase output file, each continuing from its
own checkpoint, and the merge consumes completed shards' outputs from
disk.

``--die-after K`` composes: the kill budget arms shard 0's transport,
carried across phases (the parent deducts each phase's served count), so
the CI round-trip can kill one worker mid-crawl and ``cmp`` the resumed
merge against the uninterrupted unsharded tree.
"""

from __future__ import annotations

import json
import multiprocessing
import shutil
import sys
import zlib
from heapq import merge as heap_merge
from pathlib import Path
from typing import Callable, Iterator

from repro.crawler.checkpoint import (
    SHARD_ENVELOPE_VERSION,
    CrawlCheckpoint,
    atomic_write_json,
    coerce_checkpoint,
    coerce_shard_envelope,
)
from repro.crawler.dissenter_crawl import (
    SIZE_THRESHOLD,
    CrawlStats,
    DissenterCrawler,
)
from repro.crawler.frontier import CrawlFrontier
from repro.crawler.gab_enum import GabEnumerationResult, GabEnumerator
from repro.crawler.parsing import parse_user_page
from repro.crawler.runtime import Checkpointer
from repro.crawler.shadow import SHADOW_PASSES, ShadowCrawler
from repro.net.client import ClientStats, HttpClient
from repro.net.clock import VirtualClock
from repro.net.errors import CrawlKilled
from repro.net.http import Response
from repro.net.pool import FetchPool
from repro.platform.apps import Origins, build_origins
from repro.platform.world import World
from repro.store.codecs import decode_line, encode_user
from repro.store.corpus import CorpusStore, iter_snapshot_lines

__all__ = ["SHARD_PHASES", "PARTITION_SPEC", "ShardEngine", "shard_key"]

#: The sharded engine's phases, in execution order.  They cover exactly
#: the corpus-producing §3 stages; the non-corpus stages (YouTube,
#: social graph, validation) read the finished corpus and stay
#: single-process.
SHARD_PHASES = (
    "gab_enum",
    "detect",
    "home_pages",
    "comment_pages",
    "metadata",
    "recrawl",
    "shadow",
)

#: How each phase's job list partitions across workers (recorded in the
#: v4 envelope so a resume can verify it resumes the same partition).
PARTITION_SPEC = {
    "gab_enum": "contiguous ID stripes over (0, max_id]",
    "detect": "crc32(username) % shards",
    "home_pages": "crc32(username) % shards",
    "comment_pages": "crc32(commenturl_id) % shards",
    "metadata": "crc32(author_id) % shards",
    "recrawl": "parent-serial (re-requests are rare and ordered)",
    "shadow": "crc32(commenturl_id) % shards (both passes on one shard)",
}

#: Exit status of a worker (and the parent) interrupted by --die-after.
EXIT_KILLED = 3


def shard_key(value: str, shards: int) -> int:
    """Stable shard assignment for a string key.

    crc32 on the UTF-8 bytes, *never* Python's ``hash()`` — the builtin
    is salted per process (PYTHONHASHSEED), which would scatter a
    resumed run's partition across different workers.
    """
    return zlib.crc32(value.encode("utf-8")) % shards


class ShardEngine:
    """Coordinates N crawl worker processes and their deterministic merge.

    Args:
        world: the generated world (workers inherit it copy-on-write
            through ``fork``, so it is built exactly once).
        shards: worker-process count (>= 1; 1 exercises the identical
            partition/merge machinery on a single worker).
        out: the crawl's ``--out`` path; worker scratch lives under
            ``<out>.shards/`` and the v4 envelope at ``state_path``.
        connections: virtual connections per worker's fetch pool.
        parse_workers: parse threads per worker's fetch pool.
        store_dir: final store's segment spill directory (workers then
            spill their shard segments under their scratch directories).
        segment_records: records per sealed segment (final and shard
            stores alike).
        columns: project the final store's columnar arrays (worker
            stores never project — columns are derived data and the
            merge replay projects them once, in final order).
        checkpoint_every: worker checkpoint cadence in pages (0 = only
            the phase-boundary envelope on kill).
        checkpoint_seconds: additional simulated-seconds cadence.
        die_after: kill shard 0's transport after this many of its
            requests (crash-safety testing; carried across phases).
        state_path: v4 envelope location (default ``<out>.state.json``).
    """

    DIE_SHARD = 0

    def __init__(
        self,
        world: World,
        shards: int,
        out: str | Path,
        connections: int = 1,
        parse_workers: int = 0,
        store_dir: str | Path | None = None,
        segment_records: int = 4096,
        columns: bool = True,
        checkpoint_every: int = 0,
        checkpoint_seconds: float = 0.0,
        die_after: int | None = None,
        state_path: str | Path | None = None,
    ) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self.world = world
        self.shards = int(shards)
        self.out = Path(out)
        self.shards_dir = Path(str(out) + ".shards")
        self.state_path = (
            Path(state_path)
            if state_path is not None
            else Path(str(out) + ".state.json")
        )
        self.connections = int(connections)
        self.parse_workers = int(parse_workers)
        self.segment_records = int(segment_records)
        self.checkpoint_every = int(checkpoint_every)
        self.checkpoint_seconds = float(checkpoint_seconds)
        self.die_after = die_after
        self.store = CorpusStore(
            store_dir=store_dir,
            segment_records=segment_records,
            columns=columns,
        )
        self.stats = CrawlStats()
        self.client_stats = ClientStats()
        self.requests = 0
        self.simulated_seconds = 0.0
        #: per-shard wall-clock-relevant CPU detail for benchmarks
        self.phase_meta: dict[str, dict] = {}
        self._artifacts: dict = {}
        self._die_spent = 0
        # Set by the parent immediately before forking a phase; workers
        # read them through fork's copy-on-write inheritance (never
        # pickled).
        self._phase_jobs: list = []
        self._kill_remaining: dict[int, int] = {}

    # ------------------------------------------------------------------
    # Parent: run / resume.
    # ------------------------------------------------------------------

    def run(self, resume: dict | None = None) -> CorpusStore:
        """Run (or resume) the sharded crawl; returns the merged store.

        Raises:
            CrawlKilled: the --die-after budget fired in a worker; the
                v4 envelope has been written to ``state_path`` and the
                surviving shards' phase outputs are on disk.
        """
        start_index = 0
        completed: list[int] = []
        if resume is not None:
            start_index, completed = self._restore(resume)
        for phase in SHARD_PHASES[start_index:]:
            if phase == "recrawl":
                self._run_recrawl()
            else:
                self._run_phase(phase, completed)
            completed = []
        return self.store

    def cleanup(self) -> None:
        """Remove worker scratch and the envelope after a finished run."""
        shutil.rmtree(self.shards_dir, ignore_errors=True)
        self.state_path.unlink(missing_ok=True)

    def _restore(self, payload: dict) -> tuple[int, list[int]]:
        envelope = coerce_shard_envelope(payload, self.shards)
        phase = envelope.get("phase")
        if phase not in SHARD_PHASES:
            raise ValueError(f"unknown sharded phase {phase!r}")
        self.store.restore_payload(envelope["store"])
        self._artifacts = dict(envelope.get("artifacts") or {})
        self.stats = CrawlStats.from_dict(envelope.get("stats") or {})
        self.client_stats = ClientStats.from_dict(envelope.get("client") or {})
        self.requests = int(envelope.get("requests", 0))
        self.simulated_seconds = float(envelope.get("simulated", 0.0))
        # The die-after budget is per *run*, exactly like the unsharded
        # resume legs: each --die-after leg gets K fresh requests.  The
        # envelope's "die_spent" is diagnostic; restoring it would make
        # a zero-remaining budget kill the relaunched worker instantly.
        self._die_spent = 0
        completed = [int(w) for w in envelope.get("completed_shards") or []]
        return SHARD_PHASES.index(phase), completed

    def _write_envelope(self, phase: str, completed: list[int]) -> None:
        atomic_write_json(
            self.state_path,
            {
                "version": SHARD_ENVELOPE_VERSION,
                "kind": "sharded",
                "shards": self.shards,
                "partition": dict(PARTITION_SPEC),
                "phase": phase,
                "completed_shards": sorted(completed),
                "store": self.store.snapshot(),
                "artifacts": self._artifacts,
                "stats": self.stats.to_dict(),
                "client": self.client_stats.to_dict(),
                "requests": self.requests,
                "simulated": self.simulated_seconds,
                "die_spent": self._die_spent,
            },
        )

    # ------------------------------------------------------------------
    # Parent: one worker phase.
    # ------------------------------------------------------------------

    def _shard_dir(self, shard: int) -> Path:
        return self.shards_dir / f"shard-{shard:02d}"

    def _output_path(self, shard: int, phase: str) -> Path:
        return self._shard_dir(shard) / f"{phase}.json"

    def _run_phase(self, phase: str, completed: list[int]) -> None:
        self._phase_jobs = self._plan_phase(phase)
        outputs: dict[int, dict] = {}
        for shard in completed:
            outputs[shard] = json.loads(
                self._output_path(shard, phase).read_text(encoding="utf-8")
            )
        pending = [w for w in range(self.shards) if w not in outputs]
        if pending:
            self._kill_remaining = {}
            if self.die_after is not None and self.DIE_SHARD in pending:
                self._kill_remaining[self.DIE_SHARD] = max(
                    0, self.die_after - self._die_spent
                )
            killed = self._launch(phase, pending, outputs)
            if killed:
                # Fold what the finished shards did so a resumed parent
                # reports cumulative counters, then leave the envelope.
                self._write_envelope(phase, sorted(outputs))
                raise CrawlKilled(self.requests)
        self._merge_phase(phase, outputs)

    def _launch(
        self, phase: str, pending: list[int], outputs: dict[int, dict]
    ) -> list[int]:
        """Fork one worker per pending shard; returns killed shard ids."""
        context = multiprocessing.get_context("fork")
        workers = []
        for shard in pending:                      # ascending shard id
            process = context.Process(
                target=self._worker_main,
                args=(phase, shard),
                name=f"shard-{shard:02d}-{phase}",
            )
            process.start()
            workers.append((shard, process))
        killed: list[int] = []
        # Collect in shard-id order, never completion order (CONC002):
        # the merge and the envelope must not depend on scheduling.
        for shard, process in workers:
            process.join()
            if process.exitcode == 0:
                outputs[shard] = json.loads(
                    self._output_path(shard, phase).read_text(encoding="utf-8")
                )
                self._account_worker(phase, shard, outputs[shard])
            elif process.exitcode == EXIT_KILLED:
                killed.append(shard)
            else:
                raise RuntimeError(
                    f"shard {shard} worker exited with status "
                    f"{process.exitcode} during phase {phase!r}"
                )
        return killed

    def _account_worker(self, phase: str, shard: int, payload: dict) -> None:
        """Fold one worker's counters into the parent totals."""
        raw_stats = payload.get("stats")
        if raw_stats is not None:
            self.stats.merge(CrawlStats.from_dict(raw_stats))
        self.client_stats.merge(ClientStats.from_dict(payload.get("client") or {}))
        self.requests += int(payload.get("requests", 0))
        if self.die_after is not None and shard == self.DIE_SHARD:
            self._die_spent += int(payload.get("requests", 0))

    # ------------------------------------------------------------------
    # Parent: phase planning (global job order, then partition).
    # ------------------------------------------------------------------

    def _plan_phase(self, phase: str) -> list:
        n = self.shards
        if phase == "gab_enum":
            max_id = self.world.gab.max_id
            base, remainder = divmod(max_id, n)
            stripes: list[tuple[int, int]] = []
            start = 0
            for w in range(n):
                size = base + (1 if w < remainder else 0)
                stripes.append((start, start + size))
                start += size
            return stripes
        if phase == "detect":
            return self._partition_indexed(
                self._artifacts["usernames"], key=lambda name: name
            )
        if phase == "home_pages":
            return self._partition_indexed(
                self._artifacts["detected"], key=lambda name: name
            )
        if phase == "comment_pages":
            # Replay stage 2's discovery pass over the merged users: the
            # frontier dedups in first-seen order, which IS the order a
            # sequential stage 3 would pop (the frontier is static
            # during stage 3 — comment pages never enqueue new URLs).
            frontier: CrawlFrontier[str] = CrawlFrontier()
            for user in self.store.users.values():
                frontier.add_many(user.commented_url_ids)
            return self._partition_indexed(
                frontier.queued(), key=lambda url_id: url_id
            )
        if phase == "metadata":
            users_by_author = self.store.users_by_author_id()
            visited: set[str] = set()
            jobs: list[list[tuple[int, str, str]]] = [[] for _ in range(n)]
            for position, comment in enumerate(self.store.comments.values()):
                author_id = comment.author_id
                if author_id in visited:
                    continue
                user = users_by_author.get(author_id)
                if user is None:
                    continue
                visited.add(author_id)
                jobs[shard_key(author_id, n)].append(
                    (position, comment.comment_id, encode_user(user))
                )
            return jobs
        if phase == "shadow":
            by_url = self.store.comments_by_url()
            shadow_jobs: list[list[tuple[int, str, list[str]]]] = [
                [] for _ in range(n)
            ]
            for position, url_id in enumerate(self.store.urls):
                baseline = [c.comment_id for c in by_url.get(url_id, [])]
                shadow_jobs[shard_key(url_id, n)].append(
                    (position, url_id, baseline)
                )
            return shadow_jobs
        raise ValueError(f"phase {phase!r} has no worker partition")

    def _partition_indexed(
        self, items: list[str], key: Callable[[str], str]
    ) -> list[list[tuple[int, str]]]:
        """Partition (global index, item) pairs by the item's shard key."""
        jobs: list[list[tuple[int, str]]] = [[] for _ in range(self.shards)]
        for position, item in enumerate(items):
            jobs[shard_key(key(item), self.shards)].append((position, item))
        return jobs

    # ------------------------------------------------------------------
    # Parent: deterministic merge.
    # ------------------------------------------------------------------

    def _merge_phase(self, phase: str, outputs: dict[int, dict]) -> None:
        ordered = [outputs[w] for w in range(self.shards)]  # shard-id order
        # Workers run concurrently on real hardware, so the phase's
        # simulated duration is the slowest worker's, not the sum; the
        # per-shard CPU detail feeds the benchmark's critical path.
        self.simulated_seconds += max(
            float(payload.get("simulated", 0.0)) for payload in ordered
        )
        self.phase_meta[phase] = {
            "simulated": max(
                float(payload.get("simulated", 0.0)) for payload in ordered
            ),
            "cpu_by_shard": {
                str(w): float(outputs[w].get("cpu_seconds", 0.0))
                for w in range(self.shards)
            },
            "requests_by_shard": {
                str(w): int(outputs[w].get("requests", 0))
                for w in range(self.shards)
            },
        }
        if phase == "gab_enum":
            merged = GabEnumerationResult()
            for payload in ordered:
                part = GabEnumerationResult.from_dict(payload["result"])
                merged.accounts.extend(part.accounts)
                merged.ids_probed += part.ids_probed
                merged.misses += part.misses
            self._artifacts["usernames"] = merged.usernames()
            self._artifacts["enum"] = {
                "accounts": len(merged.accounts),
                "ids_probed": merged.ids_probed,
                "misses": merged.misses,
            }
            return
        if phase == "detect":
            indices = sorted(
                index for payload in ordered for index in payload["detected"]
            )
            usernames = self._artifacts["usernames"]
            self._artifacts["detected"] = [usernames[i] for i in indices]
            # The username list is only needed to interpret detect
            # indices; drop it so later envelopes stay bounded.
            del self._artifacts["usernames"]
            return
        self._merge_lines(ordered)
        if phase == "comment_pages":
            failed = sorted(
                (int(position), str(url_id))
                for payload in ordered
                for position, url_id in payload.get("failed", [])
            )
            # Global-index order == the order a sequential stage 3 would
            # have recorded the failures (no mid-stage retries occur in
            # fault-free runs, and sharded mode is fault-free).
            self._artifacts["failed"] = [url_id for _, url_id in failed]
            self.stats.replace_failed(list(self._artifacts["failed"]))
        elif phase == "shadow":
            found = {"nsfw": 0, "offensive": 0}
            for payload in ordered:
                for label, count in (payload.get("found") or {}).items():
                    found[label] = found.get(label, 0) + int(count)
            self._artifacts["shadow_found"] = found

    def _merge_lines(self, ordered: list[dict]) -> None:
        """N-way merge of worker log lines by global order key."""
        streams = []
        for payload in ordered:
            lines = list(iter_snapshot_lines(payload["store"]))
            keys = [tuple(key) for key in payload["keys"]]
            if len(keys) != len(lines):
                raise RuntimeError(
                    f"shard {payload.get('shard')} wrote {len(lines)} log "
                    f"lines but {len(keys)} order keys"
                )
            # Each stream is already ascending (workers process jobs in
            # global-index order); sorting is a near-free Timsort pass
            # that makes the heap merge's precondition explicit.
            streams.append(sorted(zip(keys, lines)))
        for _, line in heap_merge(*streams):
            self.store.replay_line(line)

    # ------------------------------------------------------------------
    # Parent: the serial recrawl phase.
    # ------------------------------------------------------------------

    def _parent_client(self) -> tuple[HttpClient, VirtualClock]:
        clock = VirtualClock()
        origins = build_origins(
            self.world, clock=clock, seed=self.world.config.seed
        )
        return HttpClient(origins.transport), clock

    def _run_recrawl(self) -> None:
        """§3.2's re-request loop, parent-serial over the merged store.

        Failures are rare (fault-free sharded runs usually have none)
        and their recovery order must interleave with nothing, so one
        serial pass in the parent preserves the sequential line order
        at negligible cost.
        """
        failed = [str(url_id) for url_id in self._artifacts.get("failed", [])]
        self.stats.replace_failed(failed)
        if failed:
            client, clock = self._parent_client()
            crawler = DissenterCrawler(client)
            crawler.stats = self.stats
            while crawler.stats.comment_pages_failed:
                if crawler.recrawl_failures(self.store) == 0:
                    break
            self.client_stats.merge(client.stats)
            self.requests += client.stats.requests
            self.simulated_seconds += clock.total_slept
        self._artifacts.pop("failed", None)

    # ------------------------------------------------------------------
    # Worker process entry.
    # ------------------------------------------------------------------

    def _worker_main(self, phase: str, shard: int) -> None:
        sys.exit(self._worker_run(phase, shard))

    def _worker_run(self, phase: str, shard: int) -> int:
        shard_dir = self._shard_dir(shard)
        shard_dir.mkdir(parents=True, exist_ok=True)
        state_path = shard_dir / "state.json"
        clock = VirtualClock()
        origins = build_origins(
            self.world, clock=clock, seed=self.world.config.seed
        )
        kill_remaining = self._kill_remaining.get(shard)
        if kill_remaining is not None:
            origins.transport.kill_after(kill_remaining)
        client = HttpClient(origins.transport)
        pool = FetchPool(clock, self.connections, self.parse_workers)
        checkpointer = None
        if self.checkpoint_every > 0 or self.checkpoint_seconds > 0:
            checkpointer = Checkpointer(
                state_path,
                every_pages=self.checkpoint_every or 25,
                every_seconds=self.checkpoint_seconds,
                clock=clock,
            )
            checkpointer.set_wrapper(
                lambda inner: {
                    "version": SHARD_ENVELOPE_VERSION,
                    "kind": "shard-worker",
                    "shard": shard,
                    "phase": phase,
                    "active": inner,
                }
            )
        resume = self._worker_resume(state_path, phase, shard)
        runner = getattr(self, f"_worker_{phase}")
        try:
            payload = runner(shard, origins, client, pool, checkpointer, resume)
        except CrawlKilled:
            # The pool merged the completed prefix first, so the state
            # written here is a clean sequential boundary.
            if checkpointer is not None:
                checkpointer.flush()
            return EXIT_KILLED
        finally:
            pool.close()
        payload.update(
            {
                "shard": shard,
                "phase": phase,
                "requests": origins.transport.requests_served,
                "client": client.stats.to_dict(),
                "simulated": clock.total_slept,
                "cpu_seconds": _process_cpu_seconds(),
                "fetch": pool.stats.as_dict(),
            }
        )
        atomic_write_json(self._output_path(shard, phase), payload)
        state_path.unlink(missing_ok=True)
        return 0

    @staticmethod
    def _worker_resume(state_path: Path, phase: str, shard: int) -> dict | None:
        if not state_path.exists():
            return None
        try:
            payload = json.loads(state_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return None
        if (
            not isinstance(payload, dict)
            or payload.get("kind") != "shard-worker"
            or payload.get("phase") != phase
            or payload.get("shard") != shard
        ):
            return None   # stale state from an earlier phase
        return payload.get("active")

    def _worker_store(self, shard: int, phase: str) -> CorpusStore:
        """A worker's per-shard store: same sealing cadence, no columns.

        Columns are derived data — the parent's merge replay projects
        them once, over the final line order — so workers skip the
        projection entirely.
        """
        store_dir = None
        if self.store.store_dir is not None:
            store_dir = self._shard_dir(shard) / f"segments-{phase}"
        return CorpusStore(
            store_dir=store_dir,
            segment_records=self.segment_records,
            columns=False,
        )

    # ------------------------------------------------------------------
    # Worker phase runners.  Each returns the phase output payload; jobs
    # arrive through self._phase_jobs (fork-inherited, never pickled).
    # ------------------------------------------------------------------

    def _worker_gab_enum(
        self,
        shard: int,
        origins: Origins,
        client: HttpClient,
        pool: FetchPool,
        checkpointer: Checkpointer | None,
        resume: dict | None,
    ) -> dict:
        start_id, max_id = self._phase_jobs[shard]
        enumerator = GabEnumerator(client)
        result = enumerator.enumerate(
            max_id=max_id,
            checkpointer=checkpointer,
            resume=resume,
            pool=pool,
            start_id=start_id,
        )
        return {"result": result.to_dict()}

    def _worker_detect(
        self,
        shard: int,
        origins: Origins,
        client: HttpClient,
        pool: FetchPool,
        checkpointer: Checkpointer | None,
        resume: dict | None,
    ) -> dict:
        jobs = self._phase_jobs[shard]
        crawler = DissenterCrawler(client)
        detected = crawler.detect_accounts(
            [name for _, name in jobs],
            checkpointer=checkpointer,
            resume=resume,
            pool=pool,
        )
        index_of = {name: position for position, name in jobs}
        return {
            "detected": [index_of[name] for name in detected],
            "stats": crawler.stats.to_dict(),
        }

    def _worker_home_pages(
        self,
        shard: int,
        origins: Origins,
        client: HttpClient,
        pool: FetchPool,
        checkpointer: Checkpointer | None,
        resume: dict | None,
    ) -> dict:
        jobs = self._phase_jobs[shard]
        store = self._worker_store(shard, "home_pages")
        crawler = DissenterCrawler(client)
        index = 0
        keys: list[list[int]] = []
        if resume is not None:
            checkpoint = coerce_checkpoint(resume, "shard")
            index = int(checkpoint.cursor.get("index", 0))
            keys = [list(key) for key in checkpoint.cursor.get("keys", [])]
            if checkpoint.store is not None:
                store.restore_payload(checkpoint.store)
            if checkpoint.stats is not None:
                crawler.stats = CrawlStats.from_dict(checkpoint.stats)
        if checkpointer is not None:
            checkpointer.set_provider(
                lambda: CrawlCheckpoint(
                    crawler="shard",
                    stage="home_pages",
                    cursor={"index": index, "keys": list(keys)},
                    store=store.snapshot(),
                    stats=crawler.stats.to_dict(),
                ).to_payload()
            )

        def plan(capacity: int) -> list[int]:
            return list(range(index, min(index + capacity, len(jobs))))

        def fetch(position: int) -> Response | None:
            return client.get_or_none(
                f"{DissenterCrawler.BASE}/user/{jobs[position][1]}"
            )

        def parse(position: int, response: Response | None):
            if (
                response is not None
                and response.status == 200
                and response.size >= SIZE_THRESHOLD
            ):
                return parse_user_page(response.text)
            return None

        def process(position: int, user) -> None:
            nonlocal index
            if user is not None:
                crawler.stats.bump("home_pages_parsed")
                store.add_user(user)
                keys.append([jobs[position][0]])
            index = position + 1

        pool.run(plan, fetch, process, parse=parse, checkpointer=checkpointer)
        return {
            "keys": keys,
            "store": store.snapshot(),
            "stats": crawler.stats.to_dict(),
        }

    def _worker_comment_pages(
        self,
        shard: int,
        origins: Origins,
        client: HttpClient,
        pool: FetchPool,
        checkpointer: Checkpointer | None,
        resume: dict | None,
    ) -> dict:
        jobs = self._phase_jobs[shard]
        position_of = {url_id: position for position, url_id in jobs}
        store = self._worker_store(shard, "comment_pages")
        crawler = DissenterCrawler(client)
        frontier: CrawlFrontier[str] = CrawlFrontier(
            url_id for _, url_id in jobs
        )
        keys: list[list[int]] = []
        if resume is not None:
            checkpoint = coerce_checkpoint(resume, "shard")
            keys = [list(key) for key in checkpoint.cursor.get("keys", [])]
            if checkpoint.frontier is not None:
                frontier = CrawlFrontier.from_state(checkpoint.frontier)
            if checkpoint.store is not None:
                store.restore_payload(checkpoint.store)
            if checkpoint.stats is not None:
                crawler.stats = CrawlStats.from_dict(checkpoint.stats)
        if checkpointer is not None:
            checkpointer.set_provider(
                lambda: CrawlCheckpoint(
                    crawler="shard",
                    stage="comment_pages",
                    cursor={"keys": list(keys)},
                    store=store.snapshot(),
                    frontier=frontier.to_state(),
                    stats=crawler.stats.to_dict(),
                ).to_payload()
            )

        def fetch(commenturl_id: str) -> Response | None:
            return client.get_or_none(
                f"{DissenterCrawler.BASE}/discussion/{commenturl_id}"
            )

        def process(commenturl_id: str, outcome) -> None:
            popped = frontier.pop()
            assert popped == commenturl_id
            before = store.log_records
            crawler._merge_comment_page(store, frontier, commenturl_id, outcome)
            added = store.log_records - before
            position = position_of[commenturl_id]
            keys.extend([position, line] for line in range(added))

        pool.run(
            lambda capacity: frontier.peek(capacity),
            fetch,
            process,
            parse=lambda _id, response: (
                DissenterCrawler._comment_page_outcome(response)
            ),
            checkpointer=checkpointer,
        )
        failed = [
            [position_of[url_id], url_id]
            for url_id in crawler.stats.comment_pages_failed
        ]
        return {
            "keys": keys,
            "store": store.snapshot(),
            "stats": crawler.stats.to_dict(),
            "failed": failed,
        }

    def _worker_metadata(
        self,
        shard: int,
        origins: Origins,
        client: HttpClient,
        pool: FetchPool,
        checkpointer: Checkpointer | None,
        resume: dict | None,
    ) -> dict:
        jobs = self._phase_jobs[shard]
        store = self._worker_store(shard, "metadata")
        crawler = DissenterCrawler(client)
        index = 0
        keys: list[list[int]] = []
        if resume is not None:
            checkpoint = coerce_checkpoint(resume, "shard")
            index = int(checkpoint.cursor.get("index", 0))
            keys = [list(key) for key in checkpoint.cursor.get("keys", [])]
            if checkpoint.store is not None:
                store.restore_payload(checkpoint.store)
            if checkpoint.stats is not None:
                crawler.stats = CrawlStats.from_dict(checkpoint.stats)
        if checkpointer is not None:
            checkpointer.set_provider(
                lambda: CrawlCheckpoint(
                    crawler="shard",
                    stage="metadata",
                    cursor={"index": index, "keys": list(keys)},
                    store=store.snapshot(),
                    stats=crawler.stats.to_dict(),
                ).to_payload()
            )

        def plan(capacity: int) -> list[int]:
            return list(range(index, min(index + capacity, len(jobs))))

        def fetch(position: int) -> Response | None:
            return client.get_or_none(
                f"{DissenterCrawler.BASE}/comment/{jobs[position][1]}"
            )

        def process(position: int, response: Response | None) -> None:
            nonlocal index
            global_index, _, user_line = jobs[position]
            _, user = decode_line(user_line)
            if crawler._merge_author_page(user, response):
                store.add_user(user)
                keys.append([global_index])
            index = position + 1

        pool.run(plan, fetch, process, checkpointer=checkpointer)
        return {
            "keys": keys,
            "store": store.snapshot(),
            "stats": crawler.stats.to_dict(),
        }

    def _worker_shadow(
        self,
        shard: int,
        origins: Origins,
        client: HttpClient,
        pool: FetchPool,
        checkpointer: Checkpointer | None,
        resume: dict | None,
    ) -> dict:
        jobs = self._phase_jobs[shard]
        store = self._worker_store(shard, "shadow")
        shadow = ShadowCrawler(client, origins.dissenter)
        pass_index = 0
        index = 0
        keys: list[list[int]] = []
        found = {"nsfw": 0, "offensive": 0}
        if resume is not None:
            checkpoint = coerce_checkpoint(resume, "shard")
            pass_index = int(checkpoint.cursor.get("pass_index", 0))
            index = int(checkpoint.cursor.get("index", 0))
            keys = [list(key) for key in checkpoint.cursor.get("keys", [])]
            found.update(checkpoint.cursor.get("found", {}))
            if checkpoint.store is not None:
                store.restore_payload(checkpoint.store)
        if checkpointer is not None:
            checkpointer.set_provider(
                lambda: CrawlCheckpoint(
                    crawler="shard",
                    stage="shadow",
                    cursor={
                        "pass_index": pass_index,
                        "index": index,
                        "keys": list(keys),
                        "found": dict(found),
                    },
                    store=store.snapshot(),
                ).to_payload()
            )

        for position in range(pass_index, len(SHADOW_PASSES)):
            pass_index = position
            label, filters = SHADOW_PASSES[position]
            # A fresh authenticated session per pass, exactly like the
            # unsharded crawler (sessions never survive a process).
            token = origins.dissenter.create_session(**filters)
            client.cookies.set_simple("session", token, "dissenter.com")

            def plan(capacity: int) -> list[int]:
                return list(range(index, min(index + capacity, len(jobs))))

            def fetch(job_index: int) -> Response | None:
                return client.get_or_none(
                    f"{ShadowCrawler.BASE}/discussion/{jobs[job_index][1]}"
                )

            def process(job_index: int, comments: list) -> None:
                nonlocal index
                global_index, _, baseline = jobs[job_index]
                before = store.log_records
                found[label] += shadow._merge_labeled(
                    store, comments, label, set(baseline)
                )
                added = store.log_records - before
                keys.extend(
                    [position, global_index, line] for line in range(added)
                )
                index = job_index + 1

            pool.run(
                plan,
                fetch,
                process,
                parse=lambda _i, response: shadow._parse_page_cached(response),
                checkpointer=checkpointer,
            )
            client.cookies.clear("dissenter.com")
            index = 0
            pass_index = position + 1
            if checkpointer is not None:
                checkpointer.flush()
        return {"keys": keys, "store": store.snapshot(), "found": found}


def _process_cpu_seconds() -> float:
    """This process's user+system CPU seconds (for the scaling report).

    On a host with fewer cores than shards the measured wall clock
    cannot show the speedup; per-worker CPU time gives the critical
    path an N-core host would observe.  Diagnostics only — never part
    of corpus or checkpoint bytes.
    """
    import resource

    usage = resource.getrusage(resource.RUSAGE_SELF)
    return float(usage.ru_utime + usage.ru_stime)


def iter_shard_dirs(shards_dir: str | Path) -> Iterator[Path]:
    """Yield existing shard scratch directories in shard-id order."""
    base = Path(shards_dir)
    if not base.is_dir():
        return
    for entry in sorted(base.iterdir()):
        if entry.is_dir() and entry.name.startswith("shard-"):
            yield entry
