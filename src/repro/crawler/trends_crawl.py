"""Gab Trends crawling (§2.1).

Gab Trends is the second access path onto Dissenter threads: a news
aggregation portal whose article entries link to the same comment pages
the browser overlay shows.  The paper notes "the comment thread visible
via the Dissenter browser and Gab Trends is identical" — this crawler
collects the Trends front page and verifies that identity empirically,
and exercises the URL-submission flow.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.crawler.parsing import parse_comment_page
from repro.crawler.records import CrawledComment, CrawledUrl
from repro.net.client import HttpClient

__all__ = ["TrendsCrawler", "TrendsFrontPage"]

_ARTICLE_RE = re.compile(
    r'<li class="article">'
    r'<a href="https://dissenter\.com/discussion/([0-9a-f]{24})">(.*?)</a>'
    r'<span class="comment-count">(\d+)</span></li>',
    re.DOTALL,
)


@dataclass
class TrendsFrontPage:
    """The Trends homepage: articles with their advertised comment counts."""

    articles: list[tuple[str, str, int]] = field(default_factory=list)
    # (commenturl_id, title, advertised_comment_count)

    def commenturl_ids(self) -> list[str]:
        return [cid for cid, _title, _count in self.articles]


class TrendsCrawler:
    """Crawls trends.gab.com and cross-checks it against dissenter.com."""

    TRENDS = "https://trends.gab.com"
    DISSENTER = "https://dissenter.com"

    def __init__(self, client: HttpClient):
        self._client = client

    def front_page(self) -> TrendsFrontPage:
        """Fetch and parse the Trends homepage."""
        response = self._client.get(f"{self.TRENDS}/")
        page = TrendsFrontPage()
        for match in _ARTICLE_RE.finditer(response.text):
            cid, title, count = match.groups()
            page.articles.append((cid, title, int(count)))
        return page

    def thread_via_trends(
        self, commenturl_id: str
    ) -> tuple[CrawledUrl | None, list[CrawledComment]]:
        """Fetch a discussion by following the Trends link."""
        response = self._client.get_or_none(
            f"{self.DISSENTER}/discussion/{commenturl_id}"
        )
        if response is None or response.status != 200:
            return None, []
        return parse_comment_page(response.text)

    def verify_thread_identity(self, front: TrendsFrontPage) -> dict[str, bool]:
        """§2.1's identity property: Trends' advertised comment count must
        match the thread the Dissenter comment page serves.

        Returns {commenturl_id: matches}.
        """
        outcomes: dict[str, bool] = {}
        for commenturl_id, _title, advertised in front.articles:
            _url, comments = self.thread_via_trends(commenturl_id)
            outcomes[commenturl_id] = len(comments) == advertised
        return outcomes

    def submit_url(self, url: str) -> str | None:
        """Exercise the submission flow; returns the final discussion URL.

        Trends redirects submissions into Dissenter's ``/discussion/begin``
        flow, which lands on the existing comment page for known URLs or
        an empty new-discussion page otherwise.
        """
        response = self._client.get_or_none(
            f"{self.TRENDS}/submit", params={"url": url}
        )
        if response is None or not response.ok:
            return None
        return response.url
