"""The YouTube render crawler (§3.3).

Dissenter's own comment pages show "/watch" titles and empty descriptions
for YouTube URLs, so the paper drove Selenium against YouTube to read the
metadata out of the JavaScript.  Our equivalent "render" step fetches the
page, follows youtu.be redirects, and executes the extraction against the
``ytInitialData`` blob — a plain HTML-title scraper would recover nothing
(a property the test suite asserts).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable
from urllib.parse import urlsplit

from repro.crawler.parsing import parse_youtube_page
from repro.crawler.records import CrawledYouTubeItem
from repro.net.client import HttpClient

__all__ = ["YouTubeCrawler", "YouTubeCrawlResult", "is_youtube_url"]


def is_youtube_url(url: str) -> bool:
    """Whether a URL points at YouTube content (incl. youtu.be links)."""
    host = urlsplit(url).netloc.lower()
    return host in ("youtube.com", "www.youtube.com", "youtu.be")


@dataclass
class YouTubeCrawlResult:
    """All recovered YouTube metadata, keyed by original URL."""

    items: dict[str, CrawledYouTubeItem] = field(default_factory=dict)
    fetch_failures: list[str] = field(default_factory=list)

    def videos(self) -> list[CrawledYouTubeItem]:
        return [i for i in self.items.values() if i.kind == "video"]

    def active_videos(self) -> list[CrawledYouTubeItem]:
        return [i for i in self.videos() if i.is_active]

    def status_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for item in self.videos():
            counts[item.status] = counts.get(item.status, 0) + 1
        return counts


class YouTubeCrawler:
    """Fetch-and-render crawler for YouTube URLs."""

    def __init__(self, client: HttpClient):
        self._client = client

    def render(self, url: str) -> CrawledYouTubeItem | None:
        """Fetch one URL (following redirects) and extract the JS blob."""
        fetch_url = url
        if fetch_url.startswith("http://"):
            fetch_url = "https://" + fetch_url[len("http://"):]
        response = self._client.get_or_none(fetch_url)
        if response is None or response.status != 200:
            return None
        item = parse_youtube_page(url, response.text)
        return item

    def crawl(self, urls: Iterable[str]) -> YouTubeCrawlResult:
        """Render every YouTube URL in the iterable."""
        result = YouTubeCrawlResult()
        for url in urls:
            if not is_youtube_url(url):
                continue
            item = self.render(url)
            if item is None:
                result.fetch_failures.append(url)
                continue
            result.items[url] = item
        return result
