"""The YouTube render crawler (§3.3).

Dissenter's own comment pages show "/watch" titles and empty descriptions
for YouTube URLs, so the paper drove Selenium against YouTube to read the
metadata out of the JavaScript.  Our equivalent "render" step fetches the
page, follows youtu.be redirects, and executes the extraction against the
``ytInitialData`` blob — a plain HTML-title scraper would recover nothing
(a property the test suite asserts).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Iterable
from urllib.parse import urlsplit

from repro.crawler.checkpoint import CrawlCheckpoint, coerce_checkpoint
from repro.crawler.parsing import parse_youtube_page
from repro.crawler.records import CrawledYouTubeItem
from repro.crawler.runtime import Checkpointer
from repro.net.client import HttpClient
from repro.net.cookies import CookieJar
from repro.net.http import Response
from repro.net.pool import FetchPool

__all__ = ["YouTubeCrawler", "YouTubeCrawlResult", "is_youtube_url"]


def is_youtube_url(url: str) -> bool:
    """Whether a URL points at YouTube content (incl. youtu.be links)."""
    host = urlsplit(url).netloc.lower()
    return host in ("youtube.com", "www.youtube.com", "youtu.be")


@dataclass
class YouTubeCrawlResult:
    """All recovered YouTube metadata, keyed by original URL."""

    items: dict[str, CrawledYouTubeItem] = field(default_factory=dict)
    fetch_failures: list[str] = field(default_factory=list)

    def videos(self) -> list[CrawledYouTubeItem]:
        return [i for i in self.items.values() if i.kind == "video"]

    def active_videos(self) -> list[CrawledYouTubeItem]:
        return [i for i in self.videos() if i.is_active]

    def status_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for item in self.videos():
            counts[item.status] = counts.get(item.status, 0) + 1
        return counts

    def to_dict(self) -> dict:
        """JSON-ready snapshot (checkpointing)."""
        return {
            "items": {url: asdict(item) for url, item in self.items.items()},
            "fetch_failures": list(self.fetch_failures),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "YouTubeCrawlResult":
        try:
            return cls(
                items={
                    url: CrawledYouTubeItem(
                        url=entry["url"],
                        kind=entry["kind"],
                        status=entry["status"],
                        title=entry.get("title", ""),
                        owner=entry.get("owner", ""),
                        comments_disabled=bool(
                            entry.get("comments_disabled", False)
                        ),
                    )
                    for url, entry in (payload.get("items") or {}).items()
                },
                fetch_failures=list(payload.get("fetch_failures", [])),
            )
        except (KeyError, TypeError, AttributeError) as exc:
            raise ValueError(f"malformed YouTube crawl state: {exc!r}") from exc


class YouTubeCrawler:
    """Fetch-and-render crawler for YouTube URLs."""

    def __init__(self, client: HttpClient):
        self._client = client

    def _fetch(self, url: str) -> Response | None:
        """Fetch one URL (following redirects)."""
        fetch_url = url
        if fetch_url.startswith("http://"):
            fetch_url = "https://" + fetch_url[len("http://"):]
        return self._client.get_or_none(fetch_url)

    @staticmethod
    def _extract(url: str, response: Response | None) -> CrawledYouTubeItem | None:
        """Pure extraction of the ytInitialData blob from a response."""
        if response is None or response.status != 200:
            return None
        return parse_youtube_page(url, response.text)

    def render(self, url: str) -> CrawledYouTubeItem | None:
        """Fetch one URL (following redirects) and extract the JS blob."""
        return self._extract(url, self._fetch(url))

    def crawl(
        self,
        urls: Iterable[str],
        checkpointer: Checkpointer | None = None,
        resume: CrawlCheckpoint | dict | None = None,
        pool: FetchPool | None = None,
    ) -> YouTubeCrawlResult:
        """Render every YouTube URL in the iterable.

        With a ``checkpointer``, progress is snapshotted periodically;
        on ``resume`` the same URL sequence must be passed again — the
        saved cursor indexes into it and already-rendered URLs are never
        re-fetched.
        """
        urls = list(urls)
        result = YouTubeCrawlResult()
        index = 0
        stage = "render"
        if resume is not None:
            checkpoint = coerce_checkpoint(resume, "youtube")
            index = int(checkpoint.cursor.get("index", 0))
            result = YouTubeCrawlResult.from_dict(
                checkpoint.cursor.get("result") or {}
            )
            if checkpoint.cookies is not None:
                self._client.cookies = CookieJar.from_state(checkpoint.cookies)

        if checkpointer is not None:
            checkpointer.set_provider(
                lambda: CrawlCheckpoint(
                    crawler="youtube",
                    stage=stage,
                    cursor={"index": index, "result": result.to_dict()},
                    cookies=self._client.cookies.to_state(),
                ).to_payload()
            )

        if pool is None:
            pool = FetchPool(self._client.clock)

        def plan(capacity: int) -> list[tuple[int, str]]:
            # Non-YouTube URLs never issue a request (nor tick); each
            # job carries the cursor value past any it skipped.
            jobs: list[tuple[int, str]] = []
            position = index
            while position < len(urls) and len(jobs) < capacity:
                url = urls[position]
                position += 1
                if is_youtube_url(url):
                    jobs.append((position, url))
            return jobs

        def process(job: tuple[int, str], item: CrawledYouTubeItem | None) -> None:
            nonlocal index
            index_after, url = job
            if item is None:
                result.fetch_failures.append(url)
            else:
                result.items[url] = item
            index = index_after

        pool.run(
            plan,
            lambda job: self._fetch(job[1]),
            process,
            parse=lambda job, response: self._extract(job[1], response),
            checkpointer=checkpointer,
        )
        index = len(urls)
        stage = "done"
        if checkpointer is not None:
            checkpointer.flush()
        return result
