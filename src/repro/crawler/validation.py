"""Crawl validation (§3.2's accuracy and completeness checks).

Three independent verifications:

1. **Internal consistency** — timestamps decoded from the undocumented
   12-byte IDs must agree with the page-reported timestamps and fall
   inside the study window; every comment must reference a crawled URL;
   every reply's parent must exist.
2. **Completeness** — pages that timed out are re-requested until the
   failure list drains (bounded by a retry budget).
3. **Shadow-label verification** — a random sample of NSFW/offensive
   comments is manually re-checked with and without the authenticated
   view settings (the paper verified 100 and found all correctly
   labelled).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from typing import TYPE_CHECKING

from repro.crawler.shadow import ShadowCrawler
from repro.stats.sampling import reservoir_sample

if TYPE_CHECKING:   # runtime import would cycle through the crawler package
    from repro.store.corpus import Corpus

__all__ = ["CrawlValidator", "ValidationReport"]


@dataclass
class ValidationReport:
    """Aggregated validation outcome."""

    comments_checked: int = 0
    timestamp_mismatches: int = 0
    dangling_url_refs: int = 0
    dangling_parent_refs: int = 0
    ids_outside_window: int = 0
    shadow_sample_size: int = 0
    shadow_verified: int = 0
    issues: list[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return (
            self.timestamp_mismatches == 0
            and self.dangling_url_refs == 0
            and self.dangling_parent_refs == 0
            and self.ids_outside_window == 0
            and self.shadow_verified == self.shadow_sample_size
        )


class CrawlValidator:
    """Runs the §3.2 validation protocol over a crawl result."""

    def __init__(
        self,
        window_start: float,
        window_end: float,
        timestamp_tolerance: float = 2.0,
    ):
        if window_start >= window_end:
            raise ValueError("window_start must precede window_end")
        self._window = (window_start, window_end)
        self._tolerance = timestamp_tolerance

    def check_consistency(self, result: Corpus) -> ValidationReport:
        """Run the internal-consistency checks."""
        report = ValidationReport()
        lo, hi = self._window
        for comment in result.comments.values():
            report.comments_checked += 1
            id_time = comment.created_at
            if abs(id_time - comment.created_at_epoch) > self._tolerance:
                report.timestamp_mismatches += 1
                report.issues.append(
                    f"comment {comment.comment_id}: id-time {id_time} != "
                    f"page-time {comment.created_at_epoch}"
                )
            if not lo <= id_time <= hi:
                report.ids_outside_window += 1
                report.issues.append(
                    f"comment {comment.comment_id}: created {id_time} "
                    f"outside study window"
                )
            if comment.commenturl_id not in result.urls:
                report.dangling_url_refs += 1
                report.issues.append(
                    f"comment {comment.comment_id}: unknown URL "
                    f"{comment.commenturl_id}"
                )
            if (
                comment.parent_comment_id is not None
                and comment.parent_comment_id not in result.comments
            ):
                report.dangling_parent_refs += 1
                report.issues.append(
                    f"comment {comment.comment_id}: missing parent "
                    f"{comment.parent_comment_id}"
                )
        return report

    def verify_shadow_sample(
        self,
        result: Corpus,
        shadow_crawler: ShadowCrawler,
        sample_size: int = 100,
        seed: int = 0,
        report: ValidationReport | None = None,
    ) -> ValidationReport:
        """Manually verify a sample of shadow-labelled comments."""
        report = report or ValidationReport()
        labelled = [
            c.comment_id
            for c in result.comments.values()
            if c.shadow_label is not None
        ]
        if not labelled:
            return report
        sample = reservoir_sample(
            labelled, min(sample_size, len(labelled)), seed=seed
        )
        outcomes = shadow_crawler.verify_sample(result, sample)
        report.shadow_sample_size = len(sample)
        report.shadow_verified = sum(1 for ok in outcomes.values() if ok)
        for comment_id, ok in outcomes.items():
            if not ok:
                report.issues.append(
                    f"shadow comment {comment_id} failed manual verification"
                )
        return report
