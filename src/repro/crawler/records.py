"""Crawled-data records.

Everything in here was parsed out of HTTP responses; nothing comes from
the generator's ground truth.  The analyses in :mod:`repro.core` operate
on these records, exactly as the paper's analyses operated on its crawl
corpus — and the test suite closes the loop by comparing them against the
world's ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

__all__ = [
    "CrawlResult",
    "CrawledComment",
    "CrawledGabAccount",
    "CrawledUrl",
    "CrawledUser",
    "CrawledYouTubeItem",
]


@dataclass
class CrawledGabAccount:
    """One Gab account recovered through the API enumeration."""

    gab_id: int
    username: str
    display_name: str
    created_at_iso: str
    followers_count: int = 0
    following_count: int = 0


@dataclass
class CrawledUser:
    """One Dissenter user assembled from home + comment pages."""

    username: str
    author_id: str
    display_name: str = ""
    bio: str = ""
    commented_url_ids: list[str] = field(default_factory=list)
    # From the hidden commentAuthor blob (None until a comment page of
    # theirs has been crawled).
    language: str | None = None
    permissions: dict[str, bool] = field(default_factory=dict)
    view_filters: dict[str, bool] = field(default_factory=dict)

    @property
    def created_at(self) -> int:
        """Creation time decoded from the author-id (§2.2)."""
        return int(self.author_id[:8], 16)


@dataclass
class CrawledUrl:
    """One comment page's URL-level data."""

    commenturl_id: str
    url: str
    title: str
    description: str
    upvotes: int
    downvotes: int

    @property
    def net_votes(self) -> int:
        return self.upvotes - self.downvotes

    @property
    def first_seen(self) -> int:
        """First-appearance time decoded from the commenturl-id."""
        return int(self.commenturl_id[:8], 16)


@dataclass
class CrawledComment:
    """One comment or reply."""

    comment_id: str
    author_id: str
    commenturl_id: str
    text: str
    parent_comment_id: str | None = None
    created_at_epoch: int = 0
    # Filled in by the shadow crawl diff (§3.2): which authenticated view
    # was required to see this comment.
    shadow_label: str | None = None     # None | "nsfw" | "offensive"

    @property
    def is_reply(self) -> bool:
        return self.parent_comment_id is not None

    @property
    def created_at(self) -> int:
        """Creation time decoded from the comment-id."""
        return int(self.comment_id[:8], 16)


@dataclass
class CrawledYouTubeItem:
    """YouTube metadata recovered by the render crawler."""

    url: str
    kind: str
    status: str
    title: str = ""
    owner: str = ""
    comments_disabled: bool = False

    @property
    def is_active(self) -> bool:
        return self.status == "OK"


@dataclass
class CrawlResult:
    """The assembled Dissenter corpus (legacy in-memory form).

    The crawl stack now fills a :class:`repro.store.CorpusStore`
    (append-only segments, memoised post-seal indexes, checkpoint v3);
    this class remains the plain-dict form with the same duck-typed
    access surface, used by unit tests and the v1 interchange format.
    """

    users: dict[str, CrawledUser] = field(default_factory=dict)        # by username
    urls: dict[str, CrawledUrl] = field(default_factory=dict)          # by commenturl_id
    comments: dict[str, CrawledComment] = field(default_factory=dict)  # by comment_id

    # -- write surface (mirrors CorpusStore; upserts keep first position)

    def add_user(self, user: CrawledUser) -> None:
        self.users[user.username] = user

    def add_url(self, url: CrawledUrl) -> None:
        self.urls[url.commenturl_id] = url

    def add_comment(self, comment: CrawledComment) -> None:
        self.comments[comment.comment_id] = comment

    def touch_user(self, user: CrawledUser) -> None:
        """Record an in-place mutation (a no-op for the dict form)."""
        self.users[user.username] = user

    # -- streaming read views (mirrors CorpusStore) --------------------

    def iter_users(self) -> "Iterator[CrawledUser]":
        return iter(self.users.values())

    def iter_urls(self) -> "Iterator[CrawledUrl]":
        return iter(self.urls.values())

    def iter_comments(self) -> "Iterator[CrawledComment]":
        return iter(self.comments.values())

    def texts(self) -> "Iterator[str]":
        """Every crawled comment text, streamed in corpus order."""
        return (c.text for c in self.comments.values())

    # -- secondary indexes (rebuilt per call; the store memoises) ------

    def users_by_author_id(self) -> dict[str, CrawledUser]:
        return {u.author_id: u for u in self.users.values()}

    def comments_by_url(self) -> dict[str, list[CrawledComment]]:
        grouped: dict[str, list[CrawledComment]] = {}
        for comment in self.comments.values():
            grouped.setdefault(comment.commenturl_id, []).append(comment)
        return grouped

    def comments_by_author(self) -> dict[str, list[CrawledComment]]:
        grouped: dict[str, list[CrawledComment]] = {}
        for comment in self.comments.values():
            grouped.setdefault(comment.author_id, []).append(comment)
        return grouped

    def active_author_ids(self) -> set[str]:
        """Author ids with at least one crawled comment (membership only)."""
        return {c.author_id for c in self.comments.values()}

    def active_users(self) -> list[CrawledUser]:
        """Users with at least one crawled comment."""
        authors = self.active_author_ids()
        return [u for u in self.users.values() if u.author_id in authors]

    def summary(self) -> dict[str, int]:
        return {
            "users": len(self.users),
            "urls": len(self.urls),
            "comments": len(self.comments),
            "active_users": len(self.active_users()),
        }
