"""Crawl checkpointing.

The paper's crawl ran for weeks against a live service; resumability was
survival.  Three formats live here:

* **v1** — a finished :class:`CrawlResult` serialised to a single JSON
  document (:func:`dumps_result` / :func:`loads_result`).  This is the
  corpus interchange format.
* **v2** (read-only) — a :class:`CrawlCheckpoint` whose partial corpus
  was embedded as a full ``result_to_payload`` document, re-serialised
  wholesale on every tick.  Still loaded transparently.
* **v3** (written) — the same :class:`CrawlCheckpoint` envelope, but the
  partial corpus travels as a :meth:`~repro.store.CorpusStore.snapshot`
  payload: sealed-segment references (name + count + sha256, the bytes
  on disk under ``--store-dir``) plus only the unsealed tail — so a
  checkpoint tick costs O(progress since the last tick), not O(corpus).

The ``store`` payload stays an opaque dict at this layer;
:meth:`repro.store.CorpusStore.restore_payload` dispatches on its shape
(v3 snapshot vs legacy v2 result document), which keeps this module free
of a ``repro.store`` import.  The resumable runtime in
:mod:`repro.crawler.runtime` drives the cadence.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.crawler.records import (
    CrawlResult,
    CrawledComment,
    CrawledUrl,
    CrawledUser,
)

__all__ = [
    "CrawlCheckpoint",
    "SHARD_ENVELOPE_VERSION",
    "atomic_write_json",
    "atomic_write_text",
    "coerce_checkpoint",
    "coerce_shard_envelope",
    "dump_checkpoint",
    "dump_result",
    "dumps_result",
    "is_shard_envelope",
    "load_checkpoint",
    "load_result",
    "loads_result",
    "result_from_payload",
    "result_to_payload",
]

_FORMAT_VERSION = 1
_RUNTIME_FORMAT_VERSION = 3
#: runtime checkpoint versions ``from_payload`` accepts (v2 documents
#: written before the segmented store still resume).
_COMPAT_RUNTIME_VERSIONS = (2, 3)

#: Checkpoint format v4: the *sharded* crawl's parent envelope.  It is a
#: coordinator-level document — per-worker state still travels as the
#: v3 :class:`CrawlCheckpoint` payloads this module already defines,
#: wrapped one level down in each worker's own state file — so v4 does
#: not supersede v3; it composes it with the frontier partition spec and
#: the merged store snapshot at the last completed phase boundary.
SHARD_ENVELOPE_VERSION = 4


def result_to_payload(result: CrawlResult) -> dict:
    """Serialise a crawl result to a JSON-ready dict (no version field)."""
    return {
        "users": [
            {
                "username": u.username,
                "author_id": u.author_id,
                "display_name": u.display_name,
                "bio": u.bio,
                "commented_url_ids": u.commented_url_ids,
                "language": u.language,
                "permissions": u.permissions,
                "view_filters": u.view_filters,
            }
            for u in result.users.values()
        ],
        "urls": [
            {
                "commenturl_id": u.commenturl_id,
                "url": u.url,
                "title": u.title,
                "description": u.description,
                "upvotes": u.upvotes,
                "downvotes": u.downvotes,
            }
            for u in result.urls.values()
        ],
        "comments": [
            {
                "comment_id": c.comment_id,
                "author_id": c.author_id,
                "commenturl_id": c.commenturl_id,
                "text": c.text,
                "parent_comment_id": c.parent_comment_id,
                "created_at_epoch": c.created_at_epoch,
                "shadow_label": c.shadow_label,
            }
            for c in result.comments.values()
        ],
    }


def result_from_payload(payload: dict) -> CrawlResult:
    """Rebuild a crawl result from :func:`result_to_payload` output.

    Raises:
        ValueError: the payload is not a dict or is missing/mistyping
            required fields.
    """
    if not isinstance(payload, dict):
        raise ValueError(
            f"checkpoint payload must be an object, got {type(payload).__name__}"
        )
    result = CrawlResult()
    try:
        for entry in payload["users"]:
            user = CrawledUser(
                username=entry["username"],
                author_id=entry["author_id"],
                display_name=entry.get("display_name", ""),
                bio=entry.get("bio", ""),
                commented_url_ids=list(entry.get("commented_url_ids", [])),
                language=entry.get("language"),
                permissions=dict(entry.get("permissions", {})),
                view_filters=dict(entry.get("view_filters", {})),
            )
            result.users[user.username] = user
        for entry in payload["urls"]:
            url = CrawledUrl(
                commenturl_id=entry["commenturl_id"],
                url=entry["url"],
                title=entry.get("title", ""),
                description=entry.get("description", ""),
                upvotes=int(entry.get("upvotes", 0)),
                downvotes=int(entry.get("downvotes", 0)),
            )
            result.urls[url.commenturl_id] = url
        for entry in payload["comments"]:
            comment = CrawledComment(
                comment_id=entry["comment_id"],
                author_id=entry["author_id"],
                commenturl_id=entry["commenturl_id"],
                text=entry["text"],
                parent_comment_id=entry.get("parent_comment_id"),
                created_at_epoch=int(entry.get("created_at_epoch", 0)),
                shadow_label=entry.get("shadow_label"),
            )
            result.comments[comment.comment_id] = comment
    except (KeyError, TypeError, AttributeError) as exc:
        raise ValueError(f"malformed checkpoint document: {exc!r}") from exc
    return result


def dumps_result(result: CrawlResult) -> str:
    """Serialise a crawl result to a JSON string."""
    payload = {"version": _FORMAT_VERSION, **result_to_payload(result)}
    return json.dumps(payload)


def loads_result(serialized: str) -> CrawlResult:
    """Load a crawl result from a JSON string.

    Raises:
        ValueError: unknown format version or malformed document (missing
            keys and mistyped payloads are wrapped, never leaked as bare
            ``KeyError``/``TypeError``).
    """
    try:
        payload = json.loads(serialized)
    except json.JSONDecodeError as exc:
        raise ValueError(f"checkpoint is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ValueError(
            f"checkpoint must be a JSON object, got {type(payload).__name__}"
        )
    if payload.get("version") != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported checkpoint version {payload.get('version')!r}"
        )
    return result_from_payload(payload)


def dump_result(result: CrawlResult, path: str | Path) -> None:
    """Write a checkpoint file (atomically)."""
    atomic_write_text(path, dumps_result(result))


def load_result(path: str | Path) -> CrawlResult:
    """Read a checkpoint file."""
    return loads_result(Path(path).read_text(encoding="utf-8"))


# ----------------------------------------------------------------------
# Atomic writes.
# ----------------------------------------------------------------------


def atomic_write_text(path: str | Path, text: str) -> None:
    """Write ``text`` to ``path`` atomically (tmp file + ``os.replace``).

    A reader (or a resumed crawl) never observes a torn file: it sees
    either the previous complete checkpoint or the new one.
    """
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(text)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def atomic_write_json(path: str | Path, payload: dict) -> None:
    """Serialise ``payload`` and write it atomically."""
    atomic_write_text(path, json.dumps(payload))


# ----------------------------------------------------------------------
# Checkpoint format v3 (v2 read-compatible): in-progress crawler state.
# ----------------------------------------------------------------------


@dataclass
class CrawlCheckpoint:
    """One crawler's resumable state at a point in time.

    Attributes:
        crawler: which crawler wrote this ("dissenter", "gab_enum",
            "shadow", "youtube", "social").
        stage: the crawler-specific stage that was active.
        cursor: crawler-specific progress (indices, partial collections)
            — everything in it must be JSON-serialisable.
        store: the partial corpus, when the crawler builds one: either a
            :meth:`repro.store.CorpusStore.snapshot` payload (v3) or a
            legacy :func:`result_to_payload` document lifted from a v2
            file.  Kept as an opaque dict here;
            :meth:`repro.store.CorpusStore.restore_payload` dispatches
            on its shape.
        frontier: a :meth:`CrawlFrontier.to_state` snapshot, when the
            active stage drains a frontier.
        stats: serialised per-stage progress counters.
        cookies: a :meth:`CookieJar.to_state` snapshot of the client's
            jar (authenticated shadow sessions live here).
    """

    crawler: str
    stage: str
    cursor: dict = field(default_factory=dict)
    store: dict | None = None
    frontier: dict | None = None
    stats: dict | None = None
    cookies: list | None = None

    def to_payload(self) -> dict:
        return {
            "version": _RUNTIME_FORMAT_VERSION,
            "crawler": self.crawler,
            "stage": self.stage,
            "cursor": self.cursor,
            "store": self.store,
            "frontier": self.frontier,
            "stats": self.stats,
            "cookies": self.cookies,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "CrawlCheckpoint":
        """Parse a v3 (or legacy v2) payload.

        A v2 document's embedded ``result`` corpus is carried over as
        the ``store`` payload verbatim — the store's restore path
        recognises the legacy shape.

        Raises:
            ValueError: wrong version or malformed document.
        """
        if not isinstance(payload, dict):
            raise ValueError(
                f"runtime checkpoint must be an object, "
                f"got {type(payload).__name__}"
            )
        version = payload.get("version")
        if version not in _COMPAT_RUNTIME_VERSIONS:
            raise ValueError(
                f"unsupported runtime checkpoint version {version!r}"
            )
        raw_store = (
            payload.get("result") if version == 2 else payload.get("store")
        )
        if raw_store is not None and not isinstance(raw_store, dict):
            raise ValueError(
                f"malformed runtime checkpoint: corpus payload must be "
                f"an object, got {type(raw_store).__name__}"
            )
        try:
            return cls(
                crawler=payload["crawler"],
                stage=payload["stage"],
                cursor=dict(payload.get("cursor") or {}),
                store=raw_store,
                frontier=payload.get("frontier"),
                stats=payload.get("stats"),
                cookies=payload.get("cookies"),
            )
        except (KeyError, TypeError) as exc:
            raise ValueError(f"malformed runtime checkpoint: {exc!r}") from exc


def coerce_checkpoint(resume: "CrawlCheckpoint | dict", crawler: str) -> "CrawlCheckpoint":
    """Accept either a parsed checkpoint or its payload; validate ownership.

    Raises:
        ValueError: the checkpoint belongs to a different crawler or is
            malformed.
    """
    checkpoint = (
        resume
        if isinstance(resume, CrawlCheckpoint)
        else CrawlCheckpoint.from_payload(resume)
    )
    if checkpoint.crawler != crawler:
        raise ValueError(
            f"checkpoint belongs to crawler {checkpoint.crawler!r}, "
            f"cannot resume {crawler!r}"
        )
    return checkpoint


def is_shard_envelope(payload: dict) -> bool:
    """Whether a state-file payload is a sharded (v4) parent envelope.

    The CLI dispatches on this: ``--resume`` over a v4 envelope goes to
    the sharded engine, anything else to the single-process pipeline.
    """
    return (
        isinstance(payload, dict)
        and payload.get("kind") == "sharded"
        and payload.get("version") == SHARD_ENVELOPE_VERSION
    )


def coerce_shard_envelope(payload: dict, shards: int) -> dict:
    """Validate a v4 sharded envelope against the requested worker count.

    Raises:
        ValueError: not a v4 envelope, or it was written by a run with a
            different ``--shards`` value (the frontier partition is a
            function of the worker count, so resuming under a different
            count would re-partition mid-crawl and corrupt the merge
            order).
    """
    if not isinstance(payload, dict) or payload.get("kind") != "sharded":
        raise ValueError("not a sharded checkpoint envelope")
    if payload.get("version") != SHARD_ENVELOPE_VERSION:
        raise ValueError(
            f"unsupported sharded envelope version {payload.get('version')!r}"
        )
    saved = int(payload.get("shards", 0))
    if saved != shards:
        raise ValueError(
            f"envelope was written by a --shards {saved} run; "
            f"cannot resume it with --shards {shards}"
        )
    return payload


def dump_checkpoint(checkpoint: CrawlCheckpoint, path: str | Path) -> None:
    """Write a runtime (v3) checkpoint file atomically."""
    atomic_write_json(path, checkpoint.to_payload())


def load_checkpoint(path: str | Path) -> CrawlCheckpoint:
    """Read a runtime checkpoint file (v3, or a legacy v2 document).

    Raises:
        ValueError: malformed or wrong-version file.
    """
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ValueError(f"checkpoint is not valid JSON: {exc}") from exc
    return CrawlCheckpoint.from_payload(payload)
