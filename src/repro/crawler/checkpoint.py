"""Crawl checkpointing.

The paper's crawl ran for weeks against a live service; resumability was
survival.  A :class:`CrawlResult` serialises to a single JSON document and
loads back losslessly, so a crawl can stop after any stage and resume.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.crawler.records import (
    CrawlResult,
    CrawledComment,
    CrawledUrl,
    CrawledUser,
)

__all__ = ["dump_result", "dumps_result", "load_result", "loads_result"]

_FORMAT_VERSION = 1


def dumps_result(result: CrawlResult) -> str:
    """Serialise a crawl result to a JSON string."""
    payload = {
        "version": _FORMAT_VERSION,
        "users": [
            {
                "username": u.username,
                "author_id": u.author_id,
                "display_name": u.display_name,
                "bio": u.bio,
                "commented_url_ids": u.commented_url_ids,
                "language": u.language,
                "permissions": u.permissions,
                "view_filters": u.view_filters,
            }
            for u in result.users.values()
        ],
        "urls": [
            {
                "commenturl_id": u.commenturl_id,
                "url": u.url,
                "title": u.title,
                "description": u.description,
                "upvotes": u.upvotes,
                "downvotes": u.downvotes,
            }
            for u in result.urls.values()
        ],
        "comments": [
            {
                "comment_id": c.comment_id,
                "author_id": c.author_id,
                "commenturl_id": c.commenturl_id,
                "text": c.text,
                "parent_comment_id": c.parent_comment_id,
                "created_at_epoch": c.created_at_epoch,
                "shadow_label": c.shadow_label,
            }
            for c in result.comments.values()
        ],
    }
    return json.dumps(payload)


def loads_result(serialized: str) -> CrawlResult:
    """Load a crawl result from a JSON string.

    Raises:
        ValueError: unknown format version or malformed document.
    """
    payload = json.loads(serialized)
    if payload.get("version") != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported checkpoint version {payload.get('version')!r}"
        )
    result = CrawlResult()
    for entry in payload["users"]:
        user = CrawledUser(
            username=entry["username"],
            author_id=entry["author_id"],
            display_name=entry.get("display_name", ""),
            bio=entry.get("bio", ""),
            commented_url_ids=list(entry.get("commented_url_ids", [])),
            language=entry.get("language"),
            permissions=dict(entry.get("permissions", {})),
            view_filters=dict(entry.get("view_filters", {})),
        )
        result.users[user.username] = user
    for entry in payload["urls"]:
        url = CrawledUrl(
            commenturl_id=entry["commenturl_id"],
            url=entry["url"],
            title=entry.get("title", ""),
            description=entry.get("description", ""),
            upvotes=int(entry.get("upvotes", 0)),
            downvotes=int(entry.get("downvotes", 0)),
        )
        result.urls[url.commenturl_id] = url
    for entry in payload["comments"]:
        comment = CrawledComment(
            comment_id=entry["comment_id"],
            author_id=entry["author_id"],
            commenturl_id=entry["commenturl_id"],
            text=entry["text"],
            parent_comment_id=entry.get("parent_comment_id"),
            created_at_epoch=int(entry.get("created_at_epoch", 0)),
            shadow_label=entry.get("shadow_label"),
        )
        result.comments[comment.comment_id] = comment
    return result


def dump_result(result: CrawlResult, path: str | Path) -> None:
    """Write a checkpoint file."""
    Path(path).write_text(dumps_result(result), encoding="utf-8")


def load_result(path: str | Path) -> CrawlResult:
    """Read a checkpoint file."""
    return loads_result(Path(path).read_text(encoding="utf-8"))
