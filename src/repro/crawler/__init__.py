"""The Dissenter measurement crawler (§3).

This package reproduces the paper's collection methodology end to end,
over the HTTP substrate only — it never touches the world's ground-truth
objects:

1. :mod:`gab_enum` exhaustively enumerates Gab's integer account IDs
   through the JSON API (§3.1).
2. :mod:`dissenter_crawl` probes ``dissenter.com/user/<name>`` for every
   Gab username, detects Dissenter accounts by response size, spiders
   home pages, comment pages and single-comment pages (with the hidden
   ``commentAuthor`` metadata) (§3.1-3.2).
3. :mod:`shadow` re-spiders with authenticated opt-in sessions to uncover
   the NSFW and "offensive" shadow overlay (§3.2).
4. :mod:`youtube_crawl` renders YouTube pages to recover video metadata
   from the JavaScript blob (§3.3).
5. :mod:`social_crawl` walks the paginated Gab follower API at one
   request per second, honouring the rate-limit headers (§3.4).
6. :mod:`reddit_crawl` matches usernames against Reddit and pulls comment
   histories from Pushshift (§4.4.1).
7. :mod:`validation` re-requests failures, cross-checks ID-encoded
   timestamps against crawl observations, and manually verifies a sample
   of shadow comments — the paper's §3.2 validation steps.
"""

from repro.crawler.dissenter_crawl import DissenterCrawler
from repro.crawler.frontier import CrawlFrontier
from repro.crawler.gab_enum import GabEnumerator
from repro.crawler.records import (
    CrawlResult,
    CrawledComment,
    CrawledGabAccount,
    CrawledUrl,
    CrawledUser,
)
from repro.crawler.reddit_crawl import RedditMatcher
from repro.crawler.shadow import ShadowCrawler
from repro.crawler.social_crawl import SocialGraphCrawler
from repro.crawler.validation import CrawlValidator
from repro.crawler.youtube_crawl import YouTubeCrawler

__all__ = [
    "CrawlFrontier",
    "CrawlResult",
    "CrawlValidator",
    "CrawledComment",
    "CrawledGabAccount",
    "CrawledUrl",
    "CrawledUser",
    "DissenterCrawler",
    "GabEnumerator",
    "RedditMatcher",
    "ShadowCrawler",
    "SocialGraphCrawler",
    "YouTubeCrawler",
]
