"""Reddit username matching and Pushshift history pulls (§4.4.1).

The paper queried Reddit for accounts with the same username as each
Dissenter user (56% matched) and then pulled each matched account's full
comment history from Pushshift.  It acknowledges the method's false
positives, citing a prior-work precision lower bound of 0.6 — the
matching here is equally naive by design.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.net.client import HttpClient

__all__ = ["RedditMatchResult", "RedditMatcher"]


@dataclass
class RedditMatchResult:
    """Matched accounts and their comment data."""

    matched_usernames: list[str] = field(default_factory=list)
    comment_counts: dict[str, int] = field(default_factory=dict)
    sample_comments: dict[str, list[str]] = field(default_factory=dict)

    @property
    def total_comments(self) -> int:
        return sum(self.comment_counts.values())

    def commenters(self) -> list[str]:
        """Matched accounts that have posted at least one Reddit comment."""
        return [u for u, n in self.comment_counts.items() if n > 0]


class RedditMatcher:
    """Matches Dissenter usernames on Reddit and pulls Pushshift data."""

    ABOUT = "https://reddit.com/user/{username}/about.json"
    PUSHSHIFT = "https://api.pushshift.io/reddit/search/comment/"

    def __init__(self, client: HttpClient, sample_size: int = 100):
        self._client = client
        self._sample_size = sample_size

    def exists_on_reddit(self, username: str) -> bool:
        """Existence probe against reddit.com."""
        response = self._client.get_or_none(
            self.ABOUT.format(username=username)
        )
        return response is not None and response.status == 200

    def pull_history(self, username: str) -> tuple[int, list[str]]:
        """Total comment count and a text sample from Pushshift."""
        response = self._client.get_or_none(
            self.PUSHSHIFT,
            params={"author": username, "size": self._sample_size},
        )
        if response is None or response.status != 200:
            return 0, []
        payload = response.json()
        total = int(payload.get("metadata", {}).get("total_results", 0))
        texts = [entry["body"] for entry in payload.get("data", [])]
        return total, texts

    def match(self, usernames: Iterable[str]) -> RedditMatchResult:
        """Run the full matching + history pull."""
        result = RedditMatchResult()
        for username in usernames:
            if not self.exists_on_reddit(username):
                continue
            result.matched_usernames.append(username)
            total, texts = self.pull_history(username)
            result.comment_counts[username] = total
            if texts:
                result.sample_comments[username] = texts
        return result
