"""Deterministic CSR graph engine + the hate-diffusion workload.

The million-node replacement for the networkx follow-graph hot paths:
:mod:`repro.graph.csr` holds the adjacency engine, :mod:`repro.graph.
diffusion` the independent-cascade simulation built on top of it.
"""

from repro.graph.csr import (
    CSRGraph,
    csr_from_columns,
    csr_from_edge_list,
    csr_from_follow_records,
)
from repro.graph.diffusion import (
    DiffusionReport,
    DiffusionRun,
    run_diffusion,
    simulate_cascade,
)

__all__ = [
    "CSRGraph",
    "DiffusionReport",
    "DiffusionRun",
    "csr_from_columns",
    "csr_from_edge_list",
    "csr_from_follow_records",
    "run_diffusion",
    "simulate_cascade",
]
