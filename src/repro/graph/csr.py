"""Deterministic CSR adjacency engine for the follow graph (§4.5).

networkx's dict-of-dicts representation caps the social analyses around
10^5 nodes; this module stores the induced Dissenter follow graph as
compressed sparse rows over numpy integer arrays instead, with both the
forward (u follows v) and reverse adjacency materialized so in-degrees
and followers are O(1) slices.

Layout invariants (the determinism contract):

* ``node_ids`` is the sorted, deduplicated int64 array of Gab IDs — the
  same sorted node order the PR 4 lint sweep enforced on the networkx
  build, so degree arrays and tie-broken top-K lines are identical
  whichever engine produced them.
* ``indptr``/``indices`` (and their ``rev_`` mirrors) are int64 offsets
  into an int32 neighbor array; row ``i``'s neighbors are sorted
  ascending and deduplicated, so edge enumeration order is a pure
  function of the edge *set*.
* Builders only ever sort/deduplicate — no hash-order collection ever
  reaches the arrays, so two processes with different PYTHONHASHSEED
  values build byte-identical graphs.

:meth:`CSRGraph.to_networkx` is the escape hatch back to networkx (an
optional ``[nx]`` extra since this engine replaced the hot paths); the
oracle tests use it to prove every vectorized reduction bit-identical
to its networkx ancestor.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable, Iterator, Mapping, Sequence

import numpy as np

if TYPE_CHECKING:   # import cycle: social_crawl builds CSRGraph instances
    from repro.crawler.social_crawl import SocialCrawlResult
    from repro.store import Corpus

__all__ = [
    "CSRGraph",
    "csr_from_columns",
    "csr_from_edge_list",
    "csr_from_follow_records",
]


def _csr_rows(
    n_nodes: int, src: np.ndarray, dst: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Pack (src, dst) index pairs into (indptr, indices) rows.

    The pairs must already be deduplicated; rows come out sorted by
    (src, dst) so neighbor enumeration order is canonical.
    """
    order = np.lexsort((dst, src))
    src = src[order]
    dst = dst[order]
    counts = np.bincount(src, minlength=n_nodes)
    indptr = np.zeros(n_nodes + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return indptr, dst.astype(np.int32, copy=False)


class CSRGraph:
    """A directed graph over sorted Gab IDs in CSR form.

    Build through the module-level ``csr_from_*`` constructors or
    :meth:`from_index_edges`; the raw constructor trusts its arrays.
    """

    __slots__ = ("node_ids", "indptr", "indices", "rev_indptr", "rev_indices")

    def __init__(
        self,
        node_ids: np.ndarray,
        indptr: np.ndarray,
        indices: np.ndarray,
        rev_indptr: np.ndarray,
        rev_indices: np.ndarray,
    ) -> None:
        self.node_ids = node_ids
        self.indptr = indptr
        self.indices = indices
        self.rev_indptr = rev_indptr
        self.rev_indices = rev_indices

    # ------------------------------------------------------------------
    # Construction.
    # ------------------------------------------------------------------

    @classmethod
    def from_index_edges(
        cls, node_ids: np.ndarray, src: np.ndarray, dst: np.ndarray
    ) -> "CSRGraph":
        """Build from edges given as *indices into* sorted ``node_ids``.

        Duplicate edges and self-loop-free input are the caller's
        contract to break — both are normalized here (deduplicated;
        self loops kept, matching ``DiGraph.add_edge`` semantics).
        """
        node_ids = np.asarray(node_ids, dtype=np.int64)
        n = int(node_ids.size)
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        if src.size:
            keys = src * np.int64(n) + dst
            keys = np.unique(keys)
            src = keys // n
            dst = keys % n
        indptr, indices = _csr_rows(n, src, dst)
        rev_indptr, rev_indices = _csr_rows(n, dst, src)
        return cls(node_ids, indptr, indices, rev_indptr, rev_indices)

    # ------------------------------------------------------------------
    # Shape and lookups.
    # ------------------------------------------------------------------

    @property
    def n_nodes(self) -> int:
        return int(self.node_ids.size)

    @property
    def n_edges(self) -> int:
        return int(self.indices.size)

    @property
    def nodes(self) -> list[int]:
        """Node Gab IDs in canonical (sorted) order."""
        return [int(node) for node in self.node_ids]

    @property
    def edges(self) -> Iterator[tuple[int, int]]:
        """(u, v) Gab-ID pairs in canonical (src-row, dst) order."""
        src, dst = self.edge_indices()
        ids = self.node_ids
        return (
            (int(ids[s]), int(ids[d]))
            for s, d in zip(src.tolist(), dst.tolist())
        )

    def __contains__(self, gab_id: object) -> bool:
        if not isinstance(gab_id, (int, np.integer)):
            return False
        return self.index_of(int(gab_id)) is not None

    def index_of(self, gab_id: int) -> int | None:
        """Row index of ``gab_id``, or None if absent."""
        pos = int(np.searchsorted(self.node_ids, gab_id))
        if pos < self.n_nodes and int(self.node_ids[pos]) == gab_id:
            return pos
        return None

    def edge_indices(self) -> tuple[np.ndarray, np.ndarray]:
        """(src, dst) index arrays in canonical row order."""
        out_deg = np.diff(self.indptr)
        src = np.repeat(
            np.arange(self.n_nodes, dtype=np.int64), out_deg
        )
        return src, self.indices.astype(np.int64, copy=False)

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the edge ``u -> v`` exists (Gab-ID space)."""
        ui = self.index_of(u)
        vi = self.index_of(v)
        if ui is None or vi is None:
            return False
        row = self.indices[self.indptr[ui]:self.indptr[ui + 1]]
        pos = int(np.searchsorted(row, vi))
        return pos < row.size and int(row[pos]) == vi

    def out_neighbors(self, index: int) -> np.ndarray:
        """Successor row indices of node ``index`` (sorted)."""
        return self.indices[self.indptr[index]:self.indptr[index + 1]]

    def in_neighbors(self, index: int) -> np.ndarray:
        """Predecessor row indices of node ``index`` (sorted)."""
        return self.rev_indices[
            self.rev_indptr[index]:self.rev_indptr[index + 1]
        ]

    def successors(self, gab_id: int) -> Iterator[int]:
        """Successor Gab IDs in ascending order (networkx-shaped)."""
        index = self.index_of(gab_id)
        if index is None:
            raise KeyError(gab_id)
        for dst in self.out_neighbors(index):
            yield int(self.node_ids[dst])

    def degree(self, gab_id: int) -> int:
        """Total (in + out) degree of ``gab_id`` (networkx-shaped)."""
        index = self.index_of(gab_id)
        if index is None:
            raise KeyError(gab_id)
        out_deg = int(self.indptr[index + 1] - self.indptr[index])
        in_deg = int(self.rev_indptr[index + 1] - self.rev_indptr[index])
        return out_deg + in_deg

    def predecessors(self, gab_id: int) -> Iterator[int]:
        """Predecessor Gab IDs in ascending order (networkx-shaped)."""
        index = self.index_of(gab_id)
        if index is None:
            raise KeyError(gab_id)
        for src in self.in_neighbors(index):
            yield int(self.node_ids[src])

    # ------------------------------------------------------------------
    # Vectorized reductions (§4.5's hot paths).
    # ------------------------------------------------------------------

    def out_degrees(self) -> np.ndarray:
        """Out-degree per node in canonical order (int64)."""
        return np.diff(self.indptr)

    def in_degrees(self) -> np.ndarray:
        """In-degree per node in canonical order (int64)."""
        return np.diff(self.rev_indptr)

    def isolated_count(self) -> int:
        """Nodes with neither in- nor out-edges (§4.5.1 counts them)."""
        return int(((self.in_degrees() == 0) & (self.out_degrees() == 0)).sum())

    def top_k_by_degree(
        self, degrees: np.ndarray, k: int
    ) -> list[tuple[int, int]]:
        """Top-``k`` (gab_id, degree) sorted by (-degree, gab_id).

        The tie-break is total: equal degrees order by ascending Gab ID,
        so the report lines are identical whatever order produced the
        degree array.
        """
        order = np.lexsort((self.node_ids, -degrees))[:k]
        return [
            (int(self.node_ids[i]), int(degrees[i])) for i in order
        ]

    def mutual_edge_mask(self) -> np.ndarray:
        """Boolean mask over canonical edges: edge (u, v) with (v, u).

        Sorted-pair set intersection on the CSR rows.  The reverse
        adjacency enumerates the reversed edge set already sorted by
        (dst, src), so both key arrays are ascending and every
        ``searchsorted`` probe is near its predecessor — sequential
        binary searches instead of cache-thrashing random ones.
        """
        src, dst = self.edge_indices()
        n = np.int64(self.n_nodes)
        if not src.size:
            return np.zeros(0, dtype=bool)
        keys = src * n + dst          # sorted ascending by construction
        rev_src = np.repeat(
            np.arange(self.n_nodes, dtype=np.int64),
            np.diff(self.rev_indptr),
        )
        rkeys = rev_src * n + self.rev_indices  # also sorted ascending
        pos = np.searchsorted(rkeys, keys)
        pos_clipped = np.minimum(pos, rkeys.size - 1)
        return (pos < rkeys.size) & (rkeys[pos_clipped] == keys)

    def mutual_pairs(self) -> tuple[np.ndarray, np.ndarray]:
        """Mutual-follow pairs as (src, dst) index arrays with src < dst.

        Encodes every edge as its unordered key ``min * n + max``; the
        edge set is deduplicated, so a key appears twice iff both
        directions exist.  One ``np.sort`` puts the duplicates adjacent
        — far cheaper at 10^6 nodes than probing each reversed edge
        against the sorted forward keys (random binary searches thrash
        the cache; a radix-ish sort streams).  Output order is ascending
        (src, dst), the same canonical order the mask path produced.
        """
        src, dst = self.edge_indices()
        if not src.size:
            return src, dst
        n = np.int64(self.n_nodes)
        ckeys = np.sort(
            np.minimum(src, dst) * n + np.maximum(src, dst)
        )
        dup = ckeys[:-1][ckeys[:-1] == ckeys[1:]]
        return dup // n, dup % n

    def connected_components(self) -> np.ndarray:
        """Weak-component label per node (edges treated undirected).

        Iterative min-label hooking with pointer jumping — no recursion,
        no per-node python loop.  Labels are the minimum node *index* in
        each component, so the labeling is deterministic.
        """
        n = self.n_nodes
        parent = np.arange(n, dtype=np.int64)
        src, dst = self.edge_indices()
        if not src.size:
            return parent
        while True:
            pu = parent[src]
            pv = parent[dst]
            hooked = pu != pv
            if not bool(hooked.any()):
                return parent
            lo = np.minimum(pu, pv)[hooked]
            hi = np.maximum(pu, pv)[hooked]
            # Hook the larger root under the smaller label...
            np.minimum.at(parent, hi, lo)
            # ...then pointer-jump every chain flat before re-probing.
            while True:
                contracted = parent[parent]
                if np.array_equal(contracted, parent):
                    break
                parent = contracted

    def component_sizes(self) -> list[int]:
        """Connected-component sizes, descending (§4.5.1's shape)."""
        if not self.n_nodes:
            return []
        labels = self.connected_components()
        counts = np.bincount(labels, minlength=self.n_nodes)
        sizes = counts[counts > 0]
        return sorted((int(s) for s in sizes), reverse=True)

    # ------------------------------------------------------------------
    # Derived graphs.
    # ------------------------------------------------------------------

    def subgraph_from_index_edges(
        self, src: np.ndarray, dst: np.ndarray
    ) -> "CSRGraph":
        """The graph induced by the given edges (indices of *this* graph).

        Nodes are exactly the endpoints of the given edges, remapped to
        a fresh sorted Gab-ID universe.
        """
        used = np.unique(np.concatenate([src, dst]))
        sub_ids = self.node_ids[used]
        return CSRGraph.from_index_edges(
            sub_ids,
            np.searchsorted(used, src),
            np.searchsorted(used, dst),
        )

    def to_networkx(self) -> Any:
        """The equivalent ``networkx.DiGraph`` (requires the ``nx`` extra).

        Nodes are inserted in canonical sorted order, edges in canonical
        row order, so every insertion-order-dependent networkx behavior
        matches a graph built the historical way.
        """
        import networkx as nx

        graph = nx.DiGraph()
        graph.add_nodes_from(self.nodes)
        graph.add_edges_from(self.edges)
        return graph


def csr_from_edge_list(
    node_ids: Iterable[int], edges: Iterable[tuple[int, int]]
) -> CSRGraph:
    """Build from Gab-ID nodes and (u, v) Gab-ID edges.

    Edges touching IDs outside ``node_ids`` are dropped (the same
    members-only filter the induced Dissenter graph applies).
    """
    ids = np.unique(np.asarray(list(node_ids), dtype=np.int64))
    pairs = list(edges)
    if not pairs or not ids.size:
        empty = np.zeros(0, dtype=np.int64)
        return CSRGraph.from_index_edges(ids, empty, empty)
    arr = np.asarray(pairs, dtype=np.int64)
    src = np.searchsorted(ids, arr[:, 0])
    dst = np.searchsorted(ids, arr[:, 1])
    src_clipped = np.minimum(src, max(ids.size - 1, 0))
    dst_clipped = np.minimum(dst, max(ids.size - 1, 0))
    member = (
        (src < ids.size) & (ids[src_clipped] == arr[:, 0])
        & (dst < ids.size) & (ids[dst_clipped] == arr[:, 1])
    )
    return CSRGraph.from_index_edges(
        ids, src_clipped[member], dst_clipped[member]
    )


def csr_from_follow_records(
    crawl: "SocialCrawlResult", dissenter_gab_ids: Iterable[int]
) -> CSRGraph:
    """The induced Dissenter follow graph, straight from §3.4's lists.

    Nodes are the given Dissenter Gab IDs (all of them — §4.5.1 counts
    isolated users); an edge ``u -> v`` means u follows v, assembled from
    both the ``followers`` and ``following`` directions with edges
    touching non-Dissenter accounts dropped.  Exactly
    ``induce_dissenter_graph``'s semantics, vectorized.
    """
    ids = np.unique(np.asarray(list(dissenter_gab_ids), dtype=np.int64))
    src_chunks: list[np.ndarray] = []
    dst_chunks: list[np.ndarray] = []
    for target, followers in crawl.followers.items():
        if followers:
            src_chunks.append(np.asarray(followers, dtype=np.int64))
            dst_chunks.append(np.full(len(followers), target, dtype=np.int64))
    for source, targets in crawl.following.items():
        if targets:
            src_chunks.append(np.full(len(targets), source, dtype=np.int64))
            dst_chunks.append(np.asarray(targets, dtype=np.int64))
    if not src_chunks or not ids.size:
        empty = np.zeros(0, dtype=np.int64)
        return CSRGraph.from_index_edges(ids, empty, empty)
    src_ids = np.concatenate(src_chunks)
    dst_ids = np.concatenate(dst_chunks)
    src = np.searchsorted(ids, src_ids)
    dst = np.searchsorted(ids, dst_ids)
    limit = max(ids.size - 1, 0)
    src_clipped = np.minimum(src, limit)
    dst_clipped = np.minimum(dst, limit)
    member = (
        (src < ids.size) & (ids[src_clipped] == src_ids)
        & (dst < ids.size) & (ids[dst_clipped] == dst_ids)
    )
    return CSRGraph.from_index_edges(
        ids, src_clipped[member], dst_clipped[member]
    )


def csr_from_columns(
    corpus: "Corpus",
    gab_ids: Mapping[str, int],
    max_authors_per_url: int = 16,
) -> CSRGraph:
    """A co-comment interaction graph from a sealed store's columns.

    When no §3.4 follow crawl is available, the corpus itself implies an
    interaction graph: within each URL's thread, every later commenter
    gets an edge to each earlier distinct commenter (capped at the first
    ``max_authors_per_url`` distinct authors per thread to bound the
    clique blowup).  Nodes are the Gab IDs of every user in ``gab_ids``
    present in the corpus.

    Dispatches on :func:`~repro.store.columns.columns_of`: the columnar
    path walks the memoised URL group index; legacy corpora fall back to
    the record dicts.  Both produce the same edge set.
    """
    from repro.store.columns import columns_of

    author_to_gab: dict[str, int] = {}
    for user in corpus.users.values():
        gab_id = gab_ids.get(user.username)
        if gab_id is not None:
            author_to_gab[user.author_id] = gab_id
    ids = np.unique(
        np.asarray(sorted(author_to_gab.values()), dtype=np.int64)
    )

    def thread_author_lists() -> Iterator[Sequence[str]]:
        view = columns_of(corpus)
        if view is not None:
            order, offsets = view.url_comment_order()
            authors = view.comments.author
            tables = view.tables
            for ordinal in range(len(offsets) - 1):
                rows = order[offsets[ordinal]:offsets[ordinal + 1]]
                yield [tables.authors.values[a] for a in authors[rows]]
        else:
            by_url = corpus.comments_by_url()
            for cid in corpus.urls:
                yield [c.author_id for c in by_url.get(cid, [])]

    edges: list[tuple[int, int]] = []
    for author_ids in thread_author_lists():
        thread: list[int] = []
        seen: dict[int, None] = {}
        for author_id in author_ids:
            gab_id = author_to_gab.get(author_id)
            if gab_id is None or gab_id in seen:
                continue
            seen[gab_id] = None
            thread.append(gab_id)
            if len(thread) >= max_authors_per_url:
                break
        for later in range(1, len(thread)):
            for earlier in range(later):
                edges.append((thread[later], thread[earlier]))
    return csr_from_edge_list(ids, edges)
