"""Seeded independent-cascade hate-diffusion simulation.

The new workload the CSR engine unlocks, modeled on Mathew et al.'s
"Spread of hate speech in online social media" (PAPERS.md): hateful
content starts at a seed set and spreads along follow edges in discrete
BFS rounds.  When node ``u`` activates, each follower edge ``u -> v``
gets exactly one activation attempt in the following round, succeeding
with probability::

    p(u -> v) = clip(base_p + tox_weight * toxicity[u], 0, 1)

so highly toxic accounts propagate hate further — the toxicity-weighted
cascade Mathew et al. measure on the Gab follower network.

Determinism contract: all randomness comes from one
``np.random.default_rng`` seeded per (run seed, strategy ordinal); each
round's activation attempts are drawn over the frontier's out-edges in
canonical CSR order (frontier sorted ascending, neighbors sorted within
each row), so the whole cascade — and the serialized report — is a pure
function of (graph, toxicity, parameters).  ``DiffusionReport.
to_payload`` emits only lists and scalars, never set order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = [
    "DiffusionReport",
    "DiffusionRun",
    "run_diffusion",
    "simulate_cascade",
]

#: Default per-edge base activation probability.
DEFAULT_BASE_P = 0.05
#: Default weight of the source's median toxicity on the edge probability.
DEFAULT_TOX_WEIGHT = 0.25
#: Default cap on cascade rounds (power-law graphs saturate far earlier).
DEFAULT_MAX_ROUNDS = 20


@dataclass
class DiffusionRun:
    """One cascade: a named seed strategy and its round-by-round spread."""

    strategy: str
    seeds: list[int]                  # Gab IDs, sorted
    rounds: list[int]                 # newly infected per round (round 0 = seeds)
    total_infected: int
    n_nodes: int

    @property
    def reach(self) -> float:
        """Fraction of the graph the cascade infected."""
        return self.total_infected / self.n_nodes if self.n_nodes else 0.0

    def to_payload(self) -> dict:
        return {
            "strategy": self.strategy,
            "seeds": list(self.seeds),
            "rounds": list(self.rounds),
            "total_infected": self.total_infected,
            "n_nodes": self.n_nodes,
            "reach": self.reach,
        }


@dataclass
class DiffusionReport:
    """Cascade results per seed strategy, plus the run parameters."""

    n_nodes: int
    n_edges: int
    base_p: float
    tox_weight: float
    max_rounds: int
    seed: int
    runs: list[DiffusionRun]

    def to_payload(self) -> dict:
        return {
            "n_nodes": self.n_nodes,
            "n_edges": self.n_edges,
            "base_p": self.base_p,
            "tox_weight": self.tox_weight,
            "max_rounds": self.max_rounds,
            "seed": self.seed,
            "runs": [run.to_payload() for run in self.runs],
        }

    def summary_text(self) -> str:
        lines = [
            "hate diffusion (independent cascade)",
            "====================================",
            f"graph: {self.n_nodes} nodes, {self.n_edges} edges",
            f"params: base_p={self.base_p} tox_weight={self.tox_weight} "
            f"max_rounds={self.max_rounds} seed={self.seed}",
        ]
        for run in self.runs:
            peak = max(run.rounds[1:], default=0)
            lines.append(
                f"{run.strategy:<16s} seeds={len(run.seeds):<4d} "
                f"infected={run.total_infected:<6d} "
                f"reach={run.reach:6.2%} rounds={len(run.rounds) - 1} "
                f"peak_round={peak}"
            )
        return "\n".join(lines)


def _toxicity_array(
    graph: CSRGraph, toxicity: Mapping[int, float]
) -> np.ndarray:
    """Per-node toxicity in canonical order (0.0 where unmeasured)."""
    values = np.zeros(graph.n_nodes, dtype=np.float64)
    for index, gab_id in enumerate(graph.node_ids):
        value = toxicity.get(int(gab_id))
        if value is not None:
            values[index] = value
    return values


def simulate_cascade(
    graph: CSRGraph,
    toxicity_by_index: np.ndarray,
    seed_indices: np.ndarray,
    rng: np.random.Generator,
    base_p: float = DEFAULT_BASE_P,
    tox_weight: float = DEFAULT_TOX_WEIGHT,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
) -> tuple[list[int], np.ndarray]:
    """One independent cascade; returns (per-round counts, active mask).

    Frontier-based BFS: each round gathers the frontier's out-edges as
    one vectorized slice (sources repeated by out-degree), drops edges
    into already-active nodes, draws one uniform per remaining edge in
    canonical order, and the distinct successful targets become the next
    frontier.  A node is attempted from each in-edge at most once
    because sources leave the frontier after one round and targets leave
    the candidate set once active.
    """
    active = np.zeros(graph.n_nodes, dtype=bool)
    frontier = np.unique(seed_indices.astype(np.int64, copy=False))
    active[frontier] = True
    per_round = [int(frontier.size)]
    for _ in range(max_rounds):
        if not frontier.size:
            break
        starts = graph.indptr[frontier]
        counts = graph.indptr[frontier + 1] - starts
        total = int(counts.sum())
        if not total:
            break
        # Gather every frontier out-edge in one shot: each edge's slot in
        # the row is its global position minus its row's running offset.
        base = np.repeat(starts, counts)
        within = np.arange(total, dtype=np.int64) - np.repeat(
            np.cumsum(counts) - counts, counts
        )
        targets = graph.indices[base + within].astype(np.int64, copy=False)
        sources = np.repeat(frontier, counts)
        live = ~active[targets]
        targets = targets[live]
        sources = sources[live]
        if not targets.size:
            break
        probs = np.clip(
            base_p + tox_weight * toxicity_by_index[sources], 0.0, 1.0
        )
        draws = rng.random(targets.size)
        infected = np.unique(targets[draws < probs])
        if not infected.size:
            break
        active[infected] = True
        frontier = infected
        per_round.append(int(infected.size))
    return per_round, active


def run_diffusion(
    graph: CSRGraph,
    toxicity: Mapping[int, float],
    core_members: Iterable[int] = (),
    n_seeds: int = 10,
    base_p: float = DEFAULT_BASE_P,
    tox_weight: float = DEFAULT_TOX_WEIGHT,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
    seed: int = 0,
) -> DiffusionReport:
    """Cascades from three seed strategies, reported side by side.

    * ``hateful_core`` — the §4.5.1 core members present in the graph
      (the empirically hateful accounts; omitted when none are given).
    * ``top_out_degree`` — the ``n_seeds`` most-followed-by accounts
      (ties broken by ascending Gab ID).
    * ``random`` — ``n_seeds`` uniform nodes from the seeded generator.

    Each strategy draws from ``default_rng([seed, STRATEGY_STREAM])``
    with a fixed per-strategy stream constant, so the presence or
    absence of one strategy never perturbs the others' cascades.
    """
    tox_by_index = _toxicity_array(graph, toxicity)
    strategies: list[tuple[str, int, np.ndarray]] = []

    core_indices = sorted(
        index
        for index in (graph.index_of(int(m)) for m in core_members)
        if index is not None
    )
    if core_indices:
        strategies.append(
            ("hateful_core", 1, np.asarray(core_indices, dtype=np.int64))
        )

    k = min(n_seeds, graph.n_nodes)
    if k:
        top = np.lexsort((graph.node_ids, -graph.out_degrees()))[:k]
        strategies.append(
            ("top_out_degree", 2, np.sort(top.astype(np.int64, copy=False)))
        )
        pick_rng = np.random.default_rng([seed, 4])
        random_seeds = np.sort(
            pick_rng.choice(graph.n_nodes, size=k, replace=False)
        ).astype(np.int64)
        strategies.append(("random", 3, random_seeds))

    runs: list[DiffusionRun] = []
    for strategy, stream, seeds in strategies:
        rng = np.random.default_rng([seed, stream])
        per_round, active = simulate_cascade(
            graph,
            tox_by_index,
            seeds,
            rng,
            base_p=base_p,
            tox_weight=tox_weight,
            max_rounds=max_rounds,
        )
        runs.append(DiffusionRun(
            strategy=strategy,
            seeds=[int(graph.node_ids[i]) for i in seeds],
            rounds=per_round,
            total_infected=int(active.sum()),
            n_nodes=graph.n_nodes,
        ))
    return DiffusionReport(
        n_nodes=graph.n_nodes,
        n_edges=graph.n_edges,
        base_p=base_p,
        tox_weight=tox_weight,
        max_rounds=max_rounds,
        seed=seed,
        runs=runs,
    )
