"""Perspective attribute scoring models.

Each model inverts the platform text generator's emission code book
(:class:`repro.platform.textgen.EmissionModel`): vocabulary-class rates are
unbiased estimators of the latent attributes, combined with surface
signals (caps ratio, exclamation bursts, ad-hominem phrases).  A small
deterministic jitter derived from the text hash stands in for model
uncertainty, so scoring is a pure function — same text, same score, like
the real API.

Attribute names match the paper: SEVERE_TOXICITY, OBSCENE,
LIKELY_TO_REJECT, ATTACK_ON_AUTHOR.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Iterable

from repro.perspective.lexicon import CommentFeatures, extract_features

__all__ = [
    "ATTRIBUTES",
    "AttributeScorer",
    "PerspectiveModels",
    "score_comment",
]

ATTRIBUTES: tuple[str, ...] = (
    "SEVERE_TOXICITY",
    "OBSCENE",
    "LIKELY_TO_REJECT",
    "ATTACK_ON_AUTHOR",
)

# Inverse-emission constants (see EmissionModel in platform.textgen).
_OFFENSIVE_BASE, _OFFENSIVE_GAIN = 0.01, 0.50
_OBSCENE_BASE, _OBSCENE_GAIN = 0.005, 0.35
_HATE_THRESHOLD, _HATE_GAIN = 0.35, 0.55
_RUDE_GAIN = 0.40
_CAPS_GAIN = 0.45


def _clip01(value: float) -> float:
    return min(1.0, max(0.0, value))


def _jitter(text: str, salt: str, width: float = 0.08) -> float:
    """Deterministic pseudo-noise in [-width/2, +width/2]."""
    digest = hashlib.blake2b(
        (salt + "\x1f" + text).encode("utf-8"), digest_size=8
    ).digest()
    u = int.from_bytes(digest, "big") / 2**64
    return (u - 0.5) * width


def _saturation_multiplier(f: CommentFeatures) -> float:
    """Undo the generator's probability normalisation for extreme comments.

    The emission model turns per-class rates into a categorical
    distribution; when the latent rates sum past ~0.95 the benign floor
    (0.05) kicks in and every class's observed share is deflated by
    ``R + 0.05``.  The observed union share S then satisfies
    ``S = R / (R + 0.05)``, so R is recoverable and the deflation can be
    inverted.  Below the saturation region shares equal rates and no
    correction applies.
    """
    s = min(f.union_rate, 0.975)
    if s <= 0.90:
        return 1.0
    implied_total = 0.05 * s / (1.0 - s)
    return max(1.0, min(2.2, implied_total + 0.05))


def _estimate_obscene(f: CommentFeatures) -> float:
    m = _saturation_multiplier(f)
    est_from_offensive = _clip01(
        (m * f.offensive_rate - _OFFENSIVE_BASE) / _OFFENSIVE_GAIN
    )
    est_from_obscene = _clip01(
        (m * f.obscene_rate - _OBSCENE_BASE) / _OBSCENE_GAIN
    )
    return max(est_from_offensive, 0.9 * est_from_obscene)


def _estimate_toxicity(f: CommentFeatures) -> float:
    if f.hate_rate > 0:
        from_hate = _HATE_THRESHOLD + _saturation_multiplier(f) * f.hate_rate * (
            (1.0 - _HATE_THRESHOLD) / _HATE_GAIN
        )
    else:
        from_hate = 0.0
    from_caps = _clip01(f.caps / _CAPS_GAIN) * 0.55
    from_obscene = 0.45 * _estimate_obscene(f)
    raw = max(from_hate, from_caps, from_obscene)
    # Calibration stretch: token-rate estimates regress extreme comments
    # toward the middle (a 16-token sample underestimates a 40% hate-token
    # rate about half the time), so the upper half of the scale is
    # expanded to undo the shrinkage.
    if raw > 0.5:
        raw = 0.5 + (raw - 0.5) * 1.6
    return _clip01(raw)


def _estimate_reject(f: CommentFeatures) -> float:
    # Vocabulary evidence alone cannot certify the extreme (> 0.95) band;
    # only the graded bang channel reaches it.  This mirrors how the real
    # LIKELY_TO_REJECT model saturates: moderators reject rude comments at
    # high but not certain rates, while unambiguous markers max the score.
    from_rude = min(
        0.93, _clip01(_saturation_multiplier(f) * f.rude_rate / _RUDE_GAIN)
    )
    from_tox = min(0.94, 0.95 * _estimate_toxicity(f) + 0.05)
    from_obscene = 0.7 * _estimate_obscene(f)
    estimate = max(from_rude, from_tox, from_obscene)
    if f.bang_run >= 3:
        # The generator appends a bang run only above 0.75 latent reject,
        # with run length growing linearly in (reject - 0.75).
        graded = 0.74 + 0.25 * min(1.0, (f.bang_run - 3) / 7.0)
        estimate = max(estimate, graded)
    return _clip01(estimate)


def _estimate_attack(f: CommentFeatures) -> float:
    if f.has_attack_phrase:
        return _clip01(0.62 + 0.5 * f.offensive_rate + 0.3 * f.caps)
    background = (
        0.30 * _clip01(f.rude_rate / _RUDE_GAIN)
        + 0.22 * _estimate_obscene(f)
        + 0.10 * f.caps
    )
    return _clip01(background)


AttributeScorer = Callable[[CommentFeatures], float]

_SCORERS: dict[str, AttributeScorer] = {
    "SEVERE_TOXICITY": _estimate_toxicity,
    "OBSCENE": _estimate_obscene,
    "LIKELY_TO_REJECT": _estimate_reject,
    "ATTACK_ON_AUTHOR": _estimate_attack,
}


def score_comment(
    text: str, attributes: Iterable[str] = ATTRIBUTES
) -> dict[str, float]:
    """Score one comment on the requested attributes.

    Raises:
        KeyError: unknown attribute name.
    """
    features = extract_features(text)
    scores: dict[str, float] = {}
    for attribute in attributes:
        scorer = _SCORERS[attribute]
        raw = scorer(features)
        scores[attribute] = _clip01(raw + _jitter(text, attribute))
    return scores


class PerspectiveModels:
    """Batch scoring facade with a tiny cache.

    The cache matters because the crawler and several analyses score
    overlapping comment sets; the real API would bill each call.
    """

    def __init__(self, cache_size: int = 100_000):
        self._cache: dict[str, dict[str, float]] = {}
        self._cache_size = cache_size
        self.calls = 0

    def score(self, text: str) -> dict[str, float]:
        """All-attribute scores for one comment (cached)."""
        cached = self._cache.get(text)
        if cached is not None:
            return dict(cached)
        self.calls += 1
        scores = score_comment(text)
        if len(self._cache) < self._cache_size:
            self._cache[text] = scores
        return dict(scores)

    def score_many(
        self, texts: Iterable[str]
    ) -> list[dict[str, float]]:
        """Scores for a batch of comments, in input order.

        The batch is deduplicated first, so each unique text is scored
        at most once even when the cache is cold or full; every returned
        row is an independent dict.
        """
        computed: dict[str, dict[str, float]] = {}
        rows: list[dict[str, float]] = []
        for text in texts:
            scores = computed.get(text)
            if scores is None:
                scores = self.score(text)
                computed[text] = scores
                rows.append(scores)
            else:
                rows.append(dict(scores))
        return rows

    def attribute_values(
        self, texts: Iterable[str], attribute: str
    ) -> list[float]:
        """One attribute's scores over a batch."""
        if attribute not in _SCORERS:
            raise KeyError(f"unknown Perspective attribute {attribute!r}")
        return [self.score(text)[attribute] for text in texts]
