"""The Perspective API as an HTTP origin.

The paper called a network service; for full fidelity this module exposes
the local models behind the real API's wire shape —
``POST /v1alpha1/comments:analyze`` with the AnalyzeComment JSON request
and response bodies — plus a client that speaks it over the loopback
transport.  Quota exhaustion surfaces as HTTP 429 with a Retry-After
header, which the substrate's client machinery already knows how to wait
out.
"""

from __future__ import annotations

import json
from typing import Iterable

from repro.net.client import HttpClient
from repro.net.http import Request, Response
from repro.net.router import App
from repro.perspective.models import ATTRIBUTES, PerspectiveModels

__all__ = ["HttpPerspectiveClient", "PerspectiveHttpApp"]

API_HOST = "perspectiveapi.invalid"
ANALYZE_PATH = "/v1alpha1/comments:analyze"


class PerspectiveHttpApp(App):
    """Origin serving the AnalyzeComment endpoint.

    Args:
        models: shared scoring models.
        daily_quota: requests allowed per 86,400 simulated seconds
            (None = unlimited).
        clock: time source for quota windows (only needed with a quota).
    """

    def __init__(
        self,
        models: PerspectiveModels | None = None,
        daily_quota: int | None = None,
        clock=None,
    ):
        super().__init__(API_HOST)
        self._models = models or PerspectiveModels()
        self._quota = daily_quota
        self._clock = clock
        self._window_start = clock.now() if clock is not None else 0.0
        self._used = 0
        self.add_route("POST", ANALYZE_PATH, self._analyze)

    def _quota_exceeded(self) -> Response | None:
        if self._quota is None:
            return None
        if self._clock is not None:
            now = self._clock.now()
            if now - self._window_start >= 86_400:
                self._window_start = now
                self._used = 0
        if self._used >= self._quota:
            response = Response.json_response(
                {"error": {"code": 429, "status": "RESOURCE_EXHAUSTED"}},
                status=429,
            )
            if self._clock is not None:
                remaining = 86_400 - (self._clock.now() - self._window_start)
                response.headers.set("Retry-After", f"{max(1, remaining):.0f}")
            return response
        self._used += 1
        return None

    def _analyze(self, request: Request, params: dict[str, str]) -> Response:
        throttled = self._quota_exceeded()
        if throttled is not None:
            return throttled
        try:
            payload = json.loads(request.body.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError):
            return Response.json_response(
                {"error": {"code": 400, "message": "invalid JSON"}}, status=400
            )
        text = payload.get("comment", {}).get("text")
        requested = payload.get("requestedAttributes", {})
        if text is None or not requested:
            return Response.json_response(
                {"error": {"code": 400, "message": "comment.text and "
                           "requestedAttributes are required"}},
                status=400,
            )
        unknown = [name for name in requested if name not in ATTRIBUTES]
        if unknown:
            return Response.json_response(
                {"error": {"code": 400,
                           "message": f"unknown attributes {unknown}"}},
                status=400,
            )
        scores = self._models.score(text)
        return Response.json_response({
            "attributeScores": {
                name: {
                    "summaryScore": {"value": scores[name], "type": "PROBABILITY"}
                }
                for name in requested
            },
            "languages": ["en"],
        })


class HttpPerspectiveClient:
    """AnalyzeComment client over the HTTP substrate.

    Functionally interchangeable with
    :class:`repro.perspective.api.PerspectiveClient`, but every score
    crosses the (simulated) wire.
    """

    def __init__(self, client: HttpClient, host: str = API_HOST):
        self._client = client
        self._url = f"https://{host}{ANALYZE_PATH}"
        self.requests_made = 0

    def analyze(
        self, text: str, attributes: Iterable[str] = ATTRIBUTES
    ) -> dict[str, float]:
        """Score one comment; returns {attribute: summary score}.

        Raises:
            ValueError: the API rejected the request (HTTP 4xx).
        """
        body = json.dumps({
            "comment": {"text": text},
            "requestedAttributes": {name: {} for name in attributes},
        }).encode("utf-8")
        self.requests_made += 1
        response = self._client.post(
            self._url, body=body,
            headers={"Content-Type": "application/json"},
        )
        if response.status == 400:
            raise ValueError(response.json()["error"]["message"])
        response.raise_for_status()
        payload = response.json()
        return {
            name: entry["summaryScore"]["value"]
            for name, entry in payload["attributeScores"].items()
        }

    def analyze_batch(
        self, texts: Iterable[str], attributes: Iterable[str] = ATTRIBUTES
    ) -> list[dict[str, float]]:
        """Score a batch (one request per comment, like the real API)."""
        requested = tuple(attributes)
        return [self.analyze(text, requested) for text in texts]
