"""API-shaped client for the Perspective models.

Mirrors the real AnalyzeComment contract closely enough that analysis code
reads like it would against Google's endpoint: requests carry a comment
and a set of requested attributes, responses carry per-attribute summary
scores, and a daily quota is enforced (the real API meters queries per
second and per day; the paper scored 1.68M comments through it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.perspective.models import ATTRIBUTES, PerspectiveModels

__all__ = ["AnalyzeRequest", "AnalyzeResponse", "PerspectiveClient", "QuotaExceeded"]


class QuotaExceeded(Exception):
    """The client's configured quota has been exhausted."""

    def __init__(self, quota: int):
        super().__init__(f"Perspective quota of {quota} requests exhausted")
        self.quota = quota


@dataclass(frozen=True)
class AnalyzeRequest:
    """One comment-analysis request."""

    text: str
    requested_attributes: tuple[str, ...] = ATTRIBUTES

    def __post_init__(self) -> None:
        unknown = set(self.requested_attributes) - set(ATTRIBUTES)
        if unknown:
            raise ValueError(f"unknown attributes: {sorted(unknown)}")


@dataclass(frozen=True)
class AnalyzeResponse:
    """Per-attribute summary scores for one comment."""

    attribute_scores: dict[str, float] = field(default_factory=dict)

    def score(self, attribute: str) -> float:
        return self.attribute_scores[attribute]


class PerspectiveClient:
    """Quota-accounted client over the local models.

    Args:
        quota: maximum number of analyze calls (None = unlimited).
        models: shared model instance; a new one is created when omitted.
    """

    def __init__(
        self,
        quota: int | None = None,
        models: PerspectiveModels | None = None,
    ):
        self._models = models or PerspectiveModels()
        self._quota = quota
        self.requests_made = 0

    @property
    def remaining_quota(self) -> int | None:
        if self._quota is None:
            return None
        return max(0, self._quota - self.requests_made)

    def analyze(self, request: AnalyzeRequest) -> AnalyzeResponse:
        """Score one comment.

        Raises:
            QuotaExceeded: the configured quota is spent.
        """
        if self._quota is not None and self.requests_made >= self._quota:
            raise QuotaExceeded(self._quota)
        self.requests_made += 1
        all_scores = self._models.score(request.text)
        return AnalyzeResponse(
            attribute_scores={
                name: all_scores[name] for name in request.requested_attributes
            }
        )

    def analyze_batch(
        self, texts: Sequence[str], attributes: Iterable[str] = ATTRIBUTES
    ) -> list[AnalyzeResponse]:
        """Score a batch of comments in request order."""
        requested = tuple(attributes)
        return [
            self.analyze(AnalyzeRequest(text=text, requested_attributes=requested))
            for text in texts
        ]

    def scores_for(
        self, texts: Sequence[str], attribute: str
    ) -> list[float]:
        """Convenience: one attribute over a batch."""
        return [
            response.score(attribute)
            for response in self.analyze_batch(texts, (attribute,))
        ]
