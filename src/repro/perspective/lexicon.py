"""Feature extraction for the Perspective models.

Tokenises a comment and measures the rate of each vocabulary class the
platform's text generator emits, plus surface features (caps ratio,
exclamation bursts, attack-phrase presence).  Lookup is by stemmed token
against stemmed vocabulary sets, mirroring the dictionary scorer.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.nlp.dictionary import AMBIGUOUS_TERMS, SUBSTRING_TRAP_TERM
from repro.nlp.lexicons import (
    ATTACK_PHRASES,
    OBSCENE_VOCAB,
    OFFENSIVE_VOCAB,
    RUDE_VOCAB,
    hate_vocab,
)
from repro.nlp.stem import PorterStemmer
from repro.nlp.tokenize import caps_ratio, tokenize

__all__ = ["CommentFeatures", "extract_features"]

_STEMMER = PorterStemmer()


@lru_cache(maxsize=1)
def _stemmed_sets() -> dict[str, frozenset[str]]:
    def stems(words) -> frozenset[str]:
        return frozenset(
            s for s in (_STEMMER.stem(w.lower()) for w in words) if len(s) >= 3
        )

    # Unlike the dictionary scorer, the Perspective models are
    # context-aware in the real world: everyday ambiguous words ("queen",
    # "pig") and substring traps do not trigger them, so they are dropped
    # from the hate set here.  This is what preserves the paper's
    # dictionary-vs-Perspective disagreement structure (§3.5.1).
    unambiguous_hate = [
        term for term in hate_vocab()
        if term not in AMBIGUOUS_TERMS and term != SUBSTRING_TRAP_TERM
    ]
    return {
        "offensive": stems(OFFENSIVE_VOCAB),
        "obscene": stems(OBSCENE_VOCAB),
        "rude": stems(RUDE_VOCAB),
        "hate": stems(unambiguous_hate),
    }


@dataclass(frozen=True)
class CommentFeatures:
    """Lexical features of one comment."""

    n_tokens: int
    offensive_rate: float
    obscene_rate: float
    rude_rate: float
    hate_rate: float
    union_rate: float          # tokens matching ANY non-benign class
    caps: float
    has_attack_phrase: bool
    bang_run: int              # longest run of consecutive '!'

    @property
    def exclamation_burst(self) -> bool:
        return self.bang_run >= 3

    @property
    def any_signal(self) -> bool:
        return (
            self.offensive_rate > 0
            or self.obscene_rate > 0
            or self.rude_rate > 0
            or self.hate_rate > 0
            or self.has_attack_phrase
        )


def _longest_bang_run(text: str) -> int:
    longest = run = 0
    for ch in text:
        run = run + 1 if ch == "!" else 0
        longest = max(longest, run)
    return longest


def extract_features(text: str) -> CommentFeatures:
    """Compute :class:`CommentFeatures` for a comment."""
    sets = _stemmed_sets()
    tokens = tokenize(text)
    n = len(tokens)
    counts = {name: 0 for name in sets}
    union = 0
    for token in tokens:
        stemmed = _STEMMER.stem(token)
        matched_any = False
        for name, vocab in sets.items():
            if stemmed in vocab or token in vocab:
                counts[name] += 1
                matched_any = True
        if matched_any:
            union += 1
    lowered = text.lower()
    return CommentFeatures(
        n_tokens=n,
        offensive_rate=counts["offensive"] / n if n else 0.0,
        obscene_rate=counts["obscene"] / n if n else 0.0,
        rude_rate=counts["rude"] / n if n else 0.0,
        hate_rate=counts["hate"] / n if n else 0.0,
        union_rate=union / n if n else 0.0,
        caps=caps_ratio(text),
        has_attack_phrase=any(p in lowered for p in ATTACK_PHRASES),
        bang_run=_longest_bang_run(text),
    )
