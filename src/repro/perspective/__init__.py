"""Simulated Google Perspective API (§3.5.2).

The real Perspective API is a closed network service; this package provides
a local equivalent with the same contract: text in, per-attribute scores in
[0, 1] out, behind a client that batches requests and accounts for quota.

The scoring models are pure functions of the text (deterministic, like the
real API): they extract lexical features — rates of the offensive, obscene,
rude, and hate vocabulary classes the platform text generator emits, caps
ratio, attack-phrase presence — and invert the generator's emission model
to estimate the latent attribute vector.  The paper treats Perspective as
an opaque black-box scorer and analyses score *distributions*; our models
play the same role with a realistic amount of recovery noise.
"""

from repro.perspective.api import (
    AnalyzeRequest,
    AnalyzeResponse,
    PerspectiveClient,
    QuotaExceeded,
)
from repro.perspective.models import (
    ATTRIBUTES,
    AttributeScorer,
    PerspectiveModels,
    score_comment,
)

__all__ = [
    "ATTRIBUTES",
    "AnalyzeRequest",
    "AnalyzeResponse",
    "AttributeScorer",
    "PerspectiveClient",
    "PerspectiveModels",
    "QuotaExceeded",
    "score_comment",
]
