"""URL vote scores vs comment toxicity (§4.3.2, Figure 5).

For every crawled URL, the net vote score (up minus down) is paired with
the mean and median SEVERE_TOXICITY of its comments.  The paper finds the
highest toxicity concentrated at net-zero URLs, decaying as |net| grows,
with negative-net URLs slightly more toxic than positive ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.scoring import ScoreStore
from repro.store import Corpus, columns_of

__all__ = ["VoteToxicity", "analyze_votes"]


@dataclass
class VoteToxicity:
    """Figure 5's per-URL points plus bucketed aggregates."""

    net_scores: np.ndarray           # per URL
    mean_toxicity: np.ndarray        # per URL
    median_toxicity: np.ndarray      # per URL
    positive_urls: int = 0
    negative_urls: int = 0
    zero_urls: int = 0
    in_band_fraction: float = 0.0    # |net| < 10

    bucket_means: dict[int, float] = field(default_factory=dict)
    bucket_medians: dict[int, float] = field(default_factory=dict)

    def mean_at(self, net: int) -> float | None:
        return self.bucket_means.get(net)

    def aggregate_mean(self, nets: list[int]) -> float:
        values = [self.bucket_means[n] for n in nets if n in self.bucket_means]
        return float(np.mean(values)) if values else float("nan")


def analyze_votes(
    result: Corpus,
    store: ScoreStore | None = None,
    max_comments_per_url: int = 50,
) -> VoteToxicity:
    """Pair every URL's net vote score with its comment toxicity."""
    store = store or ScoreStore()
    view = columns_of(result)
    if view is not None:
        nets, means, medians = _url_toxicity_columnar(
            view, store, max_comments_per_url
        )
    else:
        nets, means, medians = _url_toxicity_dicts(
            result, store, max_comments_per_url
        )
    return _bucketize(
        np.asarray(nets), np.asarray(means), np.asarray(medians)
    )


def _url_toxicity_dicts(
    result: Corpus, store: ScoreStore, max_comments_per_url: int
) -> tuple[list[int], list[float], list[float]]:
    by_url = result.comments_by_url()
    nets: list[int] = []
    means: list[float] = []
    medians: list[float] = []
    for record in result.urls.values():
        comments = by_url.get(record.commenturl_id, [])
        if not comments:
            continue
        scores = store.attribute_values(
            [c.text for c in comments[:max_comments_per_url]],
            "SEVERE_TOXICITY",
        )
        nets.append(record.net_votes)
        means.append(float(scores.mean()))
        medians.append(float(np.median(scores)))
    return nets, means, medians


def _url_toxicity_columnar(
    view, store: ScoreStore, max_comments_per_url: int
) -> tuple[list[int], list[float], list[float]]:
    scores = view.attribute_scores(store, "SEVERE_TOXICITY")
    order, offsets = view.url_comment_order()
    urls = view.urls
    nets: list[int] = []
    means: list[float] = []
    medians: list[float] = []
    for url_ordinal, net in zip(urls.key.tolist(), urls.net.tolist()):
        start, end = offsets[url_ordinal], offsets[url_ordinal + 1]
        if start == end:
            continue
        rows = order[start:min(end, start + max_comments_per_url)]
        group = scores[rows]
        nets.append(net)
        means.append(float(group.mean()))
        medians.append(float(np.median(group)))
    return nets, means, medians


def _bucketize(
    nets_arr: np.ndarray, means_arr: np.ndarray, medians_arr: np.ndarray
) -> VoteToxicity:
    analysis = VoteToxicity(
        net_scores=nets_arr,
        mean_toxicity=means_arr,
        median_toxicity=medians_arr,
        positive_urls=int((nets_arr > 0).sum()),
        negative_urls=int((nets_arr < 0).sum()),
        zero_urls=int((nets_arr == 0).sum()),
        in_band_fraction=(
            float((np.abs(nets_arr) < 10).mean()) if nets_arr.size else 0.0
        ),
    )
    for net in np.unique(nets_arr):
        mask = nets_arr == net
        analysis.bucket_means[int(net)] = float(means_arr[mask].mean())
        analysis.bucket_medians[int(net)] = float(
            np.median(medians_arr[mask])
        )
    return analysis
