"""Comment-thread structure analysis (§3.2's observations).

The paper notes two structural facts about Dissenter threads: replies
nest without practical depth limit ("a reply to a reply to a reply is
valid"), and comment length is unbounded (the longest comment found was
>90k characters — "ha" repeated 45k times).  This module measures both
over a crawled corpus: the reply-depth distribution, thread fan-out, and
the comment-length tail.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.store import Corpus

__all__ = ["ThreadStructure", "analyze_threads"]


@dataclass
class ThreadStructure:
    """Structural statistics of the comment forest."""

    total_comments: int
    reply_count: int
    max_depth: int
    depth_histogram: dict[int, int] = field(default_factory=dict)
    max_comment_length: int = 0
    longest_comment_prefix: str = ""
    mean_thread_size: float = 0.0
    max_thread_size: int = 0
    orphan_replies: int = 0     # replies whose parent was never crawled

    @property
    def reply_fraction(self) -> float:
        return self.reply_count / self.total_comments if self.total_comments else 0.0


def analyze_threads(result: Corpus) -> ThreadStructure:
    """Measure thread structure over the crawled corpus.

    Depth is computed iteratively with memoisation (threads can nest
    arbitrarily deep, so no recursion).
    """
    comments = result.comments
    depth_cache: dict[str, int] = {}
    orphans = 0

    def depth_of(comment_id: str) -> int:
        # Walk up to a known ancestor, then unwind.
        chain: list[str] = []
        current = comment_id
        while current not in depth_cache:
            comment = comments.get(current)
            if comment is None:
                # Parent missing from the crawl (e.g. a hidden parent seen
                # only through its visible reply).
                depth_cache[current] = 0
                break
            parent = comment.parent_comment_id
            chain.append(current)
            if parent is None:
                depth_cache[current] = 0
                chain.pop()
                break
            current = parent
        while chain:
            node = chain.pop()
            parent = comments[node].parent_comment_id
            depth_cache[node] = depth_cache[parent] + 1 if parent else 0
        return depth_cache[comment_id]

    histogram: dict[int, int] = {}
    reply_count = 0
    max_depth = 0
    longest = ("", 0)
    for comment_id, comment in comments.items():
        if comment.is_reply:
            reply_count += 1
            if comment.parent_comment_id not in comments:
                orphans += 1
        d = depth_of(comment_id)
        histogram[d] = histogram.get(d, 0) + 1
        max_depth = max(max_depth, d)
        if len(comment.text) > longest[1]:
            longest = (comment.text, len(comment.text))

    thread_sizes = [len(v) for v in result.comments_by_url().values()]
    return ThreadStructure(
        total_comments=len(comments),
        reply_count=reply_count,
        max_depth=max_depth,
        depth_histogram=histogram,
        max_comment_length=longest[1],
        longest_comment_prefix=longest[0][:40],
        mean_thread_size=float(np.mean(thread_sizes)) if thread_sizes else 0.0,
        max_thread_size=max(thread_sizes) if thread_sizes else 0,
        orphan_replies=orphans,
    )
