"""Covert-channel analysis of non-web comment anchors (§6, future work).

The paper's conclusions observe that a Dissenter thread can be anchored to
*any* string — ``file://`` paths (leaking the commenter's filesystem),
browser-internal pages (``chrome://startpage/``), or URLs that never
existed at all — "suggesting the possibility for a potential form of
covert channel, a hidden conversation within a hidden conversation".  The
authors leave its investigation to future research; this module implements
it.

A covert-channel *candidate* is a commented anchor that cannot correspond
to public web content:

* non-network schemes (``file://``, ``chrome://``, ...),
* network URLs whose origin was never resolvable during the crawl
  (distinguishable here because the crawler knows which hosts answered).

Candidates are then scored on conversation-shape heuristics: covert use
implies a small closed set of participants talking *to each other* (high
reply fraction, few distinct authors) rather than broadcast commentary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from urllib.parse import urlsplit

from repro.store import Corpus

__all__ = ["CovertAnchor", "CovertChannelAnalysis", "find_covert_channels"]

NETWORK_SCHEMES = frozenset({"http", "https"})


@dataclass(frozen=True)
class CovertAnchor:
    """One suspicious comment anchor."""

    commenturl_id: str
    url: str
    scheme: str
    reason: str                 # non-network-scheme | unresolvable-host
    n_comments: int
    n_authors: int
    reply_fraction: float

    @property
    def closed_conversation(self) -> bool:
        """Few participants and reply-heavy: the covert-use signature."""
        return self.n_authors <= 3 and self.reply_fraction >= 0.5


@dataclass
class CovertChannelAnalysis:
    """All covert-channel candidates in a crawl."""

    anchors: list[CovertAnchor] = field(default_factory=list)
    total_urls: int = 0

    @property
    def candidate_count(self) -> int:
        return len(self.anchors)

    @property
    def candidate_fraction(self) -> float:
        return self.candidate_count / self.total_urls if self.total_urls else 0.0

    def by_reason(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for anchor in self.anchors:
            counts[anchor.reason] = counts.get(anchor.reason, 0) + 1
        return counts

    def closed_conversations(self) -> list[CovertAnchor]:
        return [a for a in self.anchors if a.closed_conversation]


def find_covert_channels(
    result: Corpus,
    resolvable_hosts: set[str] | None = None,
) -> CovertChannelAnalysis:
    """Scan a crawled corpus for covert-channel candidate anchors.

    Args:
        result: the crawl corpus.
        resolvable_hosts: hosts known to answer HTTP during the crawl;
            when provided, network URLs on unknown hosts are flagged as
            ``unresolvable-host`` candidates (fictitious URLs).  When
            None, only non-network schemes are flagged — the conservative
            setting, since the paper notes dead and fictitious URLs are
            hard to tell apart.
    """
    analysis = CovertChannelAnalysis(total_urls=len(result.urls))
    by_url = result.comments_by_url()

    for record in result.urls.values():
        scheme = record.url.split(":", 1)[0].lower() if ":" in record.url else ""
        reason: str | None = None
        if scheme not in NETWORK_SCHEMES:
            reason = "non-network-scheme"
        elif resolvable_hosts is not None:
            host = urlsplit(record.url).netloc.lower()
            if host and host not in resolvable_hosts:
                reason = "unresolvable-host"
        if reason is None:
            continue

        comments = by_url.get(record.commenturl_id, [])
        authors = {c.author_id for c in comments}
        replies = sum(1 for c in comments if c.is_reply)
        analysis.anchors.append(CovertAnchor(
            commenturl_id=record.commenturl_id,
            url=record.url,
            scheme=scheme,
            reason=reason,
            n_comments=len(comments),
            n_authors=len(authors),
            reply_fraction=replies / len(comments) if comments else 0.0,
        ))
    return analysis
