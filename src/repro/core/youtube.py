"""YouTube content analysis (§4.2.2).

Over the render-crawled YouTube metadata: content-kind breakdown
(video/channel/user), availability census (active vs the four removal
reasons), the Fox News vs CNN ownership comparison, and the fraction of
active videos with comments disabled.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.store import Corpus
from repro.crawler.youtube_crawl import YouTubeCrawlResult, is_youtube_url

__all__ = ["YouTubeAnalysis", "analyze_youtube"]


@dataclass
class YouTubeAnalysis:
    """§4.2.2's statistics."""

    total_items: int
    kind_counts: dict[str, int] = field(default_factory=dict)
    status_counts: dict[str, int] = field(default_factory=dict)
    owner_counts: dict[str, int] = field(default_factory=dict)
    comments_disabled: int = 0
    active_videos: int = 0
    youtube_url_fraction_of_corpus: float = 0.0

    def owner_share(self, owner: str) -> float:
        """Share of active videos uploaded by ``owner``."""
        if self.active_videos == 0:
            return 0.0
        return self.owner_counts.get(owner, 0) / self.active_videos

    @property
    def comments_disabled_fraction(self) -> float:
        if self.active_videos == 0:
            return 0.0
        return self.comments_disabled / self.active_videos

    @property
    def unavailable_videos(self) -> int:
        return sum(
            count
            for status, count in self.status_counts.items()
            if status != "OK"
        )


def analyze_youtube(
    crawl: YouTubeCrawlResult, result: Corpus | None = None
) -> YouTubeAnalysis:
    """Aggregate the render-crawl output.

    Args:
        crawl: the YouTube crawl result.
        result: optional Dissenter corpus, used to compute what fraction
            of all commented URLs are YouTube content.
    """
    analysis = YouTubeAnalysis(total_items=len(crawl.items))
    for item in crawl.items.values():
        analysis.kind_counts[item.kind] = (
            analysis.kind_counts.get(item.kind, 0) + 1
        )
        if item.kind != "video":
            continue
        analysis.status_counts[item.status] = (
            analysis.status_counts.get(item.status, 0) + 1
        )
        if item.is_active:
            analysis.active_videos += 1
            analysis.owner_counts[item.owner] = (
                analysis.owner_counts.get(item.owner, 0) + 1
            )
            if item.comments_disabled:
                analysis.comments_disabled += 1

    if result is not None and result.urls:
        youtube_urls = sum(
            1 for u in result.urls.values() if is_youtube_url(u.url)
        )
        analysis.youtube_url_fraction_of_corpus = youtube_urls / len(result.urls)
    return analysis
