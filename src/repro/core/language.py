"""Comment language identification (§4.2.3).

Classifies every crawled comment with the character-n-gram language
identifier; the paper finds 94% English and 2% German, with German's
prominence matching .de's rank among TLDs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.store import Corpus
from repro.nlp.langid import LanguageIdentifier, default_language_identifier

__all__ = ["LanguageAnalysis", "analyze_languages"]


@dataclass
class LanguageAnalysis:
    """Language mix of the comment corpus."""

    total: int
    counts: dict[str, int] = field(default_factory=dict)

    def fraction(self, language: str) -> float:
        return self.counts.get(language, 0) / self.total if self.total else 0.0

    def ranked(self) -> list[tuple[str, int]]:
        return sorted(self.counts.items(), key=lambda item: -item[1])


def analyze_languages(
    result: Corpus,
    identifier: LanguageIdentifier | None = None,
) -> LanguageAnalysis:
    """Classify every comment's language."""
    identifier = identifier or default_language_identifier()
    analysis = LanguageAnalysis(total=len(result.comments))
    for comment in result.comments.values():
        language = identifier.classify(comment.text)
        analysis.counts[language] = analysis.counts.get(language, 0) + 1
    return analysis
