"""Social network analysis (§4.5, Figure 9) and the hateful core.

Operates on the induced Dissenter follow graph — a
:class:`~repro.graph.csr.CSRGraph` built by :func:`repro.crawler.
social_crawl.induce_dissenter_graph` — plus per-user activity and
toxicity measured from the crawl.

Every analysis here is implemented twice behind a type dispatch: the
vectorized CSR reductions (degrees, isolated fraction, deterministic
top-K, sorted-pair mutual-edge intersection, iterative connected
components) and the historical networkx implementation, kept as the
oracle.  Passing ``graph.to_networkx()`` instead of the CSR graph must
serialize a byte-identical report — the CI graph-parity step and
``tests/graph/`` enforce exactly that, mirroring the columnar layer's
``--no-columns`` oracle contract.  networkx itself is an optional
``[nx]`` extra and only imported on the oracle path.

The hateful core follows the paper's §4.5.1 criterion exactly: the
subgraph induced on pairs (a, b) such that a and b are mutual followers,
each has posted >= 100 comments or replies, and each has median comment
toxicity >= 0.3.  The paper finds 42 users in 6 connected components with
a 32-user giant component.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.core.scoring import ScoreStore
from repro.graph.csr import CSRGraph
from repro.stats.powerlaw import PowerLawFit, fit_discrete_powerlaw
from repro.store import Corpus

__all__ = [
    "HatefulCore",
    "SocialNetworkAnalysis",
    "analyze_social_network",
    "extract_hateful_core",
    "per_user_activity_toxicity",
]


def per_user_activity_toxicity(
    result: Corpus,
    gab_ids: Mapping[str, int],
    store: ScoreStore | None = None,
    max_comments_per_user: int = 200,
) -> tuple[dict[int, int], dict[int, float]]:
    """Per-user comment counts and median toxicity (Figs. 9b/9c, §4.5.1).

    Args:
        result: crawl corpus.
        gab_ids: username -> Gab ID (from the enumeration crawl).
        store: shared score store (ideally pre-populated by the
            pipeline's scoring pass).
        max_comments_per_user: per-user cap on the comments entering the
            median (deterministic prefix) to bound cost at large scales.

    Returns:
        ``(comment_counts, median_toxicity)`` keyed by Gab ID; users with
        no comments are absent from ``median_toxicity``.
    """
    store = store or ScoreStore()
    by_author = result.comments_by_author()
    author_by_username = {
        u.username: u.author_id for u in result.users.values()
    }
    comment_counts: dict[int, int] = {}
    median_toxicity: dict[int, float] = {}
    for username, gab_id in gab_ids.items():
        author_id = author_by_username.get(username)
        if author_id is None:
            continue
        comments = by_author.get(author_id, [])
        comment_counts[gab_id] = len(comments)
        if comments:
            scores = store.attribute_values(
                [c.text for c in comments[:max_comments_per_user]],
                "SEVERE_TOXICITY",
            )
            median_toxicity[gab_id] = float(np.median(scores))
    return comment_counts, median_toxicity


@dataclass
class SocialNetworkAnalysis:
    """Figure 9's data: degrees and their relationship with toxicity."""

    n_users: int
    isolated_users: int
    in_degrees: np.ndarray
    out_degrees: np.ndarray
    top_in: list[tuple[int, int]] = field(default_factory=list)    # (gab_id, deg)
    top_out: list[tuple[int, int]] = field(default_factory=list)
    in_degree_fit: PowerLawFit | None = None
    out_degree_fit: PowerLawFit | None = None
    # Toxicity grouped by log-degree bucket: bucket -> (mean, median).
    toxicity_by_in_degree: dict[int, tuple[float, float]] = field(
        default_factory=dict
    )
    toxicity_by_out_degree: dict[int, tuple[float, float]] = field(
        default_factory=dict
    )

    @property
    def isolated_fraction(self) -> float:
        return self.isolated_users / self.n_users if self.n_users else 0.0


def _degree_bucket(degree: int) -> int:
    """Log2 bucket index (0 for degree 0)."""
    if degree <= 0:
        return 0
    return int(np.floor(np.log2(degree))) + 1


def _toxicity_buckets(
    degrees: Mapping[int, int], toxicity: Mapping[int, float]
) -> dict[int, tuple[float, float]]:
    grouped: dict[int, list[float]] = {}
    for gab_id, degree in degrees.items():
        value = toxicity.get(gab_id)
        if value is None:
            continue
        grouped.setdefault(_degree_bucket(degree), []).append(value)
    return {
        bucket: (float(np.mean(vals)), float(np.median(vals)))
        for bucket, vals in grouped.items()
    }


def _top_k(degrees: Mapping[int, int], top_k: int) -> list[tuple[int, int]]:
    """Top-``top_k`` (gab_id, degree) sorted by (-degree, gab_id).

    The secondary ascending-ID key makes the ordering total: equal
    degrees previously kept dict insertion order, which made the report
    lines a function of node order rather than of the graph.
    """
    return sorted(degrees.items(), key=lambda x: (-x[1], x[0]))[:top_k]


def analyze_social_network(
    graph: CSRGraph,
    user_toxicity: Mapping[int, float] | None = None,
    top_k: int = 10,
) -> SocialNetworkAnalysis:
    """Compute Fig. 9's degree and toxicity relationships.

    Args:
        graph: induced Dissenter follow graph (nodes = Gab IDs); a
            ``networkx.DiGraph`` routes through the oracle path and
            serializes identically.
        user_toxicity: per-user median comment toxicity (for Figs. 9b/9c).
        top_k: how many top-degree users to report.
    """
    if isinstance(graph, CSRGraph):
        nodes = graph.nodes
        in_arr = graph.in_degrees().astype(int, copy=False)
        out_arr = graph.out_degrees().astype(int, copy=False)
        isolated = graph.isolated_count()
        top_in = graph.top_k_by_degree(in_arr, top_k)
        top_out = graph.top_k_by_degree(out_arr, top_k)
    else:
        in_deg = dict(graph.in_degree())
        out_deg = dict(graph.out_degree())
        nodes = list(graph.nodes)
        in_arr = np.asarray([in_deg[n] for n in nodes], dtype=int)
        out_arr = np.asarray([out_deg[n] for n in nodes], dtype=int)
        isolated = int(((in_arr == 0) & (out_arr == 0)).sum())
        top_in = _top_k(in_deg, top_k)
        top_out = _top_k(out_deg, top_k)

    def fit_or_none(values: np.ndarray) -> PowerLawFit | None:
        try:
            return fit_discrete_powerlaw(values.tolist())
        except ValueError:
            return None

    analysis = SocialNetworkAnalysis(
        n_users=len(nodes),
        isolated_users=isolated,
        in_degrees=in_arr,
        out_degrees=out_arr,
        top_in=top_in,
        top_out=top_out,
        in_degree_fit=fit_or_none(in_arr),
        out_degree_fit=fit_or_none(out_arr),
    )
    if user_toxicity is not None:
        # Bucket grouping walks the degree maps in canonical node order
        # on both paths, so the float reductions see identical operand
        # order and the payloads stay byte-comparable.
        in_by_id = dict(zip(nodes, in_arr.tolist()))
        out_by_id = dict(zip(nodes, out_arr.tolist()))
        analysis.toxicity_by_in_degree = _toxicity_buckets(
            in_by_id, user_toxicity
        )
        analysis.toxicity_by_out_degree = _toxicity_buckets(
            out_by_id, user_toxicity
        )
    return analysis


@dataclass
class HatefulCore:
    """§4.5.1's hateful core.

    ``members`` is a sorted tuple — not a set — so anything that
    serializes the core (the report payload, ``/api/core``) can never
    inherit hash order; ``in core`` still answers membership through
    the frozen view.
    """

    members: tuple[int, ...]                 # sorted Gab IDs
    component_sizes: list[int]               # descending
    subgraph: object                         # mutual-edge CSRGraph (or nx oracle graph)
    qualifying_users: int                    # met activity+toxicity criteria

    def __contains__(self, gab_id: int) -> bool:
        return gab_id in self.member_set

    @property
    def member_set(self) -> frozenset[int]:
        """Membership view (kept off the serialization paths)."""
        return frozenset(self.members)

    @property
    def size(self) -> int:
        return len(self.members)

    @property
    def n_components(self) -> int:
        return len(self.component_sizes)

    @property
    def giant_size(self) -> int:
        return self.component_sizes[0] if self.component_sizes else 0


def _qualifying_mask(
    graph: CSRGraph,
    comment_counts: Mapping[int, int],
    median_toxicity: Mapping[int, float],
    min_comments: int,
    min_toxicity: float,
) -> np.ndarray:
    mask = np.zeros(graph.n_nodes, dtype=bool)
    for index, gab_id in enumerate(graph.node_ids.tolist()):
        mask[index] = (
            comment_counts.get(gab_id, 0) >= min_comments
            and median_toxicity.get(gab_id, 0.0) >= min_toxicity
        )
    return mask


def extract_hateful_core(
    graph: CSRGraph,
    comment_counts: Mapping[int, int],
    median_toxicity: Mapping[int, float],
    min_comments: int = 100,
    min_toxicity: float = 0.3,
) -> HatefulCore:
    """Extract the hateful core per the paper's three-part criterion.

    Users qualify with >= ``min_comments`` comments and median toxicity
    >= ``min_toxicity``; the core is the set of qualifying users joined
    by *mutual* follow edges to another qualifying user.

    On a :class:`CSRGraph` the mutual edges come from one sorted-key
    intersection over the CSR rows and the components from the engine's
    iterative union-find; a networkx graph routes through the historical
    edge loop.  Both serialize identically through the report payload.
    """
    if isinstance(graph, CSRGraph):
        qualifying = _qualifying_mask(
            graph, comment_counts, median_toxicity, min_comments, min_toxicity
        )
        src, dst = graph.mutual_pairs()
        keep = qualifying[src] & qualifying[dst] & (src != dst)
        src, dst = src[keep], dst[keep]
        # The mutual subgraph keeps both directions (it is undirected in
        # the paper; symmetric CSR rows model that exactly).
        mutual = graph.subgraph_from_index_edges(
            np.concatenate([src, dst]), np.concatenate([dst, src])
        )
        members = tuple(mutual.nodes)
        components = mutual.component_sizes()
        return HatefulCore(
            members=members,
            component_sizes=components,
            subgraph=mutual,
            qualifying_users=int(qualifying.sum()),
        )

    import networkx as nx

    qualifying_ids = {
        node
        for node in graph.nodes
        if comment_counts.get(node, 0) >= min_comments
        and median_toxicity.get(node, 0.0) >= min_toxicity
    }
    mutual_nx = nx.Graph()
    for a, b in graph.edges:
        if a == b:
            continue
        if a in qualifying_ids and b in qualifying_ids and graph.has_edge(b, a):
            mutual_nx.add_edge(a, b)
    members = tuple(sorted(mutual_nx.nodes))
    components = sorted(
        (len(c) for c in nx.connected_components(mutual_nx)), reverse=True
    )
    return HatefulCore(
        members=members,
        component_sizes=components,
        subgraph=mutual_nx,
        qualifying_users=len(qualifying_ids),
    )
