"""Social network analysis (§4.5, Figure 9) and the hateful core.

Operates on the induced Dissenter follow graph (a ``networkx.DiGraph``
over Gab IDs, built by :func:`repro.crawler.social_crawl.
induce_dissenter_graph`) plus per-user activity and toxicity measured
from the crawl.

The hateful core follows the paper's §4.5.1 criterion exactly: the
subgraph induced on pairs (a, b) such that a and b are mutual followers,
each has posted >= 100 comments or replies, and each has median comment
toxicity >= 0.3.  The paper finds 42 users in 6 connected components with
a 32-user giant component.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import networkx as nx
import numpy as np

from repro.core.scoring import ScoreStore
from repro.store import Corpus
from repro.stats.powerlaw import PowerLawFit, fit_discrete_powerlaw

__all__ = [
    "HatefulCore",
    "SocialNetworkAnalysis",
    "analyze_social_network",
    "extract_hateful_core",
    "per_user_activity_toxicity",
]


def per_user_activity_toxicity(
    result: Corpus,
    gab_ids: Mapping[str, int],
    store: ScoreStore | None = None,
    max_comments_per_user: int = 200,
) -> tuple[dict[int, int], dict[int, float]]:
    """Per-user comment counts and median toxicity (Figs. 9b/9c, §4.5.1).

    Args:
        result: crawl corpus.
        gab_ids: username -> Gab ID (from the enumeration crawl).
        store: shared score store (ideally pre-populated by the
            pipeline's scoring pass).
        max_comments_per_user: per-user cap on the comments entering the
            median (deterministic prefix) to bound cost at large scales.

    Returns:
        ``(comment_counts, median_toxicity)`` keyed by Gab ID; users with
        no comments are absent from ``median_toxicity``.
    """
    store = store or ScoreStore()
    by_author = result.comments_by_author()
    author_by_username = {
        u.username: u.author_id for u in result.users.values()
    }
    comment_counts: dict[int, int] = {}
    median_toxicity: dict[int, float] = {}
    for username, gab_id in gab_ids.items():
        author_id = author_by_username.get(username)
        if author_id is None:
            continue
        comments = by_author.get(author_id, [])
        comment_counts[gab_id] = len(comments)
        if comments:
            scores = store.attribute_values(
                [c.text for c in comments[:max_comments_per_user]],
                "SEVERE_TOXICITY",
            )
            median_toxicity[gab_id] = float(np.median(scores))
    return comment_counts, median_toxicity


@dataclass
class SocialNetworkAnalysis:
    """Figure 9's data: degrees and their relationship with toxicity."""

    n_users: int
    isolated_users: int
    in_degrees: np.ndarray
    out_degrees: np.ndarray
    top_in: list[tuple[int, int]] = field(default_factory=list)    # (gab_id, deg)
    top_out: list[tuple[int, int]] = field(default_factory=list)
    in_degree_fit: PowerLawFit | None = None
    out_degree_fit: PowerLawFit | None = None
    # Toxicity grouped by log-degree bucket: bucket -> (mean, median).
    toxicity_by_in_degree: dict[int, tuple[float, float]] = field(
        default_factory=dict
    )
    toxicity_by_out_degree: dict[int, tuple[float, float]] = field(
        default_factory=dict
    )

    @property
    def isolated_fraction(self) -> float:
        return self.isolated_users / self.n_users if self.n_users else 0.0


def _degree_bucket(degree: int) -> int:
    """Log2 bucket index (0 for degree 0)."""
    if degree <= 0:
        return 0
    return int(np.floor(np.log2(degree))) + 1


def _toxicity_buckets(
    degrees: Mapping[int, int], toxicity: Mapping[int, float]
) -> dict[int, tuple[float, float]]:
    grouped: dict[int, list[float]] = {}
    for gab_id, degree in degrees.items():
        value = toxicity.get(gab_id)
        if value is None:
            continue
        grouped.setdefault(_degree_bucket(degree), []).append(value)
    return {
        bucket: (float(np.mean(vals)), float(np.median(vals)))
        for bucket, vals in grouped.items()
    }


def analyze_social_network(
    graph: nx.DiGraph,
    user_toxicity: Mapping[int, float] | None = None,
    top_k: int = 10,
) -> SocialNetworkAnalysis:
    """Compute Fig. 9's degree and toxicity relationships.

    Args:
        graph: induced Dissenter follow graph (nodes = Gab IDs).
        user_toxicity: per-user median comment toxicity (for Figs. 9b/9c).
        top_k: how many top-degree users to report.
    """
    in_deg = dict(graph.in_degree())
    out_deg = dict(graph.out_degree())
    nodes = list(graph.nodes)
    in_arr = np.asarray([in_deg[n] for n in nodes], dtype=int)
    out_arr = np.asarray([out_deg[n] for n in nodes], dtype=int)
    isolated = int(((in_arr == 0) & (out_arr == 0)).sum())

    def fit_or_none(values: np.ndarray) -> PowerLawFit | None:
        try:
            return fit_discrete_powerlaw(values.tolist())
        except ValueError:
            return None

    analysis = SocialNetworkAnalysis(
        n_users=len(nodes),
        isolated_users=isolated,
        in_degrees=in_arr,
        out_degrees=out_arr,
        top_in=sorted(in_deg.items(), key=lambda x: -x[1])[:top_k],
        top_out=sorted(out_deg.items(), key=lambda x: -x[1])[:top_k],
        in_degree_fit=fit_or_none(in_arr),
        out_degree_fit=fit_or_none(out_arr),
    )
    if user_toxicity is not None:
        analysis.toxicity_by_in_degree = _toxicity_buckets(in_deg, user_toxicity)
        analysis.toxicity_by_out_degree = _toxicity_buckets(
            out_deg, user_toxicity
        )
    return analysis


@dataclass
class HatefulCore:
    """§4.5.1's hateful core."""

    members: set[int]
    component_sizes: list[int]               # descending
    subgraph: nx.Graph
    qualifying_users: int                    # met activity+toxicity criteria

    @property
    def size(self) -> int:
        return len(self.members)

    @property
    def n_components(self) -> int:
        return len(self.component_sizes)

    @property
    def giant_size(self) -> int:
        return self.component_sizes[0] if self.component_sizes else 0


def extract_hateful_core(
    graph: nx.DiGraph,
    comment_counts: Mapping[int, int],
    median_toxicity: Mapping[int, float],
    min_comments: int = 100,
    min_toxicity: float = 0.3,
) -> HatefulCore:
    """Extract the hateful core per the paper's three-part criterion.

    Users qualify with >= ``min_comments`` comments and median toxicity
    >= ``min_toxicity``; the core is the set of qualifying users joined
    by *mutual* follow edges to another qualifying user.
    """
    qualifying = {
        node
        for node in graph.nodes
        if comment_counts.get(node, 0) >= min_comments
        and median_toxicity.get(node, 0.0) >= min_toxicity
    }
    mutual = nx.Graph()
    for a, b in graph.edges:
        if a in qualifying and b in qualifying and graph.has_edge(b, a):
            mutual.add_edge(a, b)
    members = set(mutual.nodes)
    components = sorted(
        (len(c) for c in nx.connected_components(mutual)), reverse=True
    )
    return HatefulCore(
        members=members,
        component_sizes=components,
        subgraph=mutual,
        qualifying_users=len(qualifying),
    )
