"""Macro characterisation of the platform (§4.1, Figs. 2-3, Table 1).

All inputs are crawled records; creation times come from the timestamp
prefix of the undocumented 12-byte IDs (§2.2), exactly as in the paper.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass, field

import numpy as np

from repro.crawler.records import CrawledGabAccount
from repro.store import Corpus, columns_of
from repro.stats.distributions import ECDF, top_share
from repro.stats.hypothesis_tests import rank_correlation

__all__ = [
    "CommentConcentration",
    "GabGrowthSeries",
    "MacroHeadlines",
    "UserTableStats",
    "analyze_gab_growth",
    "comment_concentration",
    "compute_headlines",
    "user_table",
]


# ---------------------------------------------------------------------------
# Fig. 2 — Gab ID assignment over time.
# ---------------------------------------------------------------------------


@dataclass
class GabGrowthSeries:
    """(creation time, Gab ID) series plus monotonicity anomalies."""

    created_at: np.ndarray           # Unix seconds, sorted ascending
    gab_ids: np.ndarray              # IDs in creation order
    anomalous_count: int             # IDs assigned out of order
    spearman_rho: float              # rank correlation time vs ID

    @property
    def n(self) -> int:
        return int(self.created_at.size)


def _parse_iso(timestamp: str) -> float:
    return datetime.datetime.strptime(
        timestamp, "%Y-%m-%dT%H:%M:%S.000Z"
    ).replace(tzinfo=datetime.timezone.utc).timestamp()


def _parse_iso_many(stamps: list[str]) -> np.ndarray:
    """Vectorized `_parse_iso` over the canonical timestamp layout.

    The platform emits exactly ``YYYY-MM-DDTHH:MM:SS.000Z`` (24 chars,
    literal ``.000Z``), which datetime64 parses after stripping the
    suffix; both paths yield whole Unix seconds, so the float values are
    bit-identical.  Anything off-layout falls back to the scalar parser,
    preserving its error behaviour.
    """
    arr = np.asarray(stamps, dtype=np.str_)
    try:
        if arr.dtype != np.dtype("<U24") or not np.all(
            np.strings.endswith(arr, ".000Z")
        ):
            raise ValueError("non-canonical timestamp layout")
        seconds = arr.astype("<U19").astype("datetime64[s]").astype(np.int64)
    except (ValueError, TypeError):
        return np.asarray([_parse_iso(stamp) for stamp in stamps])
    return seconds.astype(float)


def analyze_gab_growth(accounts: list[CrawledGabAccount]) -> GabGrowthSeries:
    """Build the Fig. 2 series and quantify ID-counter anomalies.

    An account is "anomalous" when its ID is *lower* than the running
    maximum ID among accounts created before it — i.e. a previously
    unallocated low ID handed to a new account.
    """
    if not accounts:
        raise ValueError("no accounts to analyze")
    times = _parse_iso_many([a.created_at_iso for a in accounts])
    ids = np.asarray([a.gab_id for a in accounts])
    order = np.argsort(times)
    times, ids = times[order], ids[order]

    # Running maximum among *earlier* accounts: far-below-frontier IDs
    # are reassigned reserved IDs.
    frontier = np.concatenate(
        [[0], np.maximum.accumulate(ids)[:-1]]
    )
    anomalous = int((ids < frontier * 0.5).sum())

    rho = rank_correlation(times, ids) if ids.size > 1 else 1.0

    return GabGrowthSeries(
        created_at=times,
        gab_ids=ids,
        anomalous_count=anomalous,
        spearman_rho=rho,
    )


# ---------------------------------------------------------------------------
# Fig. 3 — comment concentration among active users.
# ---------------------------------------------------------------------------


@dataclass
class CommentConcentration:
    """Per-user comment counts and concentration statistics."""

    counts: np.ndarray               # comments per active user, descending
    top_14pct_share: float
    gini_like_top_shares: dict[float, float]   # population frac -> mass frac

    def ecdf(self) -> ECDF:
        return ECDF(self.counts)


def comment_concentration(result: Corpus) -> CommentConcentration:
    """Compute Fig. 3's distribution over the crawled corpus."""
    view = columns_of(result)
    if view is not None:
        per_author = view.comments_per_author()
        counts = np.sort(per_author[per_author > 0])[::-1].astype(float)
    else:
        by_author = result.comments_by_author()
        counts = np.asarray(
            sorted((len(v) for v in by_author.values()), reverse=True),
            dtype=float,
        )
    if counts.size == 0:
        raise ValueError("corpus has no comments")
    shares = {
        fraction: top_share(counts, fraction)
        for fraction in (0.01, 0.05, 0.10, 0.14, 0.25, 0.50)
    }
    return CommentConcentration(
        counts=counts,
        top_14pct_share=shares[0.14],
        gini_like_top_shares=shares,
    )


# ---------------------------------------------------------------------------
# Table 1 — user flags and view filters.
# ---------------------------------------------------------------------------


@dataclass
class UserTableStats:
    """Table 1: flag and filter frequencies over active users."""

    n_active: int
    flag_counts: dict[str, int] = field(default_factory=dict)
    filter_counts: dict[str, int] = field(default_factory=dict)

    def flag_fraction(self, name: str) -> float:
        return self.flag_counts.get(name, 0) / self.n_active if self.n_active else 0.0

    def filter_fraction(self, name: str) -> float:
        return (
            self.filter_counts.get(name, 0) / self.n_active
            if self.n_active
            else 0.0
        )


def user_table(result: Corpus) -> UserTableStats:
    """Tabulate hidden-metadata flags/filters over active users.

    Only users whose commentAuthor blob was mined (i.e. that have posted)
    contribute — matching the paper's n = active users.
    """
    view = columns_of(result)
    if view is not None:
        return _user_table_columnar(view)
    active = [u for u in result.active_users() if u.permissions]
    stats = UserTableStats(n_active=len(active))
    for user in active:
        for name, value in user.permissions.items():
            if value:
                stats.flag_counts[name] = stats.flag_counts.get(name, 0) + 1
        for name, value in user.view_filters.items():
            if value:
                stats.filter_counts[name] = stats.filter_counts.get(name, 0) + 1
    return stats


def _mask_counts(masks: np.ndarray, names: list[str]) -> dict[str, int]:
    """Per-bit truthy counts, keyed in dict-path insertion order.

    The dict path inserts a name the first time a selected user carries
    the flag truthily, iterating each user's (fixed-order) items — so
    ordering by (first truthy row, bit ordinal) reproduces it exactly.
    """
    entries = []
    for bit, name in enumerate(names):
        hits = (masks >> np.uint64(bit)) & np.uint64(1)
        count = int(hits.sum())
        if count:
            entries.append((int(np.argmax(hits)), bit, count))
    entries.sort()
    return {names[bit]: count for _, bit, count in entries}


def _user_table_columnar(view) -> UserTableStats:
    users = view.users
    selected = view.active_author_mask()[users.author] & (
        users.has_perms != 0
    )
    return UserTableStats(
        n_active=int(selected.sum()),
        flag_counts=_mask_counts(
            users.perm_mask[selected], view.tables.flags.values
        ),
        filter_counts=_mask_counts(
            users.filter_mask[selected], view.tables.filters.values
        ),
    )


# ---------------------------------------------------------------------------
# §4.1 headline numbers.
# ---------------------------------------------------------------------------


@dataclass
class MacroHeadlines:
    """The §4 headline statistics."""

    total_users: int
    active_users: int
    total_comments: int
    total_replies: int
    distinct_urls: int
    first_month_join_fraction: float
    orphaned_commenters: int          # author-ids with comments but no account
    censorship_bio_fraction: float
    nsfw_comments: int
    offensive_comments: int

    @property
    def active_fraction(self) -> float:
        return self.active_users / self.total_users if self.total_users else 0.0


def compute_headlines(
    result: Corpus,
    launch_epoch: float,
    first_month_days: int = 35,
) -> MacroHeadlines:
    """Compute the §4.1 headline statistics from the crawl."""
    users = list(result.users.values())
    active = result.active_users()
    known_authors = {u.author_id for u in users}
    comment_authors = {c.author_id for c in result.comments.values()}
    orphaned = len(comment_authors - known_authors)

    cutoff = launch_epoch + first_month_days * 86_400
    joined_early = sum(1 for u in users if u.created_at <= cutoff)
    censorship = sum(1 for u in users if "censorship" in u.bio.lower())

    replies = sum(1 for c in result.comments.values() if c.is_reply)
    nsfw = sum(
        1 for c in result.comments.values() if c.shadow_label == "nsfw"
    )
    offensive = sum(
        1 for c in result.comments.values() if c.shadow_label == "offensive"
    )

    return MacroHeadlines(
        total_users=len(users),
        active_users=len(active),
        total_comments=len(result.comments),
        total_replies=replies,
        distinct_urls=len(result.urls),
        first_month_join_fraction=joined_early / len(users) if users else 0.0,
        orphaned_commenters=orphaned,
        censorship_bio_fraction=censorship / len(users) if users else 0.0,
        nsfw_comments=nsfw,
        offensive_comments=offensive,
    )
