"""Toxicity conditioned on media bias (§4.4.4, Figure 8).

URLs are classified with an Allsides-style bias table (news outlets only;
YouTube, social media and unknown domains are "not-ranked").  Per-bias
SEVERE_TOXICITY and ATTACK_ON_AUTHOR score distributions are compared
with pairwise two-sample KS tests — the paper confirms all pairs differ
at p < 0.01.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.core.scoring import ScoreStore
from repro.core.urls import second_level_domain
from repro.store import Corpus
from repro.platform.urlgen import ALLSIDES_BIAS
from repro.stats.hypothesis_tests import KSResult, pairwise_ks

__all__ = ["BIAS_CATEGORIES", "BiasAnalysis", "analyze_bias", "bias_of_url"]

BIAS_CATEGORIES = (
    "left", "left-center", "center", "right-center", "right", "not-ranked"
)


def bias_of_url(url: str, table: Mapping[str, str] | None = None) -> str:
    """Allsides bias of a URL's domain ("not-ranked" when absent)."""
    table = table if table is not None else ALLSIDES_BIAS
    domain = second_level_domain(url)
    if domain is None:
        return "not-ranked"
    return table.get(domain, "not-ranked")


@dataclass
class BiasAnalysis:
    """Figure 8's samples and significance tests."""

    toxicity: dict[str, np.ndarray] = field(default_factory=dict)
    attack: dict[str, np.ndarray] = field(default_factory=dict)
    comment_counts: dict[str, int] = field(default_factory=dict)
    ks_toxicity: dict[tuple[str, str], KSResult] = field(default_factory=dict)
    ks_attack: dict[tuple[str, str], KSResult] = field(default_factory=dict)

    def median_toxicity(self, bias: str) -> float:
        values = self.toxicity.get(bias)
        if values is None or values.size == 0:
            return float("nan")
        return float(np.median(values))

    def mean_attack(self, bias: str) -> float:
        values = self.attack.get(bias)
        if values is None or values.size == 0:
            return float("nan")
        return float(values.mean())

    def ranked_comment_counts(self) -> list[tuple[str, int]]:
        return sorted(self.comment_counts.items(), key=lambda x: -x[1])


def analyze_bias(
    result: Corpus,
    store: ScoreStore | None = None,
    bias_table: Mapping[str, str] | None = None,
    max_per_bias: int = 10_000,
) -> BiasAnalysis:
    """Group comment scores by the bias of the commented URL."""
    store = store or ScoreStore()
    url_bias = {
        record.commenturl_id: bias_of_url(record.url, bias_table)
        for record in result.urls.values()
    }

    tox: dict[str, list[float]] = {b: [] for b in BIAS_CATEGORIES}
    atk: dict[str, list[float]] = {b: [] for b in BIAS_CATEGORIES}
    counts: dict[str, int] = {b: 0 for b in BIAS_CATEGORIES}
    for comment in result.comments.values():
        bias = url_bias.get(comment.commenturl_id, "not-ranked")
        counts[bias] += 1
        if len(tox[bias]) >= max_per_bias:
            continue
        scores = store.score(comment.text)
        tox[bias].append(scores["SEVERE_TOXICITY"])
        atk[bias].append(scores["ATTACK_ON_AUTHOR"])

    analysis = BiasAnalysis(
        toxicity={b: np.asarray(v) for b, v in tox.items()},
        attack={b: np.asarray(v) for b, v in atk.items()},
        comment_counts=counts,
    )
    analysis.ks_toxicity = pairwise_ks(
        {b: v for b, v in analysis.toxicity.items() if v.size >= 5}
    )
    analysis.ks_attack = pairwise_ks(
        {b: v for b, v in analysis.attack.items() if v.size >= 5}
    )
    return analysis
