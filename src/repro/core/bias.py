"""Toxicity conditioned on media bias (§4.4.4, Figure 8).

URLs are classified with an Allsides-style bias table (news outlets only;
YouTube, social media and unknown domains are "not-ranked").  Per-bias
SEVERE_TOXICITY and ATTACK_ON_AUTHOR score distributions are compared
with pairwise two-sample KS tests — the paper confirms all pairs differ
at p < 0.01.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.core.scoring import ScoreStore
from repro.core.urls import second_level_domain
from repro.store import Corpus, columns_of
from repro.platform.urlgen import ALLSIDES_BIAS
from repro.stats.hypothesis_tests import KSResult, pairwise_ks

__all__ = ["BIAS_CATEGORIES", "BiasAnalysis", "analyze_bias", "bias_of_url"]

BIAS_CATEGORIES = (
    "left", "left-center", "center", "right-center", "right", "not-ranked"
)


def bias_of_url(url: str, table: Mapping[str, str] | None = None) -> str:
    """Allsides bias of a URL's domain ("not-ranked" when absent)."""
    table = table if table is not None else ALLSIDES_BIAS
    domain = second_level_domain(url)
    if domain is None:
        return "not-ranked"
    return table.get(domain, "not-ranked")


@dataclass
class BiasAnalysis:
    """Figure 8's samples and significance tests."""

    toxicity: dict[str, np.ndarray] = field(default_factory=dict)
    attack: dict[str, np.ndarray] = field(default_factory=dict)
    comment_counts: dict[str, int] = field(default_factory=dict)
    ks_toxicity: dict[tuple[str, str], KSResult] = field(default_factory=dict)
    ks_attack: dict[tuple[str, str], KSResult] = field(default_factory=dict)

    def median_toxicity(self, bias: str) -> float:
        values = self.toxicity.get(bias)
        if values is None or values.size == 0:
            return float("nan")
        return float(np.median(values))

    def mean_attack(self, bias: str) -> float:
        values = self.attack.get(bias)
        if values is None or values.size == 0:
            return float("nan")
        return float(values.mean())

    def ranked_comment_counts(self) -> list[tuple[str, int]]:
        return sorted(self.comment_counts.items(), key=lambda x: -x[1])


def analyze_bias(
    result: Corpus,
    store: ScoreStore | None = None,
    bias_table: Mapping[str, str] | None = None,
    max_per_bias: int = 10_000,
) -> BiasAnalysis:
    """Group comment scores by the bias of the commented URL."""
    store = store or ScoreStore()
    view = columns_of(result)
    if view is not None:
        analysis = _bias_samples_columnar(view, store, bias_table, max_per_bias)
    else:
        analysis = _bias_samples_dicts(result, store, bias_table, max_per_bias)
    analysis.ks_toxicity = pairwise_ks(
        {b: v for b, v in analysis.toxicity.items() if v.size >= 5}
    )
    analysis.ks_attack = pairwise_ks(
        {b: v for b, v in analysis.attack.items() if v.size >= 5}
    )
    return analysis


def _bias_samples_dicts(
    result: Corpus,
    store: ScoreStore,
    bias_table: Mapping[str, str] | None,
    max_per_bias: int,
) -> BiasAnalysis:
    url_bias = {
        record.commenturl_id: bias_of_url(record.url, bias_table)
        for record in result.urls.values()
    }

    tox: dict[str, list[float]] = {b: [] for b in BIAS_CATEGORIES}
    atk: dict[str, list[float]] = {b: [] for b in BIAS_CATEGORIES}
    counts: dict[str, int] = {b: 0 for b in BIAS_CATEGORIES}
    for comment in result.comments.values():
        bias = url_bias.get(comment.commenturl_id, "not-ranked")
        counts[bias] += 1
        if len(tox[bias]) >= max_per_bias:
            continue
        scores = store.score(comment.text)
        tox[bias].append(scores["SEVERE_TOXICITY"])
        atk[bias].append(scores["ATTACK_ON_AUTHOR"])

    return BiasAnalysis(
        toxicity={b: np.asarray(v) for b, v in tox.items()},
        attack={b: np.asarray(v) for b, v in atk.items()},
        comment_counts=counts,
    )


def _bias_samples_columnar(
    view,
    store: ScoreStore,
    bias_table: Mapping[str, str] | None,
    max_per_bias: int,
) -> BiasAnalysis:
    table = bias_table if bias_table is not None else ALLSIDES_BIAS
    category_index = {name: k for k, name in enumerate(BIAS_CATEGORIES)}
    not_ranked = category_index["not-ranked"]

    # Bias category code per domain ordinal, scattered onto url ids,
    # then gathered per comment; unknown url ids stay "not-ranked".
    domain_code = np.asarray(
        [
            category_index[table.get(domain, "not-ranked")]
            for domain in view.tables.domains.values
        ],
        dtype=np.int64,
    )
    urls = view.urls
    if domain_code.size:
        url_code = np.where(
            urls.domain >= 0, domain_code[np.maximum(urls.domain, 0)], not_ranked
        )
    else:
        url_code = np.full(urls.n, not_ranked, dtype=np.int64)
    code_by_url_id = np.full(
        len(view.tables.url_ids), not_ranked, dtype=np.int64
    )
    code_by_url_id[urls.key] = url_code
    codes = code_by_url_id[view.comments.url]

    severe = view.attribute_scores(store, "SEVERE_TOXICITY")
    attack = view.attribute_scores(store, "ATTACK_ON_AUTHOR")
    total_counts = np.bincount(codes, minlength=len(BIAS_CATEGORIES))
    tox: dict[str, np.ndarray] = {}
    atk: dict[str, np.ndarray] = {}
    counts: dict[str, int] = {}
    for name, code in category_index.items():
        rows = np.nonzero(codes == code)[0][:max_per_bias]
        tox[name] = severe[rows]
        atk[name] = attack[rows]
        counts[name] = int(total_counts[code])

    return BiasAnalysis(toxicity=tox, attack=atk, comment_counts=counts)
