"""URL analysis (§4.2.1, Table 2).

TLD and second-level-domain ranking, scheme census (HTTPS/HTTP/file/
browser), the protocol-only and trailing-slash duplicate counts, GET-
parameter over-counting, and the per-URL comment-volume ranking that
surfaces fringe domains.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from urllib.parse import urlsplit

import numpy as np

from repro.store import Corpus

__all__ = ["UrlTableStats", "analyze_urls", "second_level_domain", "tld_of"]

# Multi-label suffixes treated as a single effective TLD, as Table 2 does
# (bbc.co.uk counts toward .uk).
_COMPOSITE_SUFFIXES = (".co.uk", ".org.uk", ".ac.uk", ".co.nz", ".com.au")


def tld_of(url: str) -> str | None:
    """Effective TLD of a URL (None for non-network schemes)."""
    parts = urlsplit(url)
    if parts.scheme not in ("http", "https"):
        return None
    host = parts.netloc.lower().rsplit(":", 1)[0]
    if "." not in host:
        return None
    return "." + host.rsplit(".", 1)[1]


def second_level_domain(url: str) -> str | None:
    """Registrable domain, respecting composite public suffixes."""
    parts = urlsplit(url)
    if parts.scheme not in ("http", "https"):
        return None
    host = parts.netloc.lower().rsplit(":", 1)[0]
    for suffix in _COMPOSITE_SUFFIXES:
        if host.endswith(suffix):
            stem = host[: -len(suffix)]
            if not stem:
                return None
            return stem.rsplit(".", 1)[-1] + suffix
    if host.count(".") == 0:
        return None
    pieces = host.rsplit(".", 2)
    return ".".join(pieces[-2:])


@dataclass
class UrlTableStats:
    """Table 2 plus the §4.2.1 anomaly census."""

    total_urls: int
    tld_counts: dict[str, int] = field(default_factory=dict)
    domain_counts: dict[str, int] = field(default_factory=dict)
    scheme_counts: dict[str, int] = field(default_factory=dict)
    protocol_duplicates: int = 0
    trailing_slash_duplicates: int = 0
    multi_param_urls: int = 0
    median_volume_by_domain: dict[str, float] = field(default_factory=dict)
    top_volume_urls: list[tuple[int, str]] = field(default_factory=list)

    def top_tlds(self, k: int = 10) -> list[tuple[str, int]]:
        return sorted(self.tld_counts.items(), key=lambda x: -x[1])[:k]

    def top_domains(self, k: int = 10) -> list[tuple[str, int]]:
        return sorted(self.domain_counts.items(), key=lambda x: -x[1])[:k]

    def tld_fraction(self, tld: str) -> float:
        return self.tld_counts.get(tld, 0) / self.total_urls if self.total_urls else 0.0

    def domain_fraction(self, domain: str) -> float:
        return (
            self.domain_counts.get(domain, 0) / self.total_urls
            if self.total_urls
            else 0.0
        )


def analyze_urls(result: Corpus) -> UrlTableStats:
    """Run the §4.2.1 census over the crawled URL set."""
    urls = [u.url for u in result.urls.values()]
    stats = UrlTableStats(total_urls=len(urls))

    https_set: set[str] = set()
    for url in urls:
        scheme = url.split(":", 1)[0].lower() if ":" in url else "unknown"
        stats.scheme_counts[scheme] = stats.scheme_counts.get(scheme, 0) + 1
        if scheme == "https":
            https_set.add(url[len("https://"):])
        tld = tld_of(url)
        if tld is not None:
            stats.tld_counts[tld] = stats.tld_counts.get(tld, 0) + 1
        domain = second_level_domain(url)
        if domain is not None:
            stats.domain_counts[domain] = stats.domain_counts.get(domain, 0) + 1
        query = urlsplit(url).query if "://" in url else ""
        if query.count("&") >= 1:
            stats.multi_param_urls += 1

    # Protocol-only duplicates: http:// URL whose https:// twin exists.
    all_urls = set(urls)
    for url in urls:
        if url.startswith("http://") and url[len("http://"):] in https_set:
            stats.protocol_duplicates += 1
        if (
            url.endswith("/")
            and url[:-1] in all_urls
        ):
            stats.trailing_slash_duplicates += 1

    # Per-URL comment volume, by domain.
    volumes: dict[str, list[int]] = {}
    by_url = result.comments_by_url()
    top: list[tuple[int, str]] = []
    for record in result.urls.values():
        count = len(by_url.get(record.commenturl_id, []))
        top.append((count, record.url))
        domain = second_level_domain(record.url)
        if domain is not None:
            volumes.setdefault(domain, []).append(count)
    top.sort(reverse=True)
    stats.top_volume_urls = top[:20]
    stats.median_volume_by_domain = {
        domain: float(np.median(counts))
        for domain, counts in volumes.items()
        if counts
    }
    return stats
