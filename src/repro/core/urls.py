"""URL analysis (§4.2.1, Table 2).

TLD and second-level-domain ranking, scheme census (HTTPS/HTTP/file/
browser), the protocol-only and trailing-slash duplicate counts, GET-
parameter over-counting, and the per-URL comment-volume ranking that
surfaces fringe domains.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from urllib.parse import urlsplit

import numpy as np

from repro.store import Corpus, columns_of

__all__ = ["UrlTableStats", "analyze_urls", "second_level_domain", "tld_of"]

# Multi-label suffixes treated as a single effective TLD, as Table 2 does
# (bbc.co.uk counts toward .uk).
_COMPOSITE_SUFFIXES = (".co.uk", ".org.uk", ".ac.uk", ".co.nz", ".com.au")


def tld_of(url: str) -> str | None:
    """Effective TLD of a URL (None for non-network schemes)."""
    parts = urlsplit(url)
    if parts.scheme not in ("http", "https"):
        return None
    host = parts.netloc.lower().rsplit(":", 1)[0]
    if "." not in host:
        return None
    return "." + host.rsplit(".", 1)[1]


def second_level_domain(url: str) -> str | None:
    """Registrable domain, respecting composite public suffixes."""
    parts = urlsplit(url)
    if parts.scheme not in ("http", "https"):
        return None
    host = parts.netloc.lower().rsplit(":", 1)[0]
    for suffix in _COMPOSITE_SUFFIXES:
        if host.endswith(suffix):
            stem = host[: -len(suffix)]
            if not stem:
                return None
            return stem.rsplit(".", 1)[-1] + suffix
    if host.count(".") == 0:
        return None
    pieces = host.rsplit(".", 2)
    return ".".join(pieces[-2:])


@dataclass
class UrlTableStats:
    """Table 2 plus the §4.2.1 anomaly census."""

    total_urls: int
    tld_counts: dict[str, int] = field(default_factory=dict)
    domain_counts: dict[str, int] = field(default_factory=dict)
    scheme_counts: dict[str, int] = field(default_factory=dict)
    protocol_duplicates: int = 0
    trailing_slash_duplicates: int = 0
    multi_param_urls: int = 0
    median_volume_by_domain: dict[str, float] = field(default_factory=dict)
    top_volume_urls: list[tuple[int, str]] = field(default_factory=list)

    def top_tlds(self, k: int = 10) -> list[tuple[str, int]]:
        return sorted(self.tld_counts.items(), key=lambda x: -x[1])[:k]

    def top_domains(self, k: int = 10) -> list[tuple[str, int]]:
        return sorted(self.domain_counts.items(), key=lambda x: -x[1])[:k]

    def tld_fraction(self, tld: str) -> float:
        return self.tld_counts.get(tld, 0) / self.total_urls if self.total_urls else 0.0

    def domain_fraction(self, domain: str) -> float:
        return (
            self.domain_counts.get(domain, 0) / self.total_urls
            if self.total_urls
            else 0.0
        )


def analyze_urls(result: Corpus) -> UrlTableStats:
    """Run the §4.2.1 census over the crawled URL set."""
    view = columns_of(result)
    if view is not None:
        return _analyze_urls_columnar(view)
    urls = [u.url for u in result.urls.values()]
    stats = UrlTableStats(total_urls=len(urls))

    https_set: set[str] = set()
    for url in urls:
        scheme = url.split(":", 1)[0].lower() if ":" in url else "unknown"
        stats.scheme_counts[scheme] = stats.scheme_counts.get(scheme, 0) + 1
        if scheme == "https":
            https_set.add(url[len("https://"):])
        tld = tld_of(url)
        if tld is not None:
            stats.tld_counts[tld] = stats.tld_counts.get(tld, 0) + 1
        domain = second_level_domain(url)
        if domain is not None:
            stats.domain_counts[domain] = stats.domain_counts.get(domain, 0) + 1
        query = urlsplit(url).query if "://" in url else ""
        if query.count("&") >= 1:
            stats.multi_param_urls += 1

    # Protocol-only duplicates: http:// URL whose https:// twin exists.
    all_urls = set(urls)
    for url in urls:
        if url.startswith("http://") and url[len("http://"):] in https_set:
            stats.protocol_duplicates += 1
        if (
            url.endswith("/")
            and url[:-1] in all_urls
        ):
            stats.trailing_slash_duplicates += 1

    # Per-URL comment volume, by domain.
    volumes: dict[str, list[int]] = {}
    by_url = result.comments_by_url()
    top: list[tuple[int, str]] = []
    for record in result.urls.values():
        count = len(by_url.get(record.commenturl_id, []))
        top.append((count, record.url))
        domain = second_level_domain(record.url)
        if domain is not None:
            volumes.setdefault(domain, []).append(count)
    top.sort(reverse=True)
    stats.top_volume_urls = top[:20]
    stats.median_volume_by_domain = {
        domain: float(np.median(counts))
        for domain, counts in volumes.items()
        if counts
    }
    return stats


def _ordered_counts(values: np.ndarray, n_names: int) -> list[tuple[int, int]]:
    """Occurrence counts per ordinal as (ordinal, count) pairs.

    Pairs come in first-appearance order over ``values`` (negative
    ordinals meaning "no value" are skipped), which is exactly the
    insertion order the dict path produces.
    """
    valid = values[values >= 0]
    if valid.size == 0:
        return []
    counts = np.bincount(valid, minlength=n_names)
    first = np.full(n_names, -1, dtype=np.int64)
    first[valid[::-1]] = np.arange(valid.size - 1, -1, -1, dtype=np.int64)
    present = np.nonzero(counts)[0]
    order = present[np.argsort(first[present], kind="stable")]
    return [(int(ordinal), int(counts[ordinal])) for ordinal in order]


def _analyze_urls_columnar(view) -> UrlTableStats:
    """Vectorized §4.2.1 census (bit-identical to the dict path)."""
    urls = view.urls
    tables = view.tables
    stats = UrlTableStats(total_urls=urls.n)

    scheme_names = tables.schemes.values
    for ordinal, count in _ordered_counts(urls.scheme, len(scheme_names)):
        stats.scheme_counts[scheme_names[ordinal]] = count
    tld_names = tables.tlds.values
    for ordinal, count in _ordered_counts(urls.tld, len(tld_names)):
        stats.tld_counts[tld_names[ordinal]] = count
    domain_names = tables.domains.values
    domain_pairs = _ordered_counts(urls.domain, len(domain_names))
    for ordinal, count in domain_pairs:
        stats.domain_counts[domain_names[ordinal]] = count
    stats.multi_param_urls = int(urls.multi.sum())

    # Duplicate censuses need the URL strings; flag each *distinct*
    # string once, then weight by per-record occurrence.
    url_names = tables.url_strings.values
    distinct = np.unique(urls.str_ord)
    distinct_strs = [url_names[ordinal] for ordinal in distinct.tolist()]
    https_set = {
        s[len("https://"):] for s in distinct_strs if s.startswith("https://")
    }
    all_urls = set(distinct_strs)
    protocol_dup = np.zeros(len(url_names), dtype=bool)
    trailing_dup = np.zeros(len(url_names), dtype=bool)
    for ordinal, text in zip(distinct.tolist(), distinct_strs):
        if text.startswith("http://") and text[len("http://"):] in https_set:
            protocol_dup[ordinal] = True
        if text.endswith("/") and text[:-1] in all_urls:
            trailing_dup[ordinal] = True
    stats.protocol_duplicates = int(protocol_dup[urls.str_ord].sum())
    stats.trailing_slash_duplicates = int(trailing_dup[urls.str_ord].sum())

    # Per-URL comment volume: top-20 by (count, url) descending, and the
    # per-domain medians keyed in first-appearance order.
    volumes = view.comments_per_url_id()[urls.key]
    url_arr = np.asarray(url_names, dtype=np.str_)[urls.str_ord]
    ranked = np.lexsort((url_arr, volumes))[::-1][:20]
    stats.top_volume_urls = [
        (int(volumes[i]), str(url_arr[i])) for i in ranked
    ]
    with_domain = urls.domain >= 0
    domains = urls.domain[with_domain]
    domain_volumes = volumes[with_domain]
    grouped = domain_volumes[np.argsort(domains, kind="stable")]
    group_counts = np.bincount(domains, minlength=len(domain_names))
    offsets = np.concatenate([[0], np.cumsum(group_counts, dtype=np.int64)])
    for ordinal, _ in domain_pairs:
        start, end = offsets[ordinal], offsets[ordinal + 1]
        stats.median_volume_by_domain[domain_names[ordinal]] = float(
            np.median(grouped[start:end])
        )
    return stats
