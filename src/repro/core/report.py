"""Text rendering and JSON serialization of the reproduced results.

Formats a :class:`~repro.core.pipeline.ReproductionReport` the way the
paper presents its results: Tables 1-3 as aligned tables, figures as
compact numeric summaries.  Used by the CLI and the examples.

:func:`report_to_payload` flattens every §4 analysis into a JSON-ready
dict.  It deliberately excludes ``report.extras`` (wall times and cache
counters differ run to run) so two payloads from the same world are
byte-comparable — the CI columnar-parity step diffs a columnar run
against a ``--no-columns`` run this way.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.core.pipeline import ReproductionReport
from repro.stats.hypothesis_tests import KSResult

__all__ = [
    "render_figures_summary",
    "render_full_report",
    "render_headlines",
    "render_stage_timings",
    "render_table1",
    "render_table2",
    "render_table3",
    "report_to_payload",
]


def _table(title: str, headers: tuple[str, ...], rows: Iterable[tuple]) -> str:
    rows = [tuple(str(cell) for cell in row) for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rows)) if rows else len(headers[i])
        for i in range(len(headers))
    ]
    def fmt(cells: tuple[str, ...]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))
    rule = "-" * (sum(widths) + 2 * (len(headers) - 1))
    lines = [title, "=" * len(title), fmt(headers), rule]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def render_table1(report: ReproductionReport) -> str:
    """Table 1 — user attribute flags and comment view-filters."""
    flags = report.user_flags
    flag_rows = [
        (name, count, f"{count / flags.n_active:.2%}" if flags.n_active else "-")
        for name, count in sorted(flags.flag_counts.items())
    ]
    filter_rows = [
        (name, count, f"{count / flags.n_active:.2%}" if flags.n_active else "-")
        for name, count in sorted(flags.filter_counts.items())
    ]
    return "\n\n".join([
        _table(
            f"Table 1a — user flags (n={flags.n_active})",
            ("flag", "count", "fraction"), flag_rows,
        ),
        _table(
            f"Table 1b — comment view-filters (n={flags.n_active})",
            ("filter", "count", "fraction"), filter_rows,
        ),
    ])


def render_table2(report: ReproductionReport, top_k: int = 10) -> str:
    """Table 2 — most frequently commented TLDs and domains."""
    urls = report.url_table
    tld_rows = [
        (tld, count, f"{count / urls.total_urls:.2%}")
        for tld, count in urls.top_tlds(top_k)
    ]
    domain_rows = [
        (domain, count, f"{count / urls.total_urls:.2%}")
        for domain, count in urls.top_domains(top_k)
    ]
    return "\n\n".join([
        _table(
            f"Table 2a — top TLDs (of {urls.total_urls} URLs)",
            ("tld", "count", "fraction"), tld_rows,
        ),
        _table(
            "Table 2b — top domains",
            ("domain", "count", "fraction"), domain_rows,
        ),
    ])


def render_table3(report: ReproductionReport) -> str:
    """Table 3 — overview of baseline toxicity datasets."""
    overview = report.baselines
    rows = [
        ("NY Times", f"{overview.nytimes_comments:,}", "n/a"),
        ("Daily Mail", f"{overview.dailymail_comments:,}", "n/a"),
        ("Reddit", f"{overview.reddit_comments:,}",
         f"{overview.reddit_matched_commenters:,}"),
    ]
    return _table(
        "Table 3 — baseline datasets",
        ("dataset", "# comments", "# Dissenter commenters"), rows,
    )


def render_headlines(report: ReproductionReport) -> str:
    """The §4.1 headline census."""
    h = report.headlines
    rows = [
        ("Dissenter users", f"{h.total_users:,}"),
        ("active users", f"{h.active_users:,} ({h.active_fraction:.1%})"),
        ("comments + replies",
         f"{h.total_comments:,} ({h.total_replies:,} replies)"),
        ("distinct URLs", f"{h.distinct_urls:,}"),
        ("first-month joiners", f"{h.first_month_join_fraction:.1%}"),
        ("orphaned commenters", h.orphaned_commenters),
        ("'censorship' in bio", f"{h.censorship_bio_fraction:.1%}"),
        ("NSFW / offensive comments",
         f"{h.nsfw_comments} / {h.offensive_comments}"),
        ("English / German comments",
         f"{report.languages.fraction('en'):.1%} / "
         f"{report.languages.fraction('de'):.1%}"),
    ]
    return _table("§4.1 — headline census", ("quantity", "measured"), rows)


def render_figures_summary(report: ReproductionReport) -> str:
    """One-line-per-figure numeric summary."""
    shadow = report.shadow
    relative = report.relative
    social = report.social
    rows = [
        ("Fig 2: rank corr(time, gab id)",
         f"{report.growth.spearman_rho:.3f} "
         f"({report.growth.anomalous_count} anomalies)"),
        ("Fig 3: top-14% comment share",
         f"{report.concentration.top_14pct_share:.1%}"),
        ("Fig 4: offensive >0.95 reject",
         f"{shadow.exceed_fraction('LIKELY_TO_REJECT', 'offensive', 0.95):.0%}"),
        ("Fig 5: toxicity peak at net=0",
         f"{report.votes.bucket_means.get(0, float('nan')):.3f}"),
        ("Fig 6: Dissenter-/Reddit-exclusive",
         f"{report.ratios.dissenter_exclusive:.0%} / "
         f"{report.ratios.reddit_exclusive:.0%}"
         if report.ratios else "n/a"),
        ("Fig 7a: Dissenter reject >= 0.5",
         f"{relative.exceed_fraction('LIKELY_TO_REJECT', 'dissenter', 0.5):.0%}"),
        ("Fig 7b: Dissenter/Reddit tox >= 0.5",
         f"{relative.exceed_fraction('SEVERE_TOXICITY', 'dissenter', 0.5):.2f}"
         f" / {relative.exceed_fraction('SEVERE_TOXICITY', 'reddit', 0.5):.2f}"),
        ("Fig 8: tox median center/right",
         f"{report.bias.median_toxicity('center'):.3f} / "
         f"{report.bias.median_toxicity('right'):.3f}"),
        ("Fig 9: isolated users", f"{social.isolated_fraction:.1%}"),
        ("Hateful core (size/components/giant)",
         f"{report.hateful_core.size} / {report.hateful_core.n_components}"
         f" / {report.hateful_core.giant_size}"),
    ]
    return _table("Figures — numeric summary", ("artefact", "measured"), rows)


def render_stage_timings(report: ReproductionReport) -> str:
    """Pipeline observability: per-stage wall time + scoring counters."""
    seconds = report.stage_seconds
    counters = report.scoring_counters
    if not seconds:
        return "stage timings: (not recorded)"
    total = sum(seconds.values())
    timing = "  ".join(
        f"{stage}={value:.2f}s" for stage, value in seconds.items()
    )
    line = f"stage timings: {timing}  total={total:.2f}s"
    if counters:
        line += (
            f"\nscoring: {counters.get('misses', 0):,} unique texts scored, "
            f"{counters.get('hits', 0):,} cache hits, "
            f"{counters.get('batches', 0):,} batches"
        )
    return line


def _arr(values) -> list:
    """ndarray (or sequence) -> plain list for JSON."""
    return np.asarray(values).tolist()


def _ks_payload(tests: dict[tuple[str, str], KSResult]) -> dict[str, dict]:
    return {
        f"{a}|{b}": {
            "statistic": result.statistic,
            "pvalue": result.pvalue,
            "n1": result.n1,
            "n2": result.n2,
        }
        for (a, b), result in tests.items()
    }


def _fit_payload(fit) -> dict | None:
    if fit is None:
        return None
    return {
        "alpha": float(fit.alpha),
        "xmin": int(fit.xmin),
        "ks_distance": float(fit.ks_distance),
        "n_tail": int(fit.n_tail),
    }


def report_to_payload(report: ReproductionReport) -> dict:
    """Flatten every §4 analysis into a JSON-serializable dict.

    ``report.extras`` is excluded on purpose: stage timings and cache
    counters legitimately differ between otherwise identical runs (and
    between the columnar and dict analysis paths), while everything
    serialized here must not.
    """
    validation = report.validation
    growth = report.growth
    concentration = report.concentration
    urls = report.url_table
    votes = report.votes
    social = report.social
    core = report.hateful_core
    return {
        "validation": {
            "comments_checked": validation.comments_checked,
            "timestamp_mismatches": validation.timestamp_mismatches,
            "dangling_url_refs": validation.dangling_url_refs,
            "dangling_parent_refs": validation.dangling_parent_refs,
            "ids_outside_window": validation.ids_outside_window,
            "shadow_sample_size": validation.shadow_sample_size,
            "shadow_verified": validation.shadow_verified,
            "issues": list(validation.issues),
        },
        "growth": {
            "created_at": _arr(growth.created_at),
            "gab_ids": _arr(growth.gab_ids),
            "anomalous_count": growth.anomalous_count,
            "spearman_rho": growth.spearman_rho,
        },
        "concentration": {
            "counts": _arr(concentration.counts),
            "top_14pct_share": concentration.top_14pct_share,
            "top_shares": {
                str(fraction): share
                for fraction, share in concentration.gini_like_top_shares.items()
            },
        },
        "user_flags": {
            "n_active": report.user_flags.n_active,
            "flag_counts": dict(report.user_flags.flag_counts),
            "filter_counts": dict(report.user_flags.filter_counts),
        },
        "headlines": {
            "total_users": report.headlines.total_users,
            "active_users": report.headlines.active_users,
            "total_comments": report.headlines.total_comments,
            "total_replies": report.headlines.total_replies,
            "distinct_urls": report.headlines.distinct_urls,
            "first_month_join_fraction":
                report.headlines.first_month_join_fraction,
            "orphaned_commenters": report.headlines.orphaned_commenters,
            "censorship_bio_fraction":
                report.headlines.censorship_bio_fraction,
            "nsfw_comments": report.headlines.nsfw_comments,
            "offensive_comments": report.headlines.offensive_comments,
        },
        "url_table": {
            "total_urls": urls.total_urls,
            "tld_counts": dict(urls.tld_counts),
            "domain_counts": dict(urls.domain_counts),
            "scheme_counts": dict(urls.scheme_counts),
            "protocol_duplicates": urls.protocol_duplicates,
            "trailing_slash_duplicates": urls.trailing_slash_duplicates,
            "multi_param_urls": urls.multi_param_urls,
            "median_volume_by_domain": dict(urls.median_volume_by_domain),
            "top_volume_urls": [
                [count, url] for count, url in urls.top_volume_urls
            ],
        },
        "languages": {
            "total": report.languages.total,
            "counts": dict(report.languages.counts),
        },
        "youtube": {
            "total_items": report.youtube.total_items,
            "kind_counts": dict(report.youtube.kind_counts),
            "status_counts": dict(report.youtube.status_counts),
            "owner_counts": dict(report.youtube.owner_counts),
            "comments_disabled": report.youtube.comments_disabled,
            "active_videos": report.youtube.active_videos,
            "youtube_url_fraction_of_corpus":
                report.youtube.youtube_url_fraction_of_corpus,
        },
        "shadow": {
            attribute: {
                comment_class: _arr(values)
                for comment_class, values in by_class.items()
            }
            for attribute, by_class in report.shadow.scores.items()
        },
        "votes": {
            "net_scores": _arr(votes.net_scores),
            "mean_toxicity": _arr(votes.mean_toxicity),
            "median_toxicity": _arr(votes.median_toxicity),
            "positive_urls": votes.positive_urls,
            "negative_urls": votes.negative_urls,
            "zero_urls": votes.zero_urls,
            "in_band_fraction": votes.in_band_fraction,
            "bucket_means": {
                str(net): mean for net, mean in votes.bucket_means.items()
            },
            "bucket_medians": {
                str(net): median
                for net, median in votes.bucket_medians.items()
            },
        },
        "baselines": {
            "nytimes_comments": report.baselines.nytimes_comments,
            "dailymail_comments": report.baselines.dailymail_comments,
            "reddit_comments": report.baselines.reddit_comments,
            "reddit_matched_users": report.baselines.reddit_matched_users,
            "reddit_matched_commenters":
                report.baselines.reddit_matched_commenters,
        },
        "ratios": (
            None
            if report.ratios is None
            else {
                "ratios": _arr(report.ratios.ratios),
                "dissenter_exclusive": report.ratios.dissenter_exclusive,
                "reddit_exclusive": report.ratios.reddit_exclusive,
                "n_users": report.ratios.n_users,
            }
        ),
        "relative": {
            attribute: {
                dataset: _arr(values) for dataset, values in by_dataset.items()
            }
            for attribute, by_dataset in report.relative.scores.items()
        },
        "bias": {
            "toxicity": {
                b: _arr(v) for b, v in report.bias.toxicity.items()
            },
            "attack": {b: _arr(v) for b, v in report.bias.attack.items()},
            "comment_counts": dict(report.bias.comment_counts),
            "ks_toxicity": _ks_payload(report.bias.ks_toxicity),
            "ks_attack": _ks_payload(report.bias.ks_attack),
        },
        "social": {
            "n_users": social.n_users,
            "isolated_users": social.isolated_users,
            "in_degrees": _arr(social.in_degrees),
            "out_degrees": _arr(social.out_degrees),
            "top_in": [[gab_id, degree] for gab_id, degree in social.top_in],
            "top_out": [
                [gab_id, degree] for gab_id, degree in social.top_out
            ],
            "in_degree_fit": _fit_payload(social.in_degree_fit),
            "out_degree_fit": _fit_payload(social.out_degree_fit),
            "toxicity_by_in_degree": {
                str(bucket): list(pair)
                for bucket, pair in social.toxicity_by_in_degree.items()
            },
            "toxicity_by_out_degree": {
                str(bucket): list(pair)
                for bucket, pair in social.toxicity_by_out_degree.items()
            },
        },
        "hateful_core": {
            "members": sorted(core.members),
            "component_sizes": list(core.component_sizes),
            "qualifying_users": core.qualifying_users,
        },
    }


def render_full_report(report: ReproductionReport) -> str:
    """Everything, in paper order."""
    return "\n\n".join([
        render_headlines(report),
        render_table1(report),
        render_table2(report),
        render_table3(report),
        render_figures_summary(report),
    ])
