"""Text rendering of the reproduced tables and figures.

Formats a :class:`~repro.core.pipeline.ReproductionReport` the way the
paper presents its results: Tables 1-3 as aligned tables, figures as
compact numeric summaries.  Used by the CLI and the examples.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.pipeline import ReproductionReport

__all__ = [
    "render_figures_summary",
    "render_full_report",
    "render_headlines",
    "render_stage_timings",
    "render_table1",
    "render_table2",
    "render_table3",
]


def _table(title: str, headers: tuple[str, ...], rows: Iterable[tuple]) -> str:
    rows = [tuple(str(cell) for cell in row) for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rows)) if rows else len(headers[i])
        for i in range(len(headers))
    ]
    def fmt(cells: tuple[str, ...]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))
    rule = "-" * (sum(widths) + 2 * (len(headers) - 1))
    lines = [title, "=" * len(title), fmt(headers), rule]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def render_table1(report: ReproductionReport) -> str:
    """Table 1 — user attribute flags and comment view-filters."""
    flags = report.user_flags
    flag_rows = [
        (name, count, f"{count / flags.n_active:.2%}" if flags.n_active else "-")
        for name, count in sorted(flags.flag_counts.items())
    ]
    filter_rows = [
        (name, count, f"{count / flags.n_active:.2%}" if flags.n_active else "-")
        for name, count in sorted(flags.filter_counts.items())
    ]
    return "\n\n".join([
        _table(
            f"Table 1a — user flags (n={flags.n_active})",
            ("flag", "count", "fraction"), flag_rows,
        ),
        _table(
            f"Table 1b — comment view-filters (n={flags.n_active})",
            ("filter", "count", "fraction"), filter_rows,
        ),
    ])


def render_table2(report: ReproductionReport, top_k: int = 10) -> str:
    """Table 2 — most frequently commented TLDs and domains."""
    urls = report.url_table
    tld_rows = [
        (tld, count, f"{count / urls.total_urls:.2%}")
        for tld, count in urls.top_tlds(top_k)
    ]
    domain_rows = [
        (domain, count, f"{count / urls.total_urls:.2%}")
        for domain, count in urls.top_domains(top_k)
    ]
    return "\n\n".join([
        _table(
            f"Table 2a — top TLDs (of {urls.total_urls} URLs)",
            ("tld", "count", "fraction"), tld_rows,
        ),
        _table(
            "Table 2b — top domains",
            ("domain", "count", "fraction"), domain_rows,
        ),
    ])


def render_table3(report: ReproductionReport) -> str:
    """Table 3 — overview of baseline toxicity datasets."""
    overview = report.baselines
    rows = [
        ("NY Times", f"{overview.nytimes_comments:,}", "n/a"),
        ("Daily Mail", f"{overview.dailymail_comments:,}", "n/a"),
        ("Reddit", f"{overview.reddit_comments:,}",
         f"{overview.reddit_matched_commenters:,}"),
    ]
    return _table(
        "Table 3 — baseline datasets",
        ("dataset", "# comments", "# Dissenter commenters"), rows,
    )


def render_headlines(report: ReproductionReport) -> str:
    """The §4.1 headline census."""
    h = report.headlines
    rows = [
        ("Dissenter users", f"{h.total_users:,}"),
        ("active users", f"{h.active_users:,} ({h.active_fraction:.1%})"),
        ("comments + replies",
         f"{h.total_comments:,} ({h.total_replies:,} replies)"),
        ("distinct URLs", f"{h.distinct_urls:,}"),
        ("first-month joiners", f"{h.first_month_join_fraction:.1%}"),
        ("orphaned commenters", h.orphaned_commenters),
        ("'censorship' in bio", f"{h.censorship_bio_fraction:.1%}"),
        ("NSFW / offensive comments",
         f"{h.nsfw_comments} / {h.offensive_comments}"),
        ("English / German comments",
         f"{report.languages.fraction('en'):.1%} / "
         f"{report.languages.fraction('de'):.1%}"),
    ]
    return _table("§4.1 — headline census", ("quantity", "measured"), rows)


def render_figures_summary(report: ReproductionReport) -> str:
    """One-line-per-figure numeric summary."""
    shadow = report.shadow
    relative = report.relative
    social = report.social
    rows = [
        ("Fig 2: rank corr(time, gab id)",
         f"{report.growth.spearman_rho:.3f} "
         f"({report.growth.anomalous_count} anomalies)"),
        ("Fig 3: top-14% comment share",
         f"{report.concentration.top_14pct_share:.1%}"),
        ("Fig 4: offensive >0.95 reject",
         f"{shadow.exceed_fraction('LIKELY_TO_REJECT', 'offensive', 0.95):.0%}"),
        ("Fig 5: toxicity peak at net=0",
         f"{report.votes.bucket_means.get(0, float('nan')):.3f}"),
        ("Fig 6: Dissenter-/Reddit-exclusive",
         f"{report.ratios.dissenter_exclusive:.0%} / "
         f"{report.ratios.reddit_exclusive:.0%}"
         if report.ratios else "n/a"),
        ("Fig 7a: Dissenter reject >= 0.5",
         f"{relative.exceed_fraction('LIKELY_TO_REJECT', 'dissenter', 0.5):.0%}"),
        ("Fig 7b: Dissenter/Reddit tox >= 0.5",
         f"{relative.exceed_fraction('SEVERE_TOXICITY', 'dissenter', 0.5):.2f}"
         f" / {relative.exceed_fraction('SEVERE_TOXICITY', 'reddit', 0.5):.2f}"),
        ("Fig 8: tox median center/right",
         f"{report.bias.median_toxicity('center'):.3f} / "
         f"{report.bias.median_toxicity('right'):.3f}"),
        ("Fig 9: isolated users", f"{social.isolated_fraction:.1%}"),
        ("Hateful core (size/components/giant)",
         f"{report.hateful_core.size} / {report.hateful_core.n_components}"
         f" / {report.hateful_core.giant_size}"),
    ]
    return _table("Figures — numeric summary", ("artefact", "measured"), rows)


def render_stage_timings(report: ReproductionReport) -> str:
    """Pipeline observability: per-stage wall time + scoring counters."""
    seconds = report.stage_seconds
    counters = report.scoring_counters
    if not seconds:
        return "stage timings: (not recorded)"
    total = sum(seconds.values())
    timing = "  ".join(
        f"{stage}={value:.2f}s" for stage, value in seconds.items()
    )
    line = f"stage timings: {timing}  total={total:.2f}s"
    if counters:
        line += (
            f"\nscoring: {counters.get('misses', 0):,} unique texts scored, "
            f"{counters.get('hits', 0):,} cache hits, "
            f"{counters.get('batches', 0):,} batches"
        )
    return line


def render_full_report(report: ReproductionReport) -> str:
    """Everything, in paper order."""
    return "\n\n".join([
        render_headlines(report),
        render_table1(report),
        render_table2(report),
        render_table3(report),
        render_figures_summary(report),
    ])
