"""Shadow-overlay toxicity (§4.3.1, Figure 4).

Compares Perspective score distributions of NSFW-only and offensive-only
comments against the full corpus for OBSCENE, SEVERE_TOXICITY, and
LIKELY_TO_REJECT.  The paper's findings: "offensive" ≫ NSFW ≫ all, with
80% of offensive comments above 0.95 LIKELY_TO_REJECT.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.scoring import ScoreStore
from repro.store import Corpus
from repro.stats.distributions import ECDF

__all__ = ["ShadowToxicity", "analyze_shadow_toxicity"]

FIG4_ATTRIBUTES = ("LIKELY_TO_REJECT", "OBSCENE", "SEVERE_TOXICITY")


@dataclass
class ShadowToxicity:
    """Figure 4's score samples: attribute -> class -> scores."""

    scores: dict[str, dict[str, np.ndarray]] = field(default_factory=dict)

    def ecdf(self, attribute: str, comment_class: str) -> ECDF:
        return ECDF(self.scores[attribute][comment_class])

    def exceed_fraction(
        self, attribute: str, comment_class: str, threshold: float
    ) -> float:
        values = self.scores[attribute][comment_class]
        if values.size == 0:
            return 0.0
        return float((values > threshold).mean())

    def classes(self) -> list[str]:
        first = next(iter(self.scores.values()))
        return list(first)


def analyze_shadow_toxicity(
    result: Corpus,
    store: ScoreStore | None = None,
    max_all_sample: int = 20_000,
) -> ShadowToxicity:
    """Score the three comment classes on the Fig. 4 attributes.

    Args:
        result: crawl corpus with shadow labels applied.
        store: shared score store (ideally pre-populated by the
            pipeline's scoring pass).
        max_all_sample: cap on the "all comments" class (deterministic
            prefix sample) to bound scoring cost at large scales.
    """
    store = store or ScoreStore()
    nsfw = [
        c.text for c in result.comments.values() if c.shadow_label == "nsfw"
    ]
    offensive = [
        c.text
        for c in result.comments.values()
        if c.shadow_label == "offensive"
    ]
    everything = [c.text for c in result.comments.values()][:max_all_sample]

    analysis = ShadowToxicity()
    by_class = {
        "all": store.score_many(everything),
        "nsfw": store.score_many(nsfw),
        "offensive": store.score_many(offensive),
    }
    for attribute in FIG4_ATTRIBUTES:
        analysis.scores[attribute] = {
            cls: np.asarray([row[attribute] for row in rows])
            for cls, rows in by_class.items()
        }
    return analysis
