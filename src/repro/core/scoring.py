"""Single-pass scoring layer: the :class:`ScoreStore`.

The paper scores each of its 1.68M comments with three classifiers
exactly once and reuses those scores across every §4 analysis.  The
``ScoreStore`` is that separation as a component: a memoising, batch-
oriented layer over the Perspective models (plus the dictionary and SVM
channels used by the A2 ablation) that guarantees each unique text is
scored at most once per process, no matter how many analyses ask for it.

Contracts:

* ``score(text)`` returns the *cached dict itself* — the same object on
  every call for the same text.  Callers must treat it as read-only.
* ``score_many(texts)`` dedupes the batch, scores only the texts the
  store has never seen, and returns results in input order.  With
  ``workers > 1`` the missing texts are scored on a
  :mod:`concurrent.futures` thread pool; because the underlying scorers
  are pure functions of the text, results are bit-identical regardless
  of worker count.
* ``counters`` exposes hit/miss/batch accounting so callers (and the
  integration tests) can assert the exactly-once property.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.perspective.models import PerspectiveModels

__all__ = ["ScoreStore", "ScoreStoreCounters"]


@dataclass
class ScoreStoreCounters:
    """Hit/miss/batch accounting for every scoring channel."""

    hits: int = 0                 # Perspective lookups served from cache
    misses: int = 0               # Perspective texts actually scored
    batches: int = 0              # score_many() calls
    dictionary_hits: int = 0
    dictionary_misses: int = 0
    svm_hits: int = 0
    svm_misses: int = 0

    @property
    def unique_texts(self) -> int:
        """Distinct texts the Perspective channel has scored."""
        return self.misses

    def as_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "batches": self.batches,
            "dictionary_hits": self.dictionary_hits,
            "dictionary_misses": self.dictionary_misses,
            "svm_hits": self.svm_hits,
            "svm_misses": self.svm_misses,
        }


def _ordered_missing(texts: Sequence[str], cache: Mapping[str, object]) -> list[str]:
    """Unique texts absent from ``cache``, in first-seen order."""
    return [text for text in dict.fromkeys(texts) if text not in cache]


class ScoreStore:
    """Memoising, batch-oriented scoring layer for the measurement stack.

    Args:
        models: shared Perspective models (fresh ones when omitted).
        dictionary: hate dictionary for :meth:`dictionary_ratios`
            (built lazily when omitted).
        workers: default thread-pool size for :meth:`score_many`;
            ``0``/``1`` scores serially.
    """

    def __init__(
        self,
        models: PerspectiveModels | None = None,
        dictionary: object | None = None,
        workers: int = 0,
    ):
        self._models = models or PerspectiveModels()
        self._dictionary = dictionary
        self.workers = int(workers)
        self._executor: ThreadPoolExecutor | None = None
        self._executor_size = 0
        self._scores: dict[str, dict[str, float]] = {}
        self._dict_ratios: dict[str, float] = {}
        self._svm_scores: dict[str, float] = {}
        self._svm_ref: object | None = None
        self.counters = ScoreStoreCounters()

    @property
    def models(self) -> PerspectiveModels:
        return self._models

    def close(self) -> None:
        """Shut down the persistent scoring executor (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
            self._executor_size = 0

    def __del__(self):  # pragma: no cover - interpreter-shutdown path
        try:
            self.close()
        except Exception:
            pass

    def _pool(self, size: int) -> ThreadPoolExecutor:
        """The store's persistent executor, (re)built lazily per size.

        Spinning a fresh pool per batch costs thread creation/teardown
        on every ``score_many`` call; reusing one across batches is what
        the scoring benchmark measures.
        """
        if self._executor is None or self._executor_size != size:
            self.close()
            self._executor = ThreadPoolExecutor(
                max_workers=size, thread_name_prefix="scorestore"
            )
            self._executor_size = size
        return self._executor

    def __len__(self) -> int:
        return len(self._scores)

    def __contains__(self, text: str) -> bool:
        return text in self._scores

    # ------------------------------------------------------------------
    # Perspective channel.
    # ------------------------------------------------------------------

    def score(self, text: str) -> dict[str, float]:
        """All-attribute scores for one text (the cached dict itself)."""
        cached = self._scores.get(text)
        if cached is not None:
            self.counters.hits += 1
            return cached
        self.counters.misses += 1
        scores = self._models.score(text)
        self._scores[text] = scores
        return scores

    def score_many(
        self, texts: Iterable[str], workers: int | None = None
    ) -> list[dict[str, float]]:
        """Scores for a batch, in input order; each unique text scored once.

        Args:
            texts: the batch (duplicates allowed).
            workers: thread-pool size for the texts not yet cached;
                defaults to the store's ``workers``.
        """
        batch = list(texts)
        pool_size = self.workers if workers is None else int(workers)
        missing = _ordered_missing(batch, self._scores)
        self.counters.batches += 1
        self.counters.hits += len(batch) - len(missing)
        self.counters.misses += len(missing)
        if missing:
            if pool_size > 1:
                pool = self._pool(pool_size)
                computed = list(pool.map(self._models.score, missing))
            else:
                computed = self._models.score_many(missing)
            for text, scores in zip(missing, computed):
                self._scores[text] = scores
        return [self._scores[text] for text in batch]

    def prime(
        self,
        texts: Iterable[str],
        workers: int | None = None,
        chunk_size: int = 4096,
    ) -> int:
        """Warm the cache from a stream without materializing it.

        The streaming counterpart of :meth:`score_many` for the
        pipeline's scoring pass: texts are consumed lazily (e.g. the
        corpus store's ``texts()`` view chained with the baselines),
        deduplicated on the fly, and the not-yet-cached remainder is
        scored in bounded chunks.  Counter accounting is identical to
        one ``score_many`` call over the same stream: one batch, every
        duplicate or already-cached text a hit, every unique new text a
        miss — so the exactly-once assertions hold unchanged.

        Returns the number of texts consumed from the stream.
        """
        pool_size = self.workers if workers is None else int(workers)
        self.counters.batches += 1
        pending: list[str] = []
        pending_set: set[str] = set()
        total = 0

        def flush() -> None:
            if not pending:
                return
            self.counters.misses += len(pending)
            if pool_size > 1:
                computed = list(
                    self._pool(pool_size).map(self._models.score, pending)
                )
            else:
                computed = self._models.score_many(pending)
            for text, scores in zip(pending, computed):
                self._scores[text] = scores
            pending.clear()
            pending_set.clear()

        for text in texts:
            total += 1
            if text in self._scores or text in pending_set:
                self.counters.hits += 1
                continue
            pending.append(text)
            pending_set.add(text)
            if len(pending) >= chunk_size:
                flush()
        flush()
        return total

    def value(self, text: str, attribute: str) -> float:
        """One attribute's score for one text."""
        return self.score(text)[attribute]

    def attribute_values(
        self,
        texts: Iterable[str],
        attribute: str,
        workers: int | None = None,
    ) -> np.ndarray:
        """One attribute's scores over a batch, as a float array."""
        rows = self.score_many(texts, workers=workers)
        return np.asarray([row[attribute] for row in rows], dtype=float)

    # ------------------------------------------------------------------
    # Dictionary channel (A2 ablation).
    # ------------------------------------------------------------------

    def _ensure_dictionary(self):
        if self._dictionary is None:
            from repro.nlp.dictionary import HateDictionary

            self._dictionary = HateDictionary()
        return self._dictionary

    def dictionary_ratios(self, texts: Iterable[str]) -> np.ndarray:
        """Hate-dictionary hit ratios over a batch (cached per text)."""
        batch = list(texts)
        missing = _ordered_missing(batch, self._dict_ratios)
        self.counters.dictionary_hits += len(batch) - len(missing)
        self.counters.dictionary_misses += len(missing)
        if missing:
            ratios = self._ensure_dictionary().score_many(missing)
            for text, ratio in zip(missing, ratios):
                self._dict_ratios[text] = float(ratio)
        return np.asarray(
            [self._dict_ratios[text] for text in batch], dtype=float
        )

    # ------------------------------------------------------------------
    # SVM channel (A2 ablation).
    # ------------------------------------------------------------------

    def svm_not_neither(
        self, texts: Iterable[str], classifier: object
    ) -> np.ndarray:
        """``1 - P(neither)`` per text under a trained 3-class classifier.

        The cache is keyed to the classifier instance: scoring with a
        different trained classifier resets the channel.
        """
        if classifier is not self._svm_ref:
            self._svm_ref = classifier
            self._svm_scores = {}
        batch = list(texts)
        missing = _ordered_missing(batch, self._svm_scores)
        self.counters.svm_hits += len(batch) - len(missing)
        self.counters.svm_misses += len(missing)
        if missing:
            probs = classifier.predict_proba(missing)
            for text, prob in zip(missing, probs):
                self._svm_scores[text] = 1.0 - prob.neither
        return np.asarray(
            [self._svm_scores[text] for text in batch], dtype=float
        )
