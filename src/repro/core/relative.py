"""Cross-platform comparisons (§4.4, Table 3, Figures 6-7).

Three analyses:

* :func:`baseline_overview` — Table 3: corpus sizes and the number of
  Dissenter-matched Reddit commenters.
* :func:`comment_ratios` — Fig. 6: the per-user d/(d+r) Dissenter-to-
  Reddit comment ratio for users active on at least one platform.
* :func:`relative_toxicity` — Fig. 7: Perspective score CDFs for
  Dissenter vs Reddit vs NY Times vs Daily Mail on LIKELY_TO_REJECT,
  SEVERE_TOXICITY and ATTACK_ON_AUTHOR.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.core.scoring import ScoreStore
from repro.store import Corpus, columns_of
from repro.crawler.reddit_crawl import RedditMatchResult
from repro.stats.distributions import ECDF

__all__ = [
    "BaselineOverview",
    "CommentRatioAnalysis",
    "FIG7_ATTRIBUTES",
    "RelativeToxicity",
    "baseline_overview",
    "comment_ratios",
    "relative_toxicity",
]

FIG7_ATTRIBUTES = ("LIKELY_TO_REJECT", "SEVERE_TOXICITY", "ATTACK_ON_AUTHOR")


# ---------------------------------------------------------------------------
# Table 3
# ---------------------------------------------------------------------------


@dataclass
class BaselineOverview:
    """Table 3's rows."""

    nytimes_comments: int
    dailymail_comments: int
    reddit_comments: int
    reddit_matched_users: int
    reddit_matched_commenters: int


def baseline_overview(
    reddit: RedditMatchResult,
    nytimes_count: int,
    dailymail_count: int,
) -> BaselineOverview:
    """Assemble Table 3 from the Reddit match and corpus sizes."""
    return BaselineOverview(
        nytimes_comments=nytimes_count,
        dailymail_comments=dailymail_count,
        reddit_comments=reddit.total_comments,
        reddit_matched_users=len(reddit.matched_usernames),
        reddit_matched_commenters=len(reddit.commenters()),
    )


# ---------------------------------------------------------------------------
# Fig. 6 — comment ratios.
# ---------------------------------------------------------------------------


@dataclass
class CommentRatioAnalysis:
    """Fig. 6's d/(d+r) sample."""

    ratios: np.ndarray
    dissenter_exclusive: float       # ratio == 1
    reddit_exclusive: float          # ratio == 0
    n_users: int = 0

    def ecdf(self) -> ECDF:
        return ECDF(self.ratios)


def comment_ratios(
    result: Corpus, reddit: RedditMatchResult
) -> CommentRatioAnalysis:
    """Per-user Dissenter/(Dissenter+Reddit) comment ratios.

    Only usernames that matched on Reddit and commented on at least one
    platform contribute (the ratio is otherwise undefined, §4.4.1).
    """
    dissenter_counts: dict[str, int] = {}
    by_author = result.comments_by_author()
    for user in result.users.values():
        dissenter_counts[user.username] = len(by_author.get(user.author_id, []))

    ratios: list[float] = []
    for username in reddit.matched_usernames:
        d = dissenter_counts.get(username, 0)
        r = reddit.comment_counts.get(username, 0)
        if d + r == 0:
            continue
        ratios.append(d / (d + r))
    arr = np.asarray(ratios)
    if arr.size == 0:
        raise ValueError("no users with activity on either platform")
    return CommentRatioAnalysis(
        ratios=arr,
        dissenter_exclusive=float((arr == 1.0).mean()),
        reddit_exclusive=float((arr == 0.0).mean()),
        n_users=int(arr.size),
    )


# ---------------------------------------------------------------------------
# Fig. 7 — relative toxicity.
# ---------------------------------------------------------------------------


@dataclass
class RelativeToxicity:
    """Fig. 7's score samples: attribute -> dataset -> scores."""

    scores: dict[str, dict[str, np.ndarray]] = field(default_factory=dict)

    def ecdf(self, attribute: str, dataset: str) -> ECDF:
        return ECDF(self.scores[attribute][dataset])

    def exceed_fraction(
        self, attribute: str, dataset: str, threshold: float
    ) -> float:
        values = self.scores[attribute][dataset]
        if values.size == 0:
            return 0.0
        return float((values >= threshold).mean())

    def datasets(self) -> list[str]:
        first = next(iter(self.scores.values()))
        return list(first)


def relative_toxicity(
    dissenter_texts: Sequence[str],
    baseline_texts: Mapping[str, Sequence[str]],
    store: ScoreStore | None = None,
    max_sample: int = 20_000,
    corpus: Corpus | None = None,
) -> RelativeToxicity:
    """Score all corpora on the Fig. 7 attributes.

    Args:
        dissenter_texts: the crawled Dissenter comments.
        baseline_texts: {"reddit"|"nytimes"|"dailymail": texts}.
        store: shared score store (ideally pre-populated by the
            pipeline's scoring pass).
        max_sample: per-dataset cap (deterministic prefix).
        corpus: the Dissenter corpus the texts came from; when it has a
            column view its memoised score rows serve the dissenter
            sample (the same cached dicts the dict path would score).
    """
    store = store or ScoreStore()
    view = columns_of(corpus) if corpus is not None else None
    rows_by_corpus: dict[str, list] = {}
    if view is not None:
        rows_by_corpus["dissenter"] = view.score_rows(store)[:max_sample]
    else:
        rows_by_corpus["dissenter"] = store.score_many(
            list(dissenter_texts)[:max_sample]
        )
    for name, texts in baseline_texts.items():
        rows_by_corpus[name] = store.score_many(list(texts)[:max_sample])

    analysis = RelativeToxicity()
    for attribute in FIG7_ATTRIBUTES:
        analysis.scores[attribute] = {
            name: np.asarray([row[attribute] for row in rows])
            for name, rows in rows_by_corpus.items()
        }
    return analysis
