"""The paper's measurement analyses (§4).

Every module here consumes *crawled* records (:mod:`repro.crawler.records`)
— never the generator's ground truth — and produces structured result
objects mirroring one of the paper's tables or figures:

========================  =====================================================
Module                    Paper artefact
========================  =====================================================
:mod:`macro`              Fig. 2 (Gab ID growth), Fig. 3 (comment CDF),
                          Table 1 (flags/filters), §4.1 headline numbers
:mod:`urls`               Table 2 (TLDs/domains), §4.2.1 URL anomalies
:mod:`language`           §4.2.3 language mix
:mod:`youtube`            §4.2.2 YouTube content analysis
:mod:`shadow`             Fig. 4 (NSFW/offensive score CDFs), §4.3.1
:mod:`votes`              Fig. 5 (toxicity vs net vote score)
:mod:`relative`           Table 3, Fig. 6 (comment ratios), Fig. 7 (CDFs)
:mod:`bias`               Fig. 8 (scores by Allsides bias + KS tests)
:mod:`socialnet`          Fig. 9 (degrees, toxicity), §4.5 hateful core
:mod:`scoring`            single-pass memoising score store (all analyses
                          read classifier scores through it)
:mod:`pipeline`           end-to-end orchestration: crawl -> score -> analyze
========================  =====================================================
"""

from repro.core.bias import BiasAnalysis, analyze_bias
from repro.core.covert import (
    CovertAnchor,
    CovertChannelAnalysis,
    find_covert_channels,
)
from repro.core.defense import DefenseOutcome, simulate_preemptive_defense
from repro.core.language import LanguageAnalysis, analyze_languages
from repro.core.macro import (
    CommentConcentration,
    GabGrowthSeries,
    MacroHeadlines,
    UserTableStats,
    analyze_gab_growth,
    comment_concentration,
    compute_headlines,
    user_table,
)
from repro.core.pipeline import (
    CrawlArtifacts,
    ReproductionPipeline,
    ReproductionReport,
)
from repro.core.relative import (
    BaselineOverview,
    CommentRatioAnalysis,
    RelativeToxicity,
    baseline_overview,
    comment_ratios,
    relative_toxicity,
)
from repro.core.report import render_full_report
from repro.core.scoring import ScoreStore, ScoreStoreCounters
from repro.core.shadow import ShadowToxicity, analyze_shadow_toxicity
from repro.core.socialnet import (
    HatefulCore,
    SocialNetworkAnalysis,
    analyze_social_network,
    extract_hateful_core,
    per_user_activity_toxicity,
)
from repro.core.threads import ThreadStructure, analyze_threads
from repro.core.urls import UrlTableStats, analyze_urls
from repro.core.votes import VoteToxicity, analyze_votes
from repro.core.youtube import YouTubeAnalysis, analyze_youtube

__all__ = [
    "BaselineOverview",
    "BiasAnalysis",
    "CovertAnchor",
    "CovertChannelAnalysis",
    "CrawlArtifacts",
    "DefenseOutcome",
    "CommentConcentration",
    "CommentRatioAnalysis",
    "GabGrowthSeries",
    "HatefulCore",
    "LanguageAnalysis",
    "MacroHeadlines",
    "RelativeToxicity",
    "ReproductionPipeline",
    "ReproductionReport",
    "ScoreStore",
    "ScoreStoreCounters",
    "ShadowToxicity",
    "ThreadStructure",
    "SocialNetworkAnalysis",
    "UrlTableStats",
    "UserTableStats",
    "VoteToxicity",
    "YouTubeAnalysis",
    "analyze_bias",
    "analyze_gab_growth",
    "analyze_languages",
    "analyze_shadow_toxicity",
    "analyze_social_network",
    "analyze_threads",
    "analyze_urls",
    "analyze_votes",
    "analyze_youtube",
    "baseline_overview",
    "comment_concentration",
    "comment_ratios",
    "compute_headlines",
    "extract_hateful_core",
    "find_covert_channels",
    "per_user_activity_toxicity",
    "relative_toxicity",
    "render_full_report",
    "simulate_preemptive_defense",
    "user_table",
]
