"""End-to-end reproduction pipeline.

One object that does what the paper did: build (or accept) a world, stand
up its HTTP origins, run the §3 crawl stack, then compute every §4
analysis.  Used by the examples, the integration tests, and the
benchmarks that need the full corpus.

The full run is three explicit stages, mirroring the paper's own
crawl-once / score-once / analyze-many structure:

1. :meth:`ReproductionPipeline.stage_crawl` — every §3 collection stage,
   bundled into a :class:`CrawlArtifacts`.
2. :meth:`ReproductionPipeline.stage_score` — ONE scoring pass over the
   corpus and baselines into the shared :class:`~repro.core.scoring.
   ScoreStore`; each unique text is scored exactly once (optionally on a
   worker pool).
3. :meth:`ReproductionPipeline.stage_analyze` — every §4 analysis, all
   reading from the store.

:meth:`ReproductionPipeline.run` chains the stages and records per-stage
wall time plus the store's hit/miss counters on the report.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field

from repro.core.bias import BiasAnalysis, analyze_bias
from repro.core.language import LanguageAnalysis, analyze_languages
from repro.core.macro import (
    CommentConcentration,
    GabGrowthSeries,
    MacroHeadlines,
    UserTableStats,
    analyze_gab_growth,
    comment_concentration,
    compute_headlines,
    user_table,
)
from repro.core.relative import (
    BaselineOverview,
    CommentRatioAnalysis,
    RelativeToxicity,
    baseline_overview,
    comment_ratios,
    relative_toxicity,
)
from repro.core.scoring import ScoreStore
from repro.core.shadow import ShadowToxicity, analyze_shadow_toxicity
from repro.core.socialnet import (
    HatefulCore,
    SocialNetworkAnalysis,
    analyze_social_network,
    extract_hateful_core,
    per_user_activity_toxicity,
)
from repro.core.urls import UrlTableStats, analyze_urls
from repro.core.votes import VoteToxicity, analyze_votes
from repro.core.youtube import YouTubeAnalysis, analyze_youtube
from repro.crawler.dissenter_crawl import DissenterCrawler
from repro.crawler.gab_enum import GabEnumerationResult, GabEnumerator
from repro.crawler.reddit_crawl import RedditMatcher, RedditMatchResult
from repro.crawler.runtime import Checkpointer
from repro.crawler.shadow import ShadowCrawler
from repro.crawler.social_crawl import (
    SocialCrawlResult,
    SocialGraphCrawler,
    induce_dissenter_graph,
)
from repro.crawler.validation import CrawlValidator, ValidationReport
from repro.crawler.youtube_crawl import (
    YouTubeCrawler,
    YouTubeCrawlResult,
    is_youtube_url,
)
from repro.net.client import HttpClient
from repro.net.pool import FetchPool
from repro.perspective.models import PerspectiveModels
from repro.platform.apps import Origins, build_origins
from repro.platform.config import WorldConfig
from repro.platform.world import World, build_world
from repro.store import Corpus, CorpusStore

__all__ = [
    "CrawlArtifacts",
    "PIPELINE_STAGES",
    "ReproductionPipeline",
    "ReproductionReport",
]

# stage_crawl's resumable §3 stages, in execution order.  A checkpoint
# records which one is active; "tail" (validation, Reddit matching,
# baseline assembly) is cheap and idempotent, so it is re-run wholesale
# when a resume lands there.
PIPELINE_STAGES = (
    "gab_enum",
    "dissenter_detect",
    "dissenter_crawl",
    "shadow",
    "youtube",
    "social",
    "tail",
)

_PIPELINE_CHECKPOINT_VERSION = 3
#: pipeline envelope versions ``stage_crawl`` resumes from (a v2
#: envelope embeds ``result_to_payload`` corpora; the store's restore
#: path recognises the legacy shape).
_COMPAT_PIPELINE_VERSIONS = (2, 3)


def _stage_done(stage: str, name: str) -> bool:
    """Whether pipeline stage ``name`` completed before ``stage``."""
    return PIPELINE_STAGES.index(stage) > PIPELINE_STAGES.index(name)


@dataclass
class CrawlArtifacts:
    """Everything the §3 collection stages produced.

    The scoring and analysis stages consume this; nothing in it has been
    scored yet.
    """

    gab_enumeration: GabEnumerationResult
    corpus: Corpus
    shadow_crawler: ShadowCrawler
    validation: ValidationReport
    youtube_crawl: YouTubeCrawlResult
    reddit_match: RedditMatchResult
    graph: object                      # induced Dissenter follow CSRGraph
    active_ids: list[int]
    gab_ids: dict[str, int]            # username -> Gab ID
    baseline_texts: dict[str, list[str]]

    def corpus_texts(self):
        """Every crawled comment text, streamed in corpus order.

        A generator view over the store — the scoring pass submits it
        in chunks instead of materializing the whole corpus as a list.
        """
        return self.corpus.texts()


@dataclass
class ReproductionReport:
    """Everything the pipeline measured."""

    # Crawl artefacts.
    gab_enumeration: GabEnumerationResult
    corpus: Corpus
    validation: ValidationReport
    youtube_crawl: YouTubeCrawlResult
    reddit_match: RedditMatchResult

    # §4 analyses.
    growth: GabGrowthSeries
    concentration: CommentConcentration
    user_flags: UserTableStats
    headlines: MacroHeadlines
    url_table: UrlTableStats
    languages: LanguageAnalysis
    youtube: YouTubeAnalysis
    shadow: ShadowToxicity
    votes: VoteToxicity
    baselines: BaselineOverview
    ratios: CommentRatioAnalysis | None
    relative: RelativeToxicity
    bias: BiasAnalysis
    social: SocialNetworkAnalysis
    hateful_core: HatefulCore

    extras: dict[str, object] = field(default_factory=dict)

    @property
    def stage_seconds(self) -> dict[str, float]:
        """Wall time per pipeline stage (crawl / score / analyze)."""
        return self.extras.get("stage_seconds", {})

    @property
    def scoring_counters(self) -> dict[str, int]:
        """The score store's hit/miss/batch counters after the run."""
        return self.extras.get("scoring", {})


class ReproductionPipeline:
    """Runs crawl + scoring + analyses against a world's HTTP origins.

    Args:
        config: world configuration (ignored when ``world`` is given).
        world: pre-built world to reuse (worlds are expensive).
        with_faults: inject transport faults to exercise retry paths.
        workers: thread-pool size for the scoring pass (0 = serial);
            results are bit-identical regardless of worker count.
        connections: simulated concurrent connections for every §3
            crawl stage (1 = the historical sequential crawl); corpus,
            stats and checkpoints are bit-identical at any value.
        parse_workers: thread-pool size for off-loading pure page
            parsing during the crawl (0 = parse inline).
        store_dir: spill directory for the corpus store's sealed
            segments; ``None`` keeps segments inline (in memory and in
            checkpoints).  Corpus bytes and report numbers are identical
            either way — only checkpoint-tick cost and peak checkpoint
            size change.
        segment_records: records per sealed corpus segment.
        columns: project sealed segments into typed column arrays and
            run the §4 analyses vectorized over them.  ``False`` forces
            the record-dict analysis path (the oracle the columnar path
            is tested against); every report number is identical either
            way.
        nx_oracle: route the §4.5 social analyses through
            ``graph.to_networkx()`` instead of the CSR engine (the
            oracle path; requires the ``nx`` extra).  Every report
            number is identical either way — the CI graph-parity step
            diffs the two JSON reports.
    """

    def __init__(
        self,
        config: WorldConfig | None = None,
        world: World | None = None,
        with_faults: bool = False,
        workers: int = 0,
        connections: int = 1,
        parse_workers: int = 0,
        store_dir: str | None = None,
        segment_records: int = 4096,
        columns: bool = True,
        nx_oracle: bool = False,
    ):
        self.world = world or build_world(config)
        self.origins: Origins = build_origins(
            self.world, with_faults=with_faults, seed=self.world.config.seed
        )
        self.client = HttpClient(self.origins.transport)
        self.models = PerspectiveModels()
        self.store = ScoreStore(self.models, workers=workers)
        self.connections = int(connections)
        self.parse_workers = int(parse_workers)
        self.store_dir = store_dir
        self.segment_records = int(segment_records)
        self.columns = bool(columns)
        self.nx_oracle = bool(nx_oracle)
        self._pools: dict[str, FetchPool] = {}

    def _new_store(self) -> CorpusStore:
        """A fresh corpus store configured from the pipeline's flags."""
        return CorpusStore(
            store_dir=self.store_dir,
            segment_records=self.segment_records,
            columns=self.columns,
        )

    def _pool_for(self, stage: str) -> FetchPool:
        """A fresh fetch pool for one §3 stage (kept for its counters)."""
        pool = FetchPool(
            self.client.clock, self.connections, self.parse_workers
        )
        old = self._pools.get(stage)
        if old is not None:
            old.close()
        self._pools[stage] = pool
        return pool

    def fetch_extras(self) -> dict[str, dict]:
        """Per-stage fetch-engine counters (jobs, high-watermark, makespan)."""
        return {
            stage: pool.stats.as_dict() for stage, pool in self._pools.items()
        }

    def close_pools(self) -> None:
        for pool in self._pools.values():
            pool.close()

    # ------------------------------------------------------------------
    # Crawl stages (each usable on its own).
    # ------------------------------------------------------------------

    def enumerate_gab(
        self,
        checkpointer: Checkpointer | None = None,
        resume: dict | None = None,
    ) -> GabEnumerationResult:
        enumerator = GabEnumerator(self.client)
        return enumerator.enumerate(
            max_id=self.world.gab.max_id,
            checkpointer=checkpointer,
            resume=resume,
            pool=self._pool_for("gab_enum"),
        )

    def crawl_dissenter(
        self, usernames: list[str]
    ) -> tuple[CorpusStore, DissenterCrawler]:
        crawler = DissenterCrawler(self.client)
        detected = crawler.detect_accounts(
            usernames, pool=self._pool_for("dissenter_detect")
        )
        corpus = crawler.crawl(
            detected,
            pool=self._pool_for("dissenter_crawl"),
            store=self._new_store(),
        )
        while crawler.stats.comment_pages_failed:
            if crawler.recrawl_failures(corpus) == 0:
                break
        return corpus, crawler

    def uncover_shadow(self, corpus: CorpusStore) -> ShadowCrawler:
        shadow = ShadowCrawler(self.client, self.origins.dissenter)
        shadow.uncover(corpus, pool=self._pool_for("shadow"))
        return shadow

    def validate(
        self, corpus: Corpus, shadow: ShadowCrawler
    ) -> ValidationReport:
        config = self.world.config
        validator = CrawlValidator(
            window_start=config.epoch_dissenter - 45 * 86_400,
            window_end=config.crawl_time + 86_400,
        )
        report = validator.check_consistency(corpus)
        return validator.verify_shadow_sample(corpus, shadow, report=report)

    def crawl_youtube(self, corpus: Corpus) -> YouTubeCrawlResult:
        crawler = YouTubeCrawler(self.client)
        urls = [u.url for u in corpus.urls.values() if is_youtube_url(u.url)]
        return crawler.crawl(urls, pool=self._pool_for("youtube"))

    def crawl_social(self, corpus: Corpus, gab_enum: GabEnumerationResult):
        gab_ids = {
            account.username: account.gab_id
            for account in gab_enum.accounts
        }
        active_ids = [
            gab_ids[u.username]
            for u in corpus.active_users()
            if u.username in gab_ids
        ]
        crawler = SocialGraphCrawler(self.client, floor_interval=0.0)
        raw = crawler.crawl(active_ids, pool=self._pool_for("social"))
        return induce_dissenter_graph(raw, active_ids), active_ids, gab_ids

    def match_reddit(self, corpus: Corpus) -> RedditMatchResult:
        matcher = RedditMatcher(self.client)
        return matcher.match(sorted(corpus.users))

    # ------------------------------------------------------------------
    # Pipeline stages.
    # ------------------------------------------------------------------

    def stage_crawl(
        self,
        checkpointer: Checkpointer | None = None,
        resume: dict | None = None,
    ) -> CrawlArtifacts:
        """Stage 1: every §3 collection stage; nothing is scored yet.

        Args:
            checkpointer: write a composite pipeline checkpoint
                periodically — it records which §3 stage is active, the
                artifacts of completed stages, and the active crawler's
                own v2 checkpoint (frontier, cursor, partial result,
                cookies).  Writes are atomic.
            resume: a previously written pipeline checkpoint payload;
                completed stages are restored from their artifacts
                without issuing a single request, and the active stage
                continues from its crawler checkpoint.
        """
        world = self.world
        stage = PIPELINE_STAGES[0]
        artifacts: dict = {}
        active: dict | None = None
        if resume is not None:
            if not isinstance(resume, dict) or resume.get("kind") != "pipeline":
                raise ValueError("not a pipeline checkpoint payload")
            if resume.get("version") not in _COMPAT_PIPELINE_VERSIONS:
                raise ValueError(
                    f"unsupported pipeline checkpoint version "
                    f"{resume.get('version')!r}"
                )
            stage = resume["stage"]
            if stage not in PIPELINE_STAGES:
                raise ValueError(f"unknown pipeline stage {stage!r}")
            artifacts = dict(resume.get("artifacts") or {})
            active = resume.get("active")

        if checkpointer is not None:
            checkpointer.set_wrapper(
                lambda inner: {
                    "version": _PIPELINE_CHECKPOINT_VERSION,
                    "kind": "pipeline",
                    "stage": stage,
                    "artifacts": artifacts,
                    "active": inner,
                }
            )

        def advance(next_stage: str) -> None:
            nonlocal stage, active
            stage = next_stage
            active = None
            if checkpointer is not None:
                checkpointer.set_provider(None)
                checkpointer.flush()

        # ---- §3.1: Gab ID-space enumeration -------------------------
        if stage == "gab_enum":
            gab_enum = self.enumerate_gab(checkpointer=checkpointer, resume=active)
            artifacts["gab_enum"] = gab_enum.to_dict()
            advance("dissenter_detect")
        else:
            gab_enum = GabEnumerationResult.from_dict(artifacts["gab_enum"])

        # ---- §3.1: Dissenter account detection ----------------------
        crawler = DissenterCrawler(self.client)
        if stage == "dissenter_detect":
            detected = crawler.detect_accounts(
                gab_enum.usernames(),
                checkpointer=checkpointer,
                resume=active,
                pool=self._pool_for("dissenter_detect"),
            )
            artifacts["detected"] = detected
            advance("dissenter_crawl")
        elif _stage_done(stage, "dissenter_detect"):
            detected = list(artifacts["detected"])

        # ---- §3.1-3.2: the Dissenter spider -------------------------
        if stage == "dissenter_crawl":
            corpus = crawler.crawl(
                detected,
                checkpointer=checkpointer,
                resume=active,
                pool=self._pool_for("dissenter_crawl"),
                store=self._new_store(),
            )
            # §3.2's re-request loop: idempotent, so it is simply re-run
            # if a resume lands between the crawl and its completion.
            while crawler.stats.comment_pages_failed:
                if crawler.recrawl_failures(corpus) == 0:
                    break
            artifacts["corpus"] = corpus.snapshot()
            advance("shadow")
        elif _stage_done(stage, "dissenter_crawl"):
            corpus = self._new_store()
            corpus.restore_payload(artifacts["corpus"])

        # ---- §3.2: shadow (NSFW/offensive) overlay ------------------
        shadow_crawler = ShadowCrawler(self.client, self.origins.dissenter)
        if stage == "shadow":
            shadow_crawler.uncover(
                corpus,
                checkpointer=checkpointer,
                resume=active,
                pool=self._pool_for("shadow"),
            )
            artifacts["corpus"] = corpus.snapshot()
            advance("youtube")

        # The corpus is complete: freeze it so the secondary indexes
        # (by_url / by_author / active authors) are built once and
        # shared by validation and every §4 analysis, and so a stray
        # post-crawl mutation fails loudly instead of skewing them.
        corpus.seal()

        # ---- §3.3: YouTube metadata rendering -----------------------
        yt_urls = [u.url for u in corpus.urls.values() if is_youtube_url(u.url)]
        if stage == "youtube":
            youtube_crawl = YouTubeCrawler(self.client).crawl(
                yt_urls,
                checkpointer=checkpointer,
                resume=active,
                pool=self._pool_for("youtube"),
            )
            artifacts["youtube"] = youtube_crawl.to_dict()
            advance("social")
        elif _stage_done(stage, "youtube"):
            youtube_crawl = YouTubeCrawlResult.from_dict(artifacts["youtube"])

        # ---- §3.4: Gab follower graph -------------------------------
        gab_ids = {
            account.username: account.gab_id for account in gab_enum.accounts
        }
        active_ids = [
            gab_ids[u.username]
            for u in corpus.active_users()
            if u.username in gab_ids
        ]
        if stage == "social":
            social_crawler = SocialGraphCrawler(self.client, floor_interval=0.0)
            raw_social = social_crawler.crawl(
                active_ids,
                checkpointer=checkpointer,
                resume=active,
                pool=self._pool_for("social"),
            )
            artifacts["social"] = raw_social.to_dict()
            advance("tail")
        elif _stage_done(stage, "social"):
            raw_social = SocialCrawlResult.from_dict(artifacts["social"])
        graph = induce_dissenter_graph(raw_social, active_ids)

        # ---- tail: validation, Reddit matching, baselines -----------
        validation = self.validate(corpus, shadow_crawler)
        reddit_match = self.match_reddit(corpus)
        baseline_texts = {
            "reddit": [
                text
                for texts in reddit_match.sample_comments.values()
                for text in texts
            ],
            "nytimes": [c.text for c in world.news.nytimes],
            "dailymail": [c.text for c in world.news.dailymail],
        }
        return CrawlArtifacts(
            gab_enumeration=gab_enum,
            corpus=corpus,
            shadow_crawler=shadow_crawler,
            validation=validation,
            youtube_crawl=youtube_crawl,
            reddit_match=reddit_match,
            graph=graph,
            active_ids=active_ids,
            gab_ids=gab_ids,
            baseline_texts=baseline_texts,
        )

    def stage_score(
        self, artifacts: CrawlArtifacts, workers: int | None = None
    ) -> ScoreStore:
        """Stage 2: the single scoring pass over corpus + baselines.

        After this stage the store holds scores for every text any
        analysis will request; the analyses only read from the cache.
        """
        texts = itertools.chain(
            artifacts.corpus_texts(), *artifacts.baseline_texts.values()
        )
        self.store.prime(texts, workers=workers)
        return self.store

    def stage_analyze(self, artifacts: CrawlArtifacts) -> ReproductionReport:
        """Stage 3: every §4 analysis, reading scores from the store."""
        world = self.world
        corpus = artifacts.corpus
        comment_counts, median_toxicity = per_user_activity_toxicity(
            corpus, artifacts.gab_ids, self.store
        )
        graph = artifacts.graph
        if self.nx_oracle:
            graph = graph.to_networkx()
        report = ReproductionReport(
            gab_enumeration=artifacts.gab_enumeration,
            corpus=corpus,
            validation=artifacts.validation,
            youtube_crawl=artifacts.youtube_crawl,
            reddit_match=artifacts.reddit_match,
            growth=analyze_gab_growth(artifacts.gab_enumeration.accounts),
            concentration=comment_concentration(corpus),
            user_flags=user_table(corpus),
            headlines=compute_headlines(
                corpus, launch_epoch=world.config.epoch_dissenter
            ),
            url_table=analyze_urls(corpus),
            languages=analyze_languages(corpus),
            youtube=analyze_youtube(artifacts.youtube_crawl, corpus),
            shadow=analyze_shadow_toxicity(corpus, self.store),
            votes=analyze_votes(corpus, self.store),
            baselines=baseline_overview(
                artifacts.reddit_match,
                nytimes_count=world.news.nominal_counts["nytimes"],
                dailymail_count=world.news.nominal_counts["dailymail"],
            ),
            ratios=(
                comment_ratios(corpus, artifacts.reddit_match)
                if artifacts.reddit_match.matched_usernames
                else None
            ),
            relative=relative_toxicity(
                artifacts.corpus_texts(),
                artifacts.baseline_texts,
                self.store,
                corpus=corpus,
            ),
            bias=analyze_bias(corpus, self.store),
            social=analyze_social_network(graph, median_toxicity),
            hateful_core=extract_hateful_core(
                graph, comment_counts, median_toxicity
            ),
        )
        report.extras["active_gab_ids"] = artifacts.active_ids
        column_stats = getattr(corpus, "column_stats", None)
        if column_stats is not None:
            report.extras["columns"] = column_stats()
        return report

    # ------------------------------------------------------------------
    # Full run.
    # ------------------------------------------------------------------

    def run(
        self,
        checkpointer: Checkpointer | None = None,
        resume: dict | None = None,
    ) -> ReproductionReport:
        """Execute crawl -> scoring pass -> analyses, with stage timings.

        ``checkpointer``/``resume`` apply to the crawl stage only: the
        scoring and analysis stages are pure recomputation over the
        crawl artifacts and need no resumability.
        """
        # Stage timings deliberately read the host clock: they are
        # wall-time diagnostics surfaced on report.extras, never part of
        # the corpus/checkpoint bytes the bit-identity tests compare.
        t0 = time.perf_counter()   # repro: allow DET001 wall-time diagnostics
        artifacts = self.stage_crawl(checkpointer=checkpointer, resume=resume)
        t1 = time.perf_counter()   # repro: allow DET001 wall-time diagnostics
        self.stage_score(artifacts)
        t2 = time.perf_counter()   # repro: allow DET001 wall-time diagnostics
        report = self.stage_analyze(artifacts)
        t3 = time.perf_counter()   # repro: allow DET001 wall-time diagnostics
        report.extras["stage_seconds"] = {
            "crawl": t1 - t0,
            "score": t2 - t1,
            "analyze": t3 - t2,
        }
        report.extras["scoring"] = self.store.counters.as_dict()
        report.extras["connections"] = self.connections
        report.extras["fetch"] = self.fetch_extras()
        simulated = getattr(self.client.clock, "total_slept", None)
        if simulated is not None:
            report.extras["simulated_seconds"] = simulated
        self.close_pools()
        return report
