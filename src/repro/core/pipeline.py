"""End-to-end reproduction pipeline.

One object that does what the paper did: build (or accept) a world, stand
up its HTTP origins, run the §3 crawl stack, then compute every §4
analysis.  Used by the examples, the integration tests, and the
benchmarks that need the full corpus.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.bias import BiasAnalysis, analyze_bias
from repro.core.language import LanguageAnalysis, analyze_languages
from repro.core.macro import (
    CommentConcentration,
    GabGrowthSeries,
    MacroHeadlines,
    UserTableStats,
    analyze_gab_growth,
    comment_concentration,
    compute_headlines,
    user_table,
)
from repro.core.relative import (
    BaselineOverview,
    CommentRatioAnalysis,
    RelativeToxicity,
    baseline_overview,
    comment_ratios,
    relative_toxicity,
)
from repro.core.shadow import ShadowToxicity, analyze_shadow_toxicity
from repro.core.socialnet import (
    HatefulCore,
    SocialNetworkAnalysis,
    analyze_social_network,
    extract_hateful_core,
)
from repro.core.urls import UrlTableStats, analyze_urls
from repro.core.votes import VoteToxicity, analyze_votes
from repro.core.youtube import YouTubeAnalysis, analyze_youtube
from repro.crawler.dissenter_crawl import DissenterCrawler
from repro.crawler.gab_enum import GabEnumerationResult, GabEnumerator
from repro.crawler.records import CrawlResult
from repro.crawler.reddit_crawl import RedditMatcher, RedditMatchResult
from repro.crawler.shadow import ShadowCrawler
from repro.crawler.social_crawl import (
    SocialGraphCrawler,
    induce_dissenter_graph,
)
from repro.crawler.validation import CrawlValidator, ValidationReport
from repro.crawler.youtube_crawl import (
    YouTubeCrawler,
    YouTubeCrawlResult,
    is_youtube_url,
)
from repro.net.client import HttpClient
from repro.perspective.models import PerspectiveModels
from repro.platform.apps import Origins, build_origins
from repro.platform.config import WorldConfig
from repro.platform.world import World, build_world

import numpy as np

__all__ = ["ReproductionPipeline", "ReproductionReport"]


@dataclass
class ReproductionReport:
    """Everything the pipeline measured."""

    # Crawl artefacts.
    gab_enumeration: GabEnumerationResult
    corpus: CrawlResult
    validation: ValidationReport
    youtube_crawl: YouTubeCrawlResult
    reddit_match: RedditMatchResult

    # §4 analyses.
    growth: GabGrowthSeries
    concentration: CommentConcentration
    user_flags: UserTableStats
    headlines: MacroHeadlines
    url_table: UrlTableStats
    languages: LanguageAnalysis
    youtube: YouTubeAnalysis
    shadow: ShadowToxicity
    votes: VoteToxicity
    baselines: BaselineOverview
    ratios: CommentRatioAnalysis | None
    relative: RelativeToxicity
    bias: BiasAnalysis
    social: SocialNetworkAnalysis
    hateful_core: HatefulCore

    extras: dict[str, object] = field(default_factory=dict)


class ReproductionPipeline:
    """Runs crawl + analyses against a world's HTTP origins.

    Args:
        config: world configuration (ignored when ``world`` is given).
        world: pre-built world to reuse (worlds are expensive).
        with_faults: inject transport faults to exercise retry paths.
    """

    def __init__(
        self,
        config: WorldConfig | None = None,
        world: World | None = None,
        with_faults: bool = False,
    ):
        self.world = world or build_world(config)
        self.origins: Origins = build_origins(
            self.world, with_faults=with_faults, seed=self.world.config.seed
        )
        self.client = HttpClient(self.origins.transport)
        self.models = PerspectiveModels()

    # ------------------------------------------------------------------
    # Crawl stages (each usable on its own).
    # ------------------------------------------------------------------

    def enumerate_gab(self) -> GabEnumerationResult:
        enumerator = GabEnumerator(self.client)
        return enumerator.enumerate(max_id=self.world.gab.max_id)

    def crawl_dissenter(
        self, usernames: list[str]
    ) -> tuple[CrawlResult, DissenterCrawler]:
        crawler = DissenterCrawler(self.client)
        detected = crawler.detect_accounts(usernames)
        corpus = crawler.crawl(detected)
        while crawler.stats.comment_pages_failed:
            if crawler.recrawl_failures(corpus) == 0:
                break
        return corpus, crawler

    def uncover_shadow(self, corpus: CrawlResult) -> ShadowCrawler:
        shadow = ShadowCrawler(self.client, self.origins.dissenter)
        shadow.uncover(corpus)
        return shadow

    def validate(
        self, corpus: CrawlResult, shadow: ShadowCrawler
    ) -> ValidationReport:
        config = self.world.config
        validator = CrawlValidator(
            window_start=config.epoch_dissenter - 45 * 86_400,
            window_end=config.crawl_time + 86_400,
        )
        report = validator.check_consistency(corpus)
        return validator.verify_shadow_sample(corpus, shadow, report=report)

    def crawl_youtube(self, corpus: CrawlResult) -> YouTubeCrawlResult:
        crawler = YouTubeCrawler(self.client)
        urls = [u.url for u in corpus.urls.values() if is_youtube_url(u.url)]
        return crawler.crawl(urls)

    def crawl_social(self, corpus: CrawlResult, gab_enum: GabEnumerationResult):
        gab_ids = {
            account.username: account.gab_id
            for account in gab_enum.accounts
        }
        active_ids = [
            gab_ids[u.username]
            for u in corpus.active_users()
            if u.username in gab_ids
        ]
        crawler = SocialGraphCrawler(self.client, floor_interval=0.0)
        raw = crawler.crawl(active_ids)
        return induce_dissenter_graph(raw, active_ids), active_ids, gab_ids

    def match_reddit(self, corpus: CrawlResult) -> RedditMatchResult:
        matcher = RedditMatcher(self.client)
        return matcher.match(sorted(corpus.users))

    # ------------------------------------------------------------------
    # Full run.
    # ------------------------------------------------------------------

    def run(self) -> ReproductionReport:
        """Execute every crawl stage and every analysis."""
        world = self.world
        gab_enum = self.enumerate_gab()
        corpus, _crawler = self.crawl_dissenter(gab_enum.usernames())
        shadow_crawler = self.uncover_shadow(corpus)
        validation = self.validate(corpus, shadow_crawler)
        youtube_crawl = self.crawl_youtube(corpus)
        graph, active_ids, gab_ids = self.crawl_social(corpus, gab_enum)
        reddit_match = self.match_reddit(corpus)

        # Per-user toxicity and activity (for Figs. 9b/9c and the core).
        by_author = corpus.comments_by_author()
        author_by_username = {
            u.username: u.author_id for u in corpus.users.values()
        }
        comment_counts: dict[int, float] = {}
        median_toxicity: dict[int, float] = {}
        for username, gab_id in gab_ids.items():
            author_id = author_by_username.get(username)
            if author_id is None:
                continue
            comments = by_author.get(author_id, [])
            comment_counts[gab_id] = len(comments)
            if comments:
                scores = [
                    self.models.score(c.text)["SEVERE_TOXICITY"]
                    for c in comments[:200]
                ]
                median_toxicity[gab_id] = float(np.median(scores))

        baseline_texts = {
            "reddit": [
                text
                for texts in reddit_match.sample_comments.values()
                for text in texts
            ],
            "nytimes": [c.text for c in world.news.nytimes],
            "dailymail": [c.text for c in world.news.dailymail],
        }

        report = ReproductionReport(
            gab_enumeration=gab_enum,
            corpus=corpus,
            validation=validation,
            youtube_crawl=youtube_crawl,
            reddit_match=reddit_match,
            growth=analyze_gab_growth(gab_enum.accounts),
            concentration=comment_concentration(corpus),
            user_flags=user_table(corpus),
            headlines=compute_headlines(
                corpus, launch_epoch=world.config.epoch_dissenter
            ),
            url_table=analyze_urls(corpus),
            languages=analyze_languages(corpus),
            youtube=analyze_youtube(youtube_crawl, corpus),
            shadow=analyze_shadow_toxicity(corpus, self.models),
            votes=analyze_votes(corpus, self.models),
            baselines=baseline_overview(
                reddit_match,
                nytimes_count=world.news.nominal_counts["nytimes"],
                dailymail_count=world.news.nominal_counts["dailymail"],
            ),
            ratios=(
                comment_ratios(corpus, reddit_match)
                if reddit_match.matched_usernames
                else None
            ),
            relative=relative_toxicity(
                [c.text for c in corpus.comments.values()],
                baseline_texts,
                self.models,
            ),
            bias=analyze_bias(corpus, self.models),
            social=analyze_social_network(graph, median_toxicity),
            hateful_core=extract_hateful_core(
                graph, comment_counts, median_toxicity
            ),
        )
        report.extras["active_gab_ids"] = active_ids
        return report
